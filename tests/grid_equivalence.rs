//! Grid-fused multi-attribute prompting invariants (PR 7):
//!
//! 1. **Off bit-exactness** — `PromptBatch::Off` (still the default) must
//!    stay bit-identical to a default-options session: prompts per kind,
//!    cache hits, both virtual clocks and result relations all match.
//!    (`Keys(B)` bit-exactness with the pre-grid engine is carried by
//!    `tests/batch_equivalence.rs`, which is untouched by this PR.)
//! 2. **Ablation base case** — `Grid { keys: B, attrs: 1 }` is the grid
//!    protocol with no attribute fusion: same prompt-count economics as
//!    `Keys(B)`, same relations.
//! 3. **Grid result invariance** — `Grid { keys: B, attrs: A }` may
//!    reshape the fetch schedule arbitrarily, but on a noise-free model it
//!    never changes `R_M`, for any B, A, worker count or pipeline mode.
//! 4. **Fallback safety** — when grid answers are corrupted so cells fail
//!    to parse, the ladder (grid → per-attribute key batch → per-key
//!    single) restores the exact `PromptBatch::Off` relations; accuracy
//!    can never regress, only the prompt bill can.

mod common;

use common::{
    assert_suite_bit_identical, assert_suite_rows_match, options, oracle_session,
    session_with_model, small_config, sorted_rows, LineDropper, LinePermuter,
};
use galois::core::{Galois, GaloisOptions, ListStore, Pipeline, PromptBatch};
use galois::dataset::Scenario;
use proptest::prelude::*;
use std::sync::Arc;

fn session(s: &Scenario, batch: PromptBatch, lanes: usize, pipeline: Pipeline) -> Galois {
    oracle_session(s, options(ListStore::Off, pipeline, batch, lanes))
}

/// `PromptBatch::Off` stays the default, and the default session remains
/// bit-identical to an explicitly-Off one on every observable counter —
/// the grid machinery must be invisible until switched on.
#[test]
fn off_is_bit_identical_to_default_pipeline() {
    let s = Scenario::generate_with(42, small_config());
    let default_session = oracle_session(&s, GaloisOptions::default());
    let off_session = session(&s, PromptBatch::Off, 1, Pipeline::Off);
    assert_eq!(
        GaloisOptions::default().prompt_batch,
        PromptBatch::Off,
        "Off must stay the default"
    );
    assert_suite_bit_identical(&s, &default_session, &off_session, usize::MAX, "grid off");
}

/// `Grid { keys: B, attrs: 1 }` is the ablation base case: the grid
/// protocol without attribute fusion must match `Keys(B)`'s prompt-count
/// economics exactly, on both pipelines.
#[test]
fn grid_of_one_attr_matches_keys_batching_counts() {
    let s = Scenario::generate_with(42, small_config());
    for pipeline in [Pipeline::Off, Pipeline::Streaming] {
        let keys = session(&s, PromptBatch::Keys(8), 1, pipeline);
        let grid = session(&s, PromptBatch::Grid { keys: 8, attrs: 1 }, 1, pipeline);
        for spec in s.suite.iter().take(12) {
            let sql = spec.to_sql();
            let a = keys.execute(&sql).unwrap();
            let b = grid.execute(&sql).unwrap();
            assert_eq!(
                sorted_rows(&a.relation),
                sorted_rows(&b.relation),
                "q{} ({pipeline:?})",
                spec.id
            );
            assert_eq!(
                a.stats.total_prompts(),
                b.stats.total_prompts(),
                "q{} ({pipeline:?})",
                spec.id
            );
            assert_eq!(
                a.stats.fetch_prompts, b.stats.fetch_prompts,
                "q{} ({pipeline:?})",
                spec.id
            );
        }
    }
}

/// Grid execution returns identical relations across B × A × K × pipeline
/// over the suite — attribute fusion reshapes the schedule, never `R_M`.
#[test]
fn grid_relations_match_off_across_b_a_k_and_pipelines() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1, Pipeline::Off);
    for spec in s.suite.iter().take(12) {
        let sql = spec.to_sql();
        let base = off.execute(&sql).unwrap();
        for pipeline in [Pipeline::Off, Pipeline::Streaming] {
            for lanes in [1usize, 8] {
                for b in [2usize, 10] {
                    // `attrs: 64` exceeds every step's fetch width — the
                    // "all attributes in one prompt" extreme.
                    for a in [2usize, 64] {
                        let got =
                            session(&s, PromptBatch::Grid { keys: b, attrs: a }, lanes, pipeline)
                                .execute(&sql)
                                .unwrap();
                        assert_eq!(
                            sorted_rows(&got.relation),
                            sorted_rows(&base.relation),
                            "q{} diverged at B={b}, A={a}, K={lanes}, {pipeline:?}: {sql}",
                            spec.id
                        );
                    }
                }
            }
        }
    }
}

/// The headline economics: on a multi-attribute query the grid spends
/// strictly fewer fetch prompts than key-only batching, and its per-(key,
/// attr) sub-entries serve narrower follow-up queries without any new
/// fetch prompts (cache interop).
#[test]
fn grid_cuts_fetch_prompts_and_serves_narrower_queries() {
    let s = Scenario::generate_with(42, small_config());
    let wide = "SELECT name, population, country FROM city WHERE elevation < 3000";
    let narrow = "SELECT name, population FROM city WHERE elevation < 3000";
    let keys = session(&s, PromptBatch::Keys(10), 1, Pipeline::Off);
    let grid = session(
        &s,
        PromptBatch::Grid { keys: 10, attrs: 4 },
        1,
        Pipeline::Off,
    );
    let a = keys.execute(wide).unwrap();
    let b = grid.execute(wide).unwrap();
    assert_eq!(sorted_rows(&a.relation), sorted_rows(&b.relation));
    assert!(
        b.stats.fetch_prompts < a.stats.fetch_prompts,
        "grid {} vs keys-only {}",
        b.stats.fetch_prompts,
        a.stats.fetch_prompts
    );
    // The wide grid answers were stored per (key, attr): the narrower
    // query's fetch phase resolves entirely at sub-entry extraction.
    let c = grid.execute(narrow).unwrap();
    assert_eq!(c.stats.fetch_prompts, 0, "narrow query re-fetched");
    assert!(c.stats.cache_hits > 0);
}

/// Speculative fill: a grid group with spare width pads itself with the
/// relation's *other* columns, so a follow-up query touching columns the
/// first query never asked for still fetches entirely from sub-entries —
/// the cross-query lever that breaks the one-new-column-per-query fetch
/// floor. Key-only batching (and `attrs: 1`, which has no spare width)
/// must still pay fetch prompts for the unseen column, and the answers
/// must be bit-identical either way.
#[test]
fn speculative_pads_serve_unseen_columns_without_prompts() {
    let s = Scenario::generate_with(42, small_config());
    let first = "SELECT name FROM city WHERE population > 100000";
    let unseen = "SELECT name, mayor FROM city WHERE population > 100000";
    for pipeline in [Pipeline::Off, Pipeline::Streaming] {
        let keys = session(&s, PromptBatch::Keys(10), 1, pipeline);
        let grid = session(&s, PromptBatch::Grid { keys: 10, attrs: 6 }, 1, pipeline);
        let narrow = session(&s, PromptBatch::Grid { keys: 10, attrs: 1 }, 1, pipeline);
        keys.execute(first).unwrap();
        grid.execute(first).unwrap();
        narrow.execute(first).unwrap();
        let a = keys.execute(unseen).unwrap();
        let b = grid.execute(unseen).unwrap();
        let c = narrow.execute(unseen).unwrap();
        assert_eq!(sorted_rows(&a.relation), sorted_rows(&b.relation));
        assert_eq!(sorted_rows(&a.relation), sorted_rows(&c.relation));
        assert!(a.stats.fetch_prompts > 0, "keys-only must re-fetch");
        assert!(c.stats.fetch_prompts > 0, "attrs: 1 must re-fetch");
        assert_eq!(
            b.stats.fetch_prompts, 0,
            "mayor was never selected, but the first query's pads stored it"
        );
    }
}

/// With half of every grid answer destroyed, the full fallback ladder must
/// restore the exact `PromptBatch::Off` relations — at K ∈ {1, 8}, both
/// pipelines — while necessarily spending extra prompts.
#[test]
fn corrupted_grids_fall_back_to_off_relations() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1, Pipeline::Off);
    for pipeline in [Pipeline::Off, Pipeline::Streaming] {
        for lanes in [1usize, 8] {
            let flaky = session_with_model(
                Arc::new(LineDropper::oracle(&s)),
                &s,
                options(
                    ListStore::Off,
                    pipeline,
                    PromptBatch::Grid { keys: 8, attrs: 4 },
                    lanes,
                ),
            );
            assert_suite_rows_match(
                &s,
                &off,
                &flaky,
                12,
                &format!("corrupted grids at K={lanes}, {pipeline:?}"),
            );
        }
    }
}

/// A model that permutes grid answer lines costs nothing: the parser
/// matches cells by `key ⌁ attr` label, not position, so relations *and*
/// the prompt bill match the clean grid run (no fallback fires).
#[test]
fn permuted_grid_lines_round_trip_without_fallback() {
    let s = Scenario::generate_with(42, small_config());
    let clean = session(
        &s,
        PromptBatch::Grid { keys: 8, attrs: 4 },
        1,
        Pipeline::Off,
    );
    let permuted = session_with_model(
        Arc::new(LinePermuter::oracle(&s)),
        &s,
        options(
            ListStore::Off,
            Pipeline::Off,
            PromptBatch::Grid { keys: 8, attrs: 4 },
            1,
        ),
    );
    for spec in s.suite.iter().take(12) {
        let sql = spec.to_sql();
        let a = clean.execute(&sql).unwrap();
        let b = permuted.execute(&sql).unwrap();
        assert_eq!(
            sorted_rows(&a.relation),
            sorted_rows(&b.relation),
            "q{}",
            spec.id
        );
        assert_eq!(
            a.stats.total_prompts(),
            b.stats.total_prompts(),
            "q{}: permuted lines must not trigger the fallback ladder",
            spec.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over arbitrary worlds, suite queries, grid shapes and
    /// pipelines: grid fusion never changes `R_M` on a noise-free model,
    /// and with no fallbacks (the oracle parses cleanly) it never costs
    /// more prompts than key-only batching at the same B.
    #[test]
    fn grid_is_result_invariant_for_any_seed(
        seed in 0u64..10_000,
        qi in 0usize..46,
        b in 2usize..26,
        a in 1usize..6,
        streaming in any::<bool>(),
    ) {
        let pipeline = if streaming { Pipeline::Streaming } else { Pipeline::Off };
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        let sql = spec.to_sql();
        let base = session(&s, PromptBatch::Off, 1, Pipeline::Off).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let keys = session(&s, PromptBatch::Keys(b), 1, pipeline).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let grid = session(&s, PromptBatch::Grid { keys: b, attrs: a }, 1, pipeline).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(
            sorted_rows(&base.relation), sorted_rows(&grid.relation),
            "q{} R_M diverges at B={}, A={}, {:?}", spec.id, b, a, pipeline
        );
        prop_assert!(
            grid.stats.total_prompts() <= keys.stats.total_prompts(),
            "q{}: grid {} > keys-only {} prompts at B={}, A={}, {:?}",
            spec.id, grid.stats.total_prompts(), keys.stats.total_prompts(), b, a, pipeline
        );
    }
}
