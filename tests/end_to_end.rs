//! Cross-crate integration tests: SQL text → plan → prompts → simulated
//! LLM → parsing/cleaning → relational tail → relation.

use galois::core::{
    BaselineKind, CompileOptions, DefaultSource, FilterMode, Galois, GaloisOptions, QaBaseline,
};
use galois::dataset::Scenario;
use galois::eval::{match_records, relation_to_records};
use galois::llm::{ModelProfile, SimLlm};
use galois::relational::Value;
use std::sync::Arc;

fn oracle(scenario: &Scenario) -> Galois {
    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::oracle(),
    ));
    Galois::new(model, scenario.database.clone())
}

fn sorted_rows(rel: &galois::relational::Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect())
        .collect();
    rows.sort();
    rows
}

#[test]
fn oracle_reproduces_ground_truth_for_every_suite_query() {
    let scenario = Scenario::generate_with(
        7,
        galois::dataset::WorldConfig {
            countries: 8,
            cities: 18,
            airports: 8,
            singers: 8,
            concerts: 10,
            employees: 12,
        },
    );
    let galois = oracle(&scenario);
    for spec in &scenario.suite {
        let sql = spec.to_sql();
        let truth = scenario.database.execute(&sql).unwrap();
        let got = galois.execute(&sql).unwrap();
        let matching = match_records(&truth, &relation_to_records(&got.relation));
        assert!(
            matching.score() > 0.99,
            "q{} diverged under the oracle: score {:.2}\nsql: {sql}",
            spec.id,
            matching.score()
        );
    }
}

#[test]
fn executions_are_deterministic() {
    let scenario = Scenario::generate(42);
    let sql = "SELECT name, population FROM city WHERE population > 1000000";
    let run = |_: u32| {
        let model = Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::chatgpt(),
        ));
        let galois = Galois::new(model, scenario.database.clone());
        sorted_rows(&galois.execute(sql).unwrap().relation)
    };
    assert_eq!(run(0), run(1));
}

#[test]
fn qa_baseline_is_deterministic() {
    let scenario = Scenario::generate(42);
    let question = scenario.suite[0].question();
    let ask = |_: u32| {
        let model = Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::chatgpt(),
        ));
        QaBaseline::new(model)
            .ask(&question, BaselineKind::Plain)
            .text
    };
    assert_eq!(ask(0), ask(1));
}

#[test]
fn filter_modes_agree_under_the_oracle() {
    let scenario = Scenario::generate(42);
    let sql = "SELECT name FROM city WHERE population > 1000000";
    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::oracle(),
    ));
    let boolean = Galois::with_options(
        model.clone(),
        scenario.database.clone(),
        GaloisOptions {
            compile: CompileOptions {
                filter_mode: FilterMode::LlmBoolean,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let fetch_compare = Galois::with_options(
        model,
        scenario.database.clone(),
        GaloisOptions {
            compile: CompileOptions {
                filter_mode: FilterMode::FetchCompare,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(
        sorted_rows(&boolean.execute(sql).unwrap().relation),
        sorted_rows(&fetch_compare.execute(sql).unwrap().relation),
    );
}

#[test]
fn hybrid_query_matches_all_db_execution_under_oracle() {
    let scenario = Scenario::generate(42);
    let galois = oracle(&scenario);
    let hybrid = "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                  FROM DB.employees e, LLM.country k WHERE e.countryCode = k.code \
                  GROUP BY e.countryCode ORDER BY e.countryCode";
    let all_db = "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                  FROM employees e, country k WHERE e.countryCode = k.code \
                  GROUP BY e.countryCode ORDER BY e.countryCode";
    let got = galois.execute(hybrid).unwrap();
    let truth = scenario.database.execute(all_db).unwrap();
    assert_eq!(sorted_rows(&got.relation), sorted_rows(&truth));
    assert!(
        got.stats.total_prompts() > 0,
        "the LLM side must be prompted"
    );
}

#[test]
fn db_default_source_runs_without_prompts() {
    let scenario = Scenario::generate(42);
    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::chatgpt(),
    ));
    let galois = Galois::with_options(
        model,
        scenario.database.clone(),
        GaloisOptions {
            compile: CompileOptions {
                default_source: DefaultSource::Db,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let got = galois
        .execute("SELECT name FROM city WHERE population > 1000000")
        .unwrap();
    assert_eq!(got.stats.total_prompts(), 0);
    let truth = scenario
        .database
        .execute("SELECT name FROM city WHERE population > 1000000")
        .unwrap();
    assert_eq!(got.relation.len(), truth.len());
}

#[test]
fn noisy_models_never_error_on_the_suite() {
    let scenario = Scenario::generate_with(
        11,
        galois::dataset::WorldConfig {
            countries: 6,
            cities: 14,
            airports: 7,
            singers: 7,
            concerts: 8,
            employees: 10,
        },
    );
    for profile in ModelProfile::all() {
        let model = Arc::new(SimLlm::new(scenario.knowledge.clone(), profile.clone()));
        let galois = Galois::new(model, scenario.database.clone());
        for spec in &scenario.suite {
            galois
                .execute(&spec.to_sql())
                .unwrap_or_else(|e| panic!("{} failed q{}: {e}", profile.name, spec.id));
        }
    }
}

#[test]
fn session_stats_accumulate_and_cache_dedupes() {
    let scenario = Scenario::generate(42);
    let galois = oracle(&scenario);
    let sql = "SELECT name FROM city";
    let first = galois.execute(sql).unwrap();
    assert!(first.stats.list_prompts > 0);
    // Second execution of the identical query is fully cache-served.
    let second = galois.execute(sql).unwrap();
    assert_eq!(second.stats.cache_hits, first.stats.total_prompts());
    assert_eq!(sorted_rows(&first.relation), sorted_rows(&second.relation));
}

#[test]
fn prompt_text_is_the_only_interface() {
    // The engine's behaviour must be reproducible from prompt text alone:
    // a transcript of (prompt, completion) pairs replayed through a
    // FixedResponder-per-prompt mock yields the same relation.
    use galois::llm::{Completion, LanguageModel, Usage};
    use std::sync::Mutex;

    struct Recorder {
        inner: Arc<SimLlm>,
        log: Mutex<Vec<(String, String)>>,
    }
    impl LanguageModel for Recorder {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn context_window(&self) -> usize {
            self.inner.context_window()
        }
        fn complete(&self, prompt: &str) -> Completion {
            let c = self.inner.complete(prompt);
            self.log
                .lock()
                .unwrap()
                .push((prompt.to_string(), c.text.clone()));
            c
        }
    }

    struct Replayer {
        transcript: std::collections::HashMap<String, String>,
    }
    impl LanguageModel for Replayer {
        fn name(&self) -> &str {
            "chatgpt"
        }
        fn context_window(&self) -> usize {
            4096
        }
        fn complete(&self, prompt: &str) -> Completion {
            let text = self
                .transcript
                .get(prompt)
                .cloned()
                .unwrap_or_else(|| "Unknown".to_string());
            Completion {
                text,
                usage: Usage::default(),
                latency_ms: 1,
            }
        }
    }

    let scenario = Scenario::generate(42);
    let sim = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::chatgpt(),
    ));
    let recorder = Arc::new(Recorder {
        inner: sim,
        log: Mutex::new(Vec::new()),
    });
    let sql = "SELECT name FROM city WHERE population > 1000000";
    let galois = Galois::new(recorder.clone(), scenario.database.clone());
    let original = galois.execute(sql).unwrap();

    let transcript: std::collections::HashMap<String, String> =
        recorder.log.lock().unwrap().iter().cloned().collect();
    let replayed = Galois::new(Arc::new(Replayer { transcript }), scenario.database.clone())
        .execute(sql)
        .unwrap();

    assert_eq!(
        sorted_rows(&original.relation),
        sorted_rows(&replayed.relation)
    );
}
