//! Cross-query scheduling battery (PR 10): the shared lane pool must
//! change *clocks only*, never answers or prompt accounting.
//!
//! 1. **Concurrency invariance** — for any session count, any
//!    session-assignment permutation, any admission order the fair-share
//!    rules produce, and any lane/batch shape: every query's relation,
//!    rows-in-order, and `QueryStats` modulo the clocks (`virtual_ms`,
//!    `queue_ms`, wall) are bit-identical with the single-session run.
//!    Per-kind prompt totals and cache hits are pinned per query, not
//!    just in aggregate — the logical pass runs queries in canonical
//!    input order regardless of how the replay schedules them.
//! 2. **Single-session replay degeneracy** — one session with the
//!    default (unbounded) admission policy reproduces plain serial
//!    `execute` *bit-exactly* including `virtual_ms`, with `queue_ms` 0
//!    and arrival/finish times chaining as the serial clock.
//! 3. **Concurrency wins the makespan** — at 8 sessions over the derived
//!    `sessions × K` pool, the suite makespan is strictly below the
//!    serial suite clock, utilisation lands in `(0, 1]`, and the two
//!    fair-share rules agree on answers while both stay under it.
//! 4. **Admission delay is measured, not lost** — a `max_inflight` cap
//!    produces positive `queue_ms` without touching answers or prompts,
//!    and every outcome still satisfies `arrival ≤ admitted ≤ finished`.
//! 5. **Repeat-run determinism** — the whole report (every field, modulo
//!    nothing) is equal across two runs on fresh sessions.

mod common;

use common::{assert_stats_eq, options, oracle_session, permutation};
use galois::core::{
    run_multi_query, AdmissionPolicy, FairShare, ListStore, MultiQueryReport, Pipeline,
    PromptBatch, QueryStats,
};
use galois::dataset::{Scenario, WorldConfig};
use proptest::prelude::*;

/// The battery's standard world: small enough that a full suite pass
/// stays fast under proptest, with enough per-concept keys that the
/// replay has real micro-batch traces to pack.
fn scenario(seed: u64) -> Scenario {
    Scenario::generate_with(
        seed,
        WorldConfig {
            countries: 6,
            cities: 14,
            airports: 6,
            singers: 6,
            concerts: 8,
            employees: 10,
        },
    )
}

/// Runs the scenario's suite through the scheduler at the given shape and
/// returns the report (fresh session: the store and prompt cache start
/// cold, so runs are comparable).
fn run(
    s: &Scenario,
    batch: PromptBatch,
    lanes: usize,
    session_of: &[usize],
    policy: &AdmissionPolicy,
) -> MultiQueryReport {
    let session = oracle_session(
        s,
        options(ListStore::Off, Pipeline::Streaming, batch, lanes),
    );
    let sqls: Vec<String> = s.suite.iter().map(|q| q.to_sql()).collect();
    let queries: Vec<&str> = sqls.iter().map(String::as_str).collect();
    run_multi_query(&session, &queries, session_of, policy).expect("streaming suite replays")
}

/// Clock-insensitive stat equality: everything but the replay-owned
/// clocks (`virtual_ms`, `queue_ms`) and the measured wall clock must
/// match — prompts per kind, cache hits, rows, token totals, resilience
/// counters, all of it.
fn assert_stats_eq_modulo_clocks(a: &QueryStats, b: &QueryStats, label: &str) {
    let mut a = *a;
    let mut b = *b;
    for s in [&mut a, &mut b] {
        s.wall_ms = 0;
        s.virtual_ms = 0;
        s.queue_ms = 0;
    }
    assert_eq!(a, b, "{label}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Axis sweep: world seed × sessions {1, 2, 8} × assignment
    /// permutation × fair-share rule × lanes × batch shape. The
    /// single-session run is the reference; every other shape must agree
    /// on answers and accounting query by query.
    #[test]
    fn concurrency_changes_clocks_only(
        seed in prop_oneof![Just(42u64), Just(7u64), Just(1234u64)],
        sessions in prop_oneof![Just(1usize), Just(2), Just(8)],
        perm_state in any::<u64>(),
        share in prop_oneof![Just(FairShare::DeficitMs), Just(FairShare::RoundRobin)],
        lanes in prop_oneof![Just(1usize), Just(8)],
        grid in any::<bool>(),
    ) {
        let s = scenario(seed);
        let n = s.suite.len();
        let batch = if grid {
            PromptBatch::Grid { keys: 10, attrs: 6 }
        } else {
            PromptBatch::Keys(10)
        };
        let reference = run(&s, batch, lanes, &vec![0usize; n], &AdmissionPolicy::default());

        let perm = permutation(n, perm_state);
        let session_of: Vec<usize> = perm.iter().map(|&p| p % sessions).collect();
        let policy = AdmissionPolicy { share, ..AdmissionPolicy::default() };
        let report = run(&s, batch, lanes, &session_of, &policy);

        prop_assert_eq!(report.outcomes.len(), reference.outcomes.len());
        for (i, (got, want)) in report.outcomes.iter().zip(&reference.outcomes).enumerate() {
            // The whole relation — schema and rows in order, not just row
            // sets: the logical pass is the same engine pass, so even
            // ordering must survive.
            prop_assert_eq!(
                &got.result.relation, &want.result.relation,
                "relation, query {}", i
            );
            assert_stats_eq_modulo_clocks(
                &got.result.stats,
                &want.result.stats,
                &format!("stats, query {i} (seed {seed}, sessions {sessions}, {share:?})"),
            );
            prop_assert_eq!(got.session, session_of[i], "session label, query {}", i);
        }
        prop_assert!(report.lane_utilisation <= 1.0 + 1e-12);
    }
}

#[test]
fn single_session_replay_is_serial_execution_bit_for_bit() {
    let s = scenario(42);
    let n = s.suite.len();
    let report = run(
        &s,
        PromptBatch::Keys(10),
        8,
        &vec![0usize; n],
        &AdmissionPolicy::default(),
    );

    let serial = oracle_session(
        &s,
        options(
            ListStore::Off,
            Pipeline::Streaming,
            PromptBatch::Keys(10),
            8,
        ),
    );
    let mut clock = 0u64;
    for (i, (spec, outcome)) in s.suite.iter().zip(&report.outcomes).enumerate() {
        let want = serial.execute(&spec.to_sql()).expect("serial suite query");
        assert_eq!(
            outcome.result.relation, want.relation,
            "relation, query {i}"
        );
        assert_stats_eq(
            &outcome.result.stats,
            &want.stats,
            &format!("stats, query {i}"),
        );
        assert_eq!(
            outcome.result.stats.queue_ms, 0,
            "nothing queues, query {i}"
        );
        // Closed loop with one session: each query arrives when the
        // previous finishes, so the timeline is the serial clock.
        assert_eq!(outcome.arrival_ms, clock, "arrival, query {i}");
        assert_eq!(outcome.admitted_ms, clock, "admission, query {i}");
        clock += want.stats.virtual_ms;
        assert_eq!(outcome.finished_ms, clock, "finish, query {i}");
    }
    assert_eq!(
        report.makespan_ms, clock,
        "makespan is the serial suite clock"
    );
}

#[test]
fn eight_sessions_beat_the_serial_clock_under_both_shares() {
    let s = scenario(42);
    let n = s.suite.len();
    let serial_sum: u64 = run(
        &s,
        PromptBatch::Keys(10),
        8,
        &vec![0usize; n],
        &AdmissionPolicy::default(),
    )
    .makespan_ms;

    let session_of: Vec<usize> = (0..n).map(|i| i % 8).collect();
    for share in [FairShare::DeficitMs, FairShare::RoundRobin] {
        let report = run(
            &s,
            PromptBatch::Keys(10),
            8,
            &session_of,
            &AdmissionPolicy {
                share,
                ..AdmissionPolicy::default()
            },
        );
        assert!(
            report.makespan_ms < serial_sum,
            "{share:?}: makespan {} must beat the serial clock {serial_sum}",
            report.makespan_ms
        );
        assert_eq!(
            report.pool_lanes, 64,
            "{share:?}: derived sessions x K pool"
        );
        assert!(
            report.lane_utilisation > 0.0 && report.lane_utilisation <= 1.0,
            "{share:?}: utilisation {} out of range",
            report.lane_utilisation
        );
        assert_eq!(
            report.total_queue_ms, 0,
            "{share:?}: nothing queues uncapped"
        );
        assert!(
            report.p50_latency_ms() <= report.p99_latency_ms()
                && report.p99_latency_ms() <= report.makespan_ms,
            "{share:?}: percentile ordering"
        );
    }
}

#[test]
fn inflight_cap_queues_without_changing_accounting() {
    let s = scenario(42);
    let n = s.suite.len();
    let session_of: Vec<usize> = (0..n).map(|i| i % 8).collect();
    let free = run(
        &s,
        PromptBatch::Keys(10),
        8,
        &session_of,
        &AdmissionPolicy::default(),
    );
    let capped = run(
        &s,
        PromptBatch::Keys(10),
        8,
        &session_of,
        &AdmissionPolicy {
            max_inflight: 2,
            ..AdmissionPolicy::default()
        },
    );
    assert!(capped.total_queue_ms > 0, "a 2-query window must queue");
    assert!(
        capped.makespan_ms >= free.makespan_ms,
        "queueing never speeds up"
    );
    for (i, (got, want)) in capped.outcomes.iter().zip(&free.outcomes).enumerate() {
        assert_eq!(
            got.result.relation, want.result.relation,
            "relation, query {i}"
        );
        assert_stats_eq_modulo_clocks(
            &got.result.stats,
            &want.result.stats,
            &format!("stats, query {i}"),
        );
        assert!(
            got.arrival_ms <= got.admitted_ms && got.admitted_ms <= got.finished_ms,
            "timeline ordering, query {i}"
        );
        assert_eq!(
            got.result.stats.queue_ms,
            got.admitted_ms - got.arrival_ms,
            "queue accounting, query {i}"
        );
    }
}

#[test]
fn repeat_runs_are_identical_on_every_field() {
    let s = scenario(42);
    let n = s.suite.len();
    let session_of: Vec<usize> = (0..n).map(|i| i % 8).collect();
    let policy = AdmissionPolicy {
        max_inflight: 6,
        ..AdmissionPolicy::default()
    };
    let a = run(
        &s,
        PromptBatch::Grid { keys: 10, attrs: 6 },
        8,
        &session_of,
        &policy,
    );
    let b = run(
        &s,
        PromptBatch::Grid { keys: 10, attrs: 6 },
        8,
        &session_of,
        &policy,
    );
    assert_eq!(a.makespan_ms, b.makespan_ms);
    assert_eq!(a.total_queue_ms, b.total_queue_ms);
    assert_eq!(a.lane_utilisation, b.lane_utilisation);
    assert_eq!(a.pool_lanes, b.pool_lanes);
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.result.relation, y.result.relation, "relation, query {i}");
        assert_stats_eq(
            &x.result.stats,
            &y.result.stats,
            &format!("stats, query {i}"),
        );
        assert_eq!(
            (x.arrival_ms, x.admitted_ms, x.finished_ms),
            (y.arrival_ms, y.admitted_ms, y.finished_ms),
            "timeline, query {i}"
        );
    }
}
