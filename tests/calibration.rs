//! Reproduction regression tests: the *shape* of the paper's Tables 1–2
//! must hold on the default scenario (seed 42). Bands are deliberately
//! wide — the claim is orderings and rough magnitudes, not absolute
//! numbers (see EXPERIMENTS.md).

use galois::core::{BaselineKind, GaloisOptions};
use galois::dataset::{QueryCategory, Scenario};
use galois::eval::{run_baseline_suite, run_galois_suite, table2};
use galois::llm::ModelProfile;

fn scenario() -> Scenario {
    Scenario::generate(42)
}

#[test]
fn table1_shape_holds() {
    let s = scenario();
    let diff = |p: ModelProfile| {
        run_galois_suite(&s, p, GaloisOptions::default()).average_cardinality_diff()
    };
    let flan = diff(ModelProfile::flan());
    let tk = diff(ModelProfile::tk());
    let gpt3 = diff(ModelProfile::gpt3());
    let chatgpt = diff(ModelProfile::chatgpt());

    // Paper: flan -47.4, tk -43.7, gpt3 +1.0, chatgpt -19.5.
    assert!((-60.0..=-25.0).contains(&flan), "flan {flan}");
    assert!((-55.0..=-22.0).contains(&tk), "tk {tk}");
    assert!((-6.0..=8.0).contains(&gpt3), "gpt3 {gpt3}");
    assert!((-28.0..=-5.0).contains(&chatgpt), "chatgpt {chatgpt}");

    // Orderings: small models miss by far the most rows; GPT-3 is closest
    // to zero; ChatGPT sits in between.
    assert!(flan < chatgpt && tk < chatgpt, "small models worst");
    assert!(chatgpt < gpt3.min(0.5) + 0.5 || gpt3.abs() < chatgpt.abs());
    assert!(
        gpt3.abs() < flan.abs() && gpt3.abs() < tk.abs() && gpt3.abs() < chatgpt.abs(),
        "gpt3 must be closest to 0"
    );
}

#[test]
fn table2_shape_holds() {
    let s = scenario();
    let t = table2(&s, ModelProfile::chatgpt());
    let (g_all, g_sel, g_agg, g_join) = t.galois;
    let (q_all, q_sel, q_agg, q_join) = t.qa;
    let (c_all, c_sel, c_agg, c_join) = t.cot;

    // Paper row R_M: 50 / 80 / 29 / 0.
    assert!((0.35..=0.65).contains(&g_all), "R_M all {g_all}");
    assert!((0.55..=0.92).contains(&g_sel), "R_M selections {g_sel}");
    assert!(g_sel > g_agg, "selections easiest");
    assert!(g_agg > g_join, "joins hardest");
    assert!(g_join < 0.30, "joins near-catastrophic: {g_join}");

    // Galois beats both NL baselines overall (the paper's headline).
    assert!(g_all > q_all, "R_M {g_all} vs T_M {q_all}");
    assert!(g_all > c_all, "R_M {g_all} vs T_C_M {c_all}");

    // QA baselines: selections fine, aggregates poor, joins near zero.
    assert!(q_sel > 0.5);
    assert!(q_agg < 0.3, "T_M aggregates {q_agg}");
    assert!(q_join < 0.25, "T_M joins {q_join}");

    // CoT does not beat plain QA (paper: 41 vs 44 overall, 13 vs 20 agg).
    assert!(c_all <= q_all + 0.02, "CoT {c_all} vs QA {q_all}");
    assert!(c_agg <= q_agg + 0.02);
    assert!(c_join <= 0.10, "CoT joins {c_join}");
    assert!(c_sel > 0.4);
}

#[test]
fn prompt_counts_are_in_the_papers_regime() {
    // Paper §5: ~110 batched prompts per query on GPT-3; ours land in the
    // same order of magnitude (smaller relations than Spider).
    let s = scenario();
    let run = run_galois_suite(&s, ModelProfile::gpt3(), GaloisOptions::default());
    let t = galois::eval::timing_summary(&run);
    assert!(
        (20.0..=250.0).contains(&t.mean_prompts),
        "mean prompts {}",
        t.mean_prompts
    );
    // Skewed distribution, as the paper notes.
    assert!(t.p90_prompts > t.median_prompts);
}

#[test]
fn baselines_differ_between_plain_and_cot() {
    let s = scenario();
    let qa = run_baseline_suite(&s, ModelProfile::chatgpt(), BaselineKind::Plain);
    let cot = run_baseline_suite(&s, ModelProfile::chatgpt(), BaselineKind::ChainOfThought);
    // Joins: CoT must be at least as bad (paper: 8 → 0).
    let j = |r: &galois::eval::BaselineRun| r.content_score(Some(QueryCategory::Join));
    assert!(j(&cot) <= j(&qa) + 1e-9);
}
