//! Property-based integration tests across seeds: the corpus generator,
//! the prompt protocol and the cleaning stage must hold their invariants
//! for arbitrary worlds, not just seed 42.

use galois::core::clean::{clean_to_type, parse_number, CleaningPolicy};
use galois::core::parse::{parse_list_answer, ListAnswer};
use galois::dataset::{Scenario, WorldConfig};
use galois::llm::nlq;
use galois::relational::{DataType, Value};
use proptest::prelude::*;

fn small_config() -> WorldConfig {
    WorldConfig {
        countries: 6,
        cities: 12,
        airports: 6,
        singers: 6,
        concerts: 8,
        employees: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every seed yields a suite whose 46 queries parse, plan, and return
    /// non-empty ground truth, and whose NL paraphrases round-trip.
    #[test]
    fn suite_invariants_hold_for_any_seed(seed in 0u64..10_000) {
        let s = Scenario::generate_with(seed, small_config());
        prop_assert_eq!(s.suite.len(), 46);
        for spec in &s.suite {
            let sql = spec.to_sql();
            let truth = s.database.execute(&sql)
                .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
            prop_assert!(!truth.is_empty(), "q{} empty ground truth: {}", spec.id, sql);
            let question = spec.question();
            let parsed = nlq::parse_question(&question);
            prop_assert_eq!(parsed, Some(spec.to_intent()), "q{}", spec.id);
        }
    }

    /// The ground-truth DB and the knowledge store always agree on entity
    /// counts (same world, two views).
    #[test]
    fn db_and_knowledge_agree(seed in 0u64..10_000) {
        let s = Scenario::generate_with(seed, small_config());
        prop_assert_eq!(
            s.database.catalog().get("city").unwrap().len(),
            s.knowledge.entities_of_type("city").len()
        );
        prop_assert_eq!(
            s.database.catalog().get("country").unwrap().len(),
            s.knowledge.entities_of_type("country").len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The number cleaner never panics and is sign/magnitude-consistent
    /// with what it parses.
    #[test]
    fn cleaner_total_on_arbitrary_text(input in "[ -~]{0,40}") {
        let policy = CleaningPolicy::default();
        let _ = parse_number(&input, &policy);
        let _ = clean_to_type(&input, DataType::Int, &policy);
        let _ = clean_to_type(&input, DataType::Date, &policy);
        let _ = clean_to_type(&input, DataType::Text, &policy);
    }

    /// Rendered integers always survive the cleaning round-trip, in every
    /// simulator format.
    #[test]
    fn integers_roundtrip_through_all_formats(v in -1_000_000_000i64..1_000_000_000) {
        use galois::llm::noise::{render_number, NumberStyle};
        let policy = CleaningPolicy::default();
        for style in [
            NumberStyle::Plain,
            NumberStyle::Thousands,
            NumberStyle::SpelledMillions,
            NumberStyle::KSuffix,
            NumberStyle::Approximate,
        ] {
            let rendered = render_number(v as f64, style);
            let cleaned = clean_to_type(&rendered, DataType::Int, &policy);
            let Some(Value::Int(got)) = cleaned else {
                return Err(TestCaseError::fail(format!(
                    "{v} rendered as {rendered:?} did not clean back"
                )));
            };
            // Spelled forms round to the displayed precision; stay within
            // the evaluation's 5% tolerance.
            let tol = (v.abs() as f64 * 0.05).max(1.0);
            prop_assert!(
                ((got - v).abs() as f64) <= tol,
                "style {style:?}: {v} -> {rendered} -> {got}"
            );
        }
    }

    /// The list-answer parser never panics and never invents values that
    /// are not substrings of the answer.
    #[test]
    fn list_parser_is_conservative(input in "[ -~]{0,80}") {
        if let ListAnswer::Values(values) = parse_list_answer(&input) {
            for v in values {
                prop_assert!(!v.is_empty());
                prop_assert!(input.contains(v.trim_matches('"')) || input.contains(&v),
                    "invented {v:?} from {input:?}");
            }
        }
    }
}
