//! Shared harness for the `tests/*_equivalence.rs` batteries.
//!
//! Every battery compiles this module via `mod common;` and uses the
//! subset it needs (hence the file-wide `dead_code` allowance): the small
//! world config, row/stat normalisers, session constructors, the
//! options-matrix builder, the suite runner with its stat-snapshot diff,
//! and the adversarial model wrappers that corrupt batched answers.

#![allow(dead_code)]

use galois::core::{
    EarlyStop, Galois, GaloisOptions, ListStore, Parallelism, Pipeline, PromptBatch, QueryStats,
};
use galois::dataset::{Scenario, WorldConfig};
use galois::llm::intent::{parse_task, TaskIntent};
use galois::llm::{Completion, FaultProfile, FaultyLlm, LanguageModel, ModelProfile, SimLlm};
use galois::relational::{Relation, Value};
use std::sync::Arc;

/// The batteries' standard small world: big enough to exercise every
/// operator family, small enough that a full 46-query suite pass stays
/// fast under proptest.
pub fn small_config() -> WorldConfig {
    WorldConfig {
        countries: 6,
        cities: 14,
        airports: 6,
        singers: 6,
        concerts: 8,
        employees: 10,
    }
}

/// A slightly larger world for optimizer-style batteries that want more
/// join fan-out than the small config produces.
pub fn medium_config() -> WorldConfig {
    WorldConfig {
        countries: 8,
        cities: 20,
        airports: 10,
        singers: 10,
        concerts: 12,
        employees: 15,
    }
}

/// Rows rendered to strings and sorted — the canonical order-insensitive
/// relation comparison.
pub fn sorted_rows(rel: &Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect())
        .collect();
    rows.sort();
    rows
}

/// Stat-snapshot diff: `QueryStats` equality modulo the real wall clock,
/// which is measured, not simulated. Comparing the whole struct (rather
/// than hand-picked fields) means a newly added counter is pinned by
/// every battery automatically.
pub fn assert_stats_eq(a: &QueryStats, b: &QueryStats, label: &str) {
    let mut a = *a;
    let mut b = *b;
    a.wall_ms = 0;
    b.wall_ms = 0;
    assert_eq!(a, b, "{label}");
}

/// A deterministic fault injector over the scenario's oracle model. The
/// returned handle can be shared across sessions: the per-prompt attempt
/// map lives in the wrapper, so a later session continues each prompt's
/// fault schedule where an earlier one left off.
pub fn faulty_oracle(s: &Scenario, profile: FaultProfile) -> Arc<FaultyLlm> {
    Arc::new(FaultyLlm::new(
        Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle())),
        profile,
    ))
}

/// Chaos-run stat comparison: a retried run legally spends extra virtual
/// time (backoff is billed into the clocks) and bumps its own resilience
/// counters, so those are zeroed on both sides; *everything else* —
/// prompts per kind net of retries, cache hits, token totals, rows
/// retrieved, and crucially `failed_cells` — must match the fault-free
/// run exactly.
pub fn assert_stats_eq_modulo_resilience(a: &QueryStats, b: &QueryStats, label: &str) {
    let mut a = *a;
    let mut b = *b;
    for s in [&mut a, &mut b] {
        s.wall_ms = 0;
        s.virtual_ms = 0;
        s.serial_virtual_ms = 0;
        s.list_virtual_ms = 0;
        s.filter_virtual_ms = 0;
        s.fetch_virtual_ms = 0;
        s.retries = 0;
        s.timeouts = 0;
        s.rate_limited = 0;
        s.breaker_fastfails = 0;
    }
    assert_eq!(a, b, "{label}");
}

/// An oracle-model session over the scenario's world with explicit
/// options.
pub fn oracle_session(s: &Scenario, opts: GaloisOptions) -> Galois {
    Galois::with_options(
        Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle())),
        s.database.clone(),
        opts,
    )
}

/// A session over an arbitrary (usually adversarial) model.
pub fn session_with_model(
    model: Arc<dyn LanguageModel>,
    s: &Scenario,
    opts: GaloisOptions,
) -> Galois {
    Galois::with_options(model, s.database.clone(), opts)
}

/// `GaloisOptions` with the four axes the batteries most often vary.
pub fn options(
    store: ListStore,
    pipeline: Pipeline,
    batch: PromptBatch,
    lanes: usize,
) -> GaloisOptions {
    GaloisOptions {
        pipeline,
        prompt_batch: batch,
        parallelism: Parallelism::new(lanes),
        list_store: store,
        ..Default::default()
    }
}

/// Cartesian options-matrix builder. Each axis defaults to the single
/// engine default, so a battery spells out only the axes it varies:
///
/// ```ignore
/// for opts in OptionsMatrix::new()
///     .pipelines(&[Pipeline::Off, Pipeline::Streaming])
///     .lanes(&[1, 8])
///     .build()
/// { ... }
/// ```
#[derive(Clone)]
pub struct OptionsMatrix {
    pipelines: Vec<Pipeline>,
    batches: Vec<PromptBatch>,
    lanes: Vec<usize>,
    stores: Vec<ListStore>,
    early_stops: Vec<EarlyStop>,
}

impl Default for OptionsMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl OptionsMatrix {
    /// A matrix holding exactly the default configuration.
    pub fn new() -> Self {
        OptionsMatrix {
            pipelines: vec![Pipeline::default()],
            batches: vec![PromptBatch::default()],
            lanes: vec![1],
            stores: vec![ListStore::default()],
            early_stops: vec![EarlyStop::default()],
        }
    }

    /// Vary the pipeline axis.
    pub fn pipelines(mut self, v: &[Pipeline]) -> Self {
        self.pipelines = v.to_vec();
        self
    }

    /// Vary the prompt-batch axis.
    pub fn batches(mut self, v: &[PromptBatch]) -> Self {
        self.batches = v.to_vec();
        self
    }

    /// Vary the lane/worker axis.
    pub fn lanes(mut self, v: &[usize]) -> Self {
        self.lanes = v.to_vec();
        self
    }

    /// Vary the list-store axis.
    pub fn stores(mut self, v: &[ListStore]) -> Self {
        self.stores = v.to_vec();
        self
    }

    /// Vary the early-stop axis.
    pub fn early_stops(mut self, v: &[EarlyStop]) -> Self {
        self.early_stops = v.to_vec();
        self
    }

    /// The cartesian product of every axis, as ready-to-use options.
    pub fn build(&self) -> Vec<GaloisOptions> {
        let mut out = Vec::new();
        for pipeline in &self.pipelines {
            for batch in &self.batches {
                for &lanes in &self.lanes {
                    for store in &self.stores {
                        for &early_stop in &self.early_stops {
                            out.push(GaloisOptions {
                                pipeline: *pipeline,
                                prompt_batch: *batch,
                                parallelism: Parallelism::new(lanes),
                                list_store: store.clone(),
                                early_stop,
                                ..Default::default()
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Suite runner: executes the first `take` suite queries on both sessions
/// and requires bit-identical results — same rows *in order* and the same
/// stat snapshot (every counter, both virtual clocks; wall time excluded).
pub fn assert_suite_bit_identical(s: &Scenario, a: &Galois, b: &Galois, take: usize, label: &str) {
    for spec in s.suite.iter().take(take) {
        let sql = spec.to_sql();
        let ra = a.execute(&sql).unwrap();
        let rb = b.execute(&sql).unwrap();
        assert_eq!(
            ra.relation.rows, rb.relation.rows,
            "{label}: q{} rows: {sql}",
            spec.id
        );
        assert_stats_eq(
            &ra.stats,
            &rb.stats,
            &format!("{label}: q{} stats: {sql}", spec.id),
        );
    }
}

/// Suite runner for configurations that may legally reshape the prompt
/// schedule: requires identical relations (order-insensitive) only.
pub fn assert_suite_rows_match(s: &Scenario, a: &Galois, b: &Galois, take: usize, label: &str) {
    for spec in s.suite.iter().take(take) {
        let sql = spec.to_sql();
        let ra = a.execute(&sql).unwrap();
        let rb = b.execute(&sql).unwrap();
        assert_eq!(
            sorted_rows(&ra.relation),
            sorted_rows(&rb.relation),
            "{label}: q{} diverged: {sql}",
            spec.id
        );
    }
}

/// A deterministic Fisher–Yates permutation of `0..n` driven by a plain
/// LCG, so proptest can explore suite orderings without a shuffle
/// strategy.
pub fn permutation(n: usize, mut state: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Wraps a model and corrupts every multi-key answer by dropping every
/// second line — forcing half the keys (or grid cells) of every batched
/// prompt down the fallback ladder, and half of *those* past the middle
/// rung to per-key singles.
pub struct LineDropper {
    inner: SimLlm,
}

impl LineDropper {
    /// A dropper over the scenario's oracle model.
    pub fn oracle(s: &Scenario) -> Self {
        LineDropper {
            inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
        }
    }
}

impl LanguageModel for LineDropper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn complete(&self, prompt: &str) -> Completion {
        let mut completion = self.inner.complete(prompt);
        if matches!(
            parse_task(prompt),
            Some(
                TaskIntent::FetchGridBatch { .. }
                    | TaskIntent::FetchAttrBatch { .. }
                    | TaskIntent::FilterKeysBatch { .. }
            )
        ) {
            completion.text = completion
                .text
                .lines()
                .enumerate()
                .filter_map(|(i, line)| (i % 2 == 0).then_some(line))
                .collect::<Vec<_>>()
                .join("\n");
        }
        completion
    }
}

/// Wraps a model and reverses the line order of every grid answer — the
/// parser is order-tolerant, so this must cost nothing: same relations,
/// same prompt bill as the clean run.
pub struct LinePermuter {
    inner: SimLlm,
}

impl LinePermuter {
    /// A permuter over the scenario's oracle model.
    pub fn oracle(s: &Scenario) -> Self {
        LinePermuter {
            inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
        }
    }
}

impl LanguageModel for LinePermuter {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn complete(&self, prompt: &str) -> Completion {
        let mut completion = self.inner.complete(prompt);
        if matches!(parse_task(prompt), Some(TaskIntent::FetchGridBatch { .. })) {
            let mut lines: Vec<&str> = completion.text.lines().collect();
            lines.reverse();
            completion.text = lines.join("\n");
        }
        completion
    }
}
