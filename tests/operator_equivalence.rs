//! Operator-surface battery (PR 8): joins, grouped aggregates and LIMIT
//! windows over LLM relations, plus LIMIT-aware early termination.
//!
//! 1. **Defaults stay bit-exact** — `EarlyStop::Off` is the default, and
//!    `EarlyStop::Limit` is *inert* wherever its precondition fails: on
//!    queries without a plain LIMIT window, and under `Pipeline::Off`
//!    (wave retrieval has no per-key release points to cancel). Inert
//!    means bit-identical stat snapshots, not just equal rows.
//! 2. **Oracle exactness** — every operator-suite family (LLM ⋈ LLM,
//!    LLM ⋈ stored, GROUP BY/HAVING, LIMIT) evaluates exactly against
//!    relational ground truth on the noise-free model, across pipelines,
//!    batch shapes and the early-stop knob.
//! 3. **Early-stop economics** — on a 100+-key concept, a streaming
//!    `LIMIT 10` with `EarlyStop::Limit` returns exactly the full
//!    evaluation truncated, while issuing measurably fewer prompts.
//! 4. **Fallback safety under LIMIT** — a model that corrupts batched
//!    answers (forcing mid-flight fallback re-asks) must not make early
//!    stop skip keys whose verdicts fell back: the surfaced window still
//!    equals the clean engine's.
//! 5. **Property form** — for any seed × B × K × pipeline, `LIMIT n` on
//!    the noise-free model returns a result that full-evaluation-then-
//!    truncate admits, and never issues more prompts than the unlimited
//!    query.

mod common;

use common::{
    assert_stats_eq, options, oracle_session, session_with_model, small_config, sorted_rows,
    LineDropper, OptionsMatrix,
};
use galois::core::{EarlyStop, GaloisOptions, ListStore, Pipeline, PromptBatch};
use galois::dataset::{build_operator_suite, OperatorCheck, Scenario, WorldConfig};
use galois::llm::{ModelProfile, SimLlm};
use galois::relational::{Relation, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn rendered(rel: &Relation) -> Vec<Vec<String>> {
    rel.rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect())
        .collect()
}

/// Checks one operator result against ground truth under the query's
/// scoring semantics.
fn check_against_truth(s: &Scenario, q: &galois::dataset::OperatorQuery, got: &Relation) {
    match &q.check {
        OperatorCheck::Exact => {
            let truth = s.database.execute(&q.sql).unwrap();
            assert_eq!(
                sorted_rows(got),
                sorted_rows(&truth),
                "op{} ({:?}) diverged from ground truth: {}",
                q.id,
                q.family,
                q.sql
            );
        }
        OperatorCheck::Window {
            unlimited_sql,
            n,
            offset,
        } => {
            let full = s.database.execute(unlimited_sql).unwrap();
            let full_rows = sorted_rows(&full);
            let expect = (*n).min(full.rows.len().saturating_sub(*offset));
            assert_eq!(got.rows.len(), expect, "op{} window size: {}", q.id, q.sql);
            for row in rendered(got) {
                assert!(
                    full_rows.contains(&row),
                    "op{}: row {row:?} not admitted by the unlimited truth: {}",
                    q.id,
                    q.sql
                );
            }
        }
    }
}

/// `EarlyStop::Off` stays the default, and switching the knob on changes
/// *nothing* on queries without a plain LIMIT window — bit-identical stat
/// snapshots across the pipeline × batch × lane matrix, over the paper
/// suite (which contains no LIMIT clause).
#[test]
fn limit_knob_is_inert_without_a_limit_window() {
    let s = Scenario::generate_with(42, small_config());
    assert_eq!(
        GaloisOptions::default().early_stop,
        EarlyStop::Off,
        "Off must stay the default"
    );
    for base in OptionsMatrix::new()
        .pipelines(&[Pipeline::Off, Pipeline::Streaming])
        .batches(&[PromptBatch::Off, PromptBatch::Keys(8)])
        .lanes(&[1, 4])
        .build()
    {
        let off = oracle_session(&s, base.clone());
        let on = oracle_session(
            &s,
            GaloisOptions {
                early_stop: EarlyStop::Limit,
                ..base.clone()
            },
        );
        for spec in s.suite.iter().take(10) {
            let sql = spec.to_sql();
            let a = off.execute(&sql).unwrap();
            let b = on.execute(&sql).unwrap();
            assert_eq!(
                a.relation.rows, b.relation.rows,
                "q{} rows ({:?}, {:?})",
                spec.id, base.pipeline, base.prompt_batch
            );
            assert_stats_eq(
                &a.stats,
                &b.stats,
                &format!(
                    "q{} stats ({:?}, {:?}, K={}): {sql}",
                    spec.id,
                    base.pipeline,
                    base.prompt_batch,
                    base.parallelism.get()
                ),
            );
        }
    }
}

/// Under wave retrieval the knob is inert even on LIMIT queries: there
/// are no per-key release points to cancel, so stat snapshots match the
/// knob-off session bit for bit.
#[test]
fn limit_knob_is_inert_under_wave_retrieval() {
    let s = Scenario::generate_with(42, small_config());
    let ops = build_operator_suite(&s.world);
    let off = oracle_session(
        &s,
        options(ListStore::Off, Pipeline::Off, PromptBatch::Keys(8), 4),
    );
    let on = oracle_session(
        &s,
        GaloisOptions {
            early_stop: EarlyStop::Limit,
            ..options(ListStore::Off, Pipeline::Off, PromptBatch::Keys(8), 4)
        },
    );
    for q in ops
        .iter()
        .filter(|q| matches!(q.family, galois::dataset::OperatorFamily::Limit))
    {
        let a = off.execute(&q.sql).unwrap();
        let b = on.execute(&q.sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows, "op{}: {}", q.id, q.sql);
        assert_stats_eq(&a.stats, &b.stats, &format!("op{} stats: {}", q.id, q.sql));
    }
}

/// Every operator family evaluates exactly on the noise-free model,
/// across the pipeline × batch × early-stop matrix. This is the oracle
/// battery of the widened query surface: joins between two LLM scans,
/// joins against `DB.`-qualified stored tables, GROUP BY/HAVING
/// aggregates, and LIMIT/OFFSET windows.
#[test]
fn operator_suite_is_exact_on_the_oracle_across_the_matrix() {
    let s = Scenario::generate_with(42, small_config());
    let ops = build_operator_suite(&s.world);
    for opts in OptionsMatrix::new()
        .pipelines(&[Pipeline::Off, Pipeline::Streaming])
        .batches(&[
            PromptBatch::Off,
            PromptBatch::Keys(8),
            PromptBatch::Grid { keys: 8, attrs: 2 },
        ])
        .early_stops(&[EarlyStop::Off, EarlyStop::Limit])
        .lanes(&[4])
        .build()
    {
        let session = oracle_session(&s, opts.clone());
        for q in &ops {
            let got = session
                .execute(&q.sql)
                .unwrap_or_else(|e| panic!("op{}: {}\n{e}", q.id, q.sql));
            check_against_truth(&s, q, &got.relation);
        }
    }
}

/// The headline economics (ISSUE acceptance): a streaming `LIMIT 10` over
/// a 100+-key concept with `EarlyStop::Limit` surfaces exactly the rows
/// the full evaluation would keep, while issuing measurably fewer
/// prompts — the early stop cancels list pages and the per-key filter and
/// fetch work of keys past the covered window.
#[test]
fn early_stop_cuts_prompts_on_a_wide_concept() {
    let s = Scenario::generate_with(
        42,
        WorldConfig {
            countries: 6,
            cities: 120,
            airports: 6,
            singers: 6,
            concerts: 8,
            employees: 10,
        },
    );
    // A paged listing (10 keys per page) so the list phase has something
    // to cancel; the default oracle answers a whole concept in one page.
    let paged = ModelProfile {
        list_page_size: 10,
        ..ModelProfile::oracle()
    };
    let session = |early_stop: EarlyStop| {
        galois::core::Galois::with_options(
            Arc::new(SimLlm::new(s.knowledge.clone(), paged.clone())),
            s.database.clone(),
            GaloisOptions {
                early_stop,
                ..options(ListStore::Off, Pipeline::Streaming, PromptBatch::Keys(8), 4)
            },
        )
    };
    for sql in [
        "SELECT name FROM city LIMIT 10",
        "SELECT name, population FROM city WHERE elevation < 3000 LIMIT 10",
        "SELECT name FROM city LIMIT 5 OFFSET 3",
    ] {
        let full = session(EarlyStop::Off).execute(sql).unwrap();
        let early = session(EarlyStop::Limit).execute(sql).unwrap();
        assert_eq!(
            early.relation.rows, full.relation.rows,
            "early stop changed the surfaced window: {sql}"
        );
        assert!(
            early.stats.total_prompts() < full.stats.total_prompts(),
            "{sql}: early {} vs full {} prompts — no measurable saving",
            early.stats.total_prompts(),
            full.stats.total_prompts()
        );
        assert!(
            early.stats.list_prompts < full.stats.list_prompts,
            "{sql}: early stop must cancel list paging ({} vs {})",
            early.stats.list_prompts,
            full.stats.list_prompts
        );
    }
}

/// Satellite: fallback safety under LIMIT. A `LineDropper` model corrupts
/// every batched filter/fetch answer, forcing mid-flight fallback
/// re-asks; with grid fusion, streaming and early stop all on, a key
/// whose filter verdict fell back must still be counted before the stop —
/// the surfaced window equals the clean engine's exactly.
#[test]
fn early_stop_waits_for_fallback_verdicts() {
    let s = Scenario::generate_with(42, small_config());
    let ops = build_operator_suite(&s.world);
    let clean = oracle_session(
        &s,
        options(ListStore::Off, Pipeline::Off, PromptBatch::Off, 1),
    );
    for lanes in [1usize, 8] {
        let flaky = session_with_model(
            Arc::new(LineDropper::oracle(&s)),
            &s,
            GaloisOptions {
                early_stop: EarlyStop::Limit,
                ..options(
                    ListStore::Off,
                    Pipeline::Streaming,
                    PromptBatch::Grid { keys: 8, attrs: 2 },
                    lanes,
                )
            },
        );
        for q in ops
            .iter()
            .filter(|q| matches!(q.family, galois::dataset::OperatorFamily::Limit))
        {
            let a = clean.execute(&q.sql).unwrap();
            let b = flaky.execute(&q.sql).unwrap();
            assert_eq!(
                a.relation.rows, b.relation.rows,
                "op{} window diverged under corrupted batches at K={lanes}: {}",
                q.id, q.sql
            );
        }
    }
}

/// A LIMIT query that stops listing early must not poison the shared key
/// universe: the store records the partial listing as *non-exhausted*, so
/// a later unlimited query on the same session resumes paging and still
/// surfaces the complete relation.
#[test]
fn early_stopped_listings_do_not_poison_the_key_universe_store() {
    let s = Scenario::generate_with(
        42,
        WorldConfig {
            countries: 6,
            cities: 120,
            airports: 6,
            singers: 6,
            concerts: 8,
            employees: 10,
        },
    );
    let paged = ModelProfile {
        list_page_size: 10,
        ..ModelProfile::oracle()
    };
    let session = galois::core::Galois::with_options(
        Arc::new(SimLlm::new(s.knowledge.clone(), paged)),
        s.database.clone(),
        GaloisOptions {
            early_stop: EarlyStop::Limit,
            ..options(ListStore::On, Pipeline::Streaming, PromptBatch::Keys(8), 4)
        },
    );
    let limited = session.execute("SELECT name FROM city LIMIT 10").unwrap();
    assert_eq!(limited.relation.rows.len(), 10);
    let full = session.execute("SELECT name FROM city").unwrap();
    let truth = s.database.execute("SELECT name FROM city").unwrap();
    assert_eq!(
        sorted_rows(&full.relation),
        sorted_rows(&truth),
        "resumed listing must complete the universe"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seed × B × K × pipeline, `LIMIT n` over a selection query
    /// on the noise-free model returns exactly the full evaluation
    /// truncated to `n` — a result full-evaluation-then-truncate admits —
    /// and never issues more prompts than the unlimited query.
    #[test]
    fn limit_is_admissible_and_never_dearer_for_any_seed(
        seed in 0u64..10_000,
        qi in 0usize..20,
        n in 0usize..18,
        b in 1usize..12,
        lanes in 1usize..8,
        streaming in any::<bool>(),
    ) {
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        prop_assert!(matches!(
            spec.category,
            galois::dataset::QueryCategory::SelectionOnly
        ));
        let pipeline = if streaming { Pipeline::Streaming } else { Pipeline::Off };
        let base = options(ListStore::Off, pipeline, PromptBatch::Keys(b), lanes);
        let limited_sql = format!("{} LIMIT {n}", spec.to_sql());

        let unlimited = oracle_session(&s, base.clone())
            .execute(&spec.to_sql())
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let limited = oracle_session(&s, GaloisOptions { early_stop: EarlyStop::Limit, ..base })
            .execute(&limited_sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;

        let want: Vec<_> = unlimited.relation.rows.iter().take(n).cloned().collect();
        prop_assert_eq!(
            &limited.relation.rows, &want,
            "q{} LIMIT {} is not the truncated full evaluation (B={}, K={}, {:?})",
            spec.id, n, b, lanes, pipeline
        );
        prop_assert!(
            limited.stats.total_prompts() <= unlimited.stats.total_prompts(),
            "q{} LIMIT {}: limited {} > unlimited {} prompts (B={}, K={}, {:?})",
            spec.id, n,
            limited.stats.total_prompts(), unlimited.stats.total_prompts(),
            b, lanes, pipeline
        );
    }
}
