//! Key-universe store equivalence battery (PR 6):
//!
//! 1. **Off bit-exactness** — `ListStore::Off` (the default) must be
//!    bit-identical to a session that never heard of the store: every
//!    `QueryStats` field and every result row, across the whole suite.
//! 2. **Warm-pass equivalence** — a second suite pass on a store-enabled
//!    session must reproduce the cold pass's relations, Table-1/Table-2
//!    metrics and cache-hit totals exactly, while issuing *zero* list
//!    prompts (the whole point of the store) and no more prompts overall
//!    than a store-off session's second pass.
//! 3. **Exhausted concepts are never re-listed** — an auditing model
//!    wrapper checks, at prompt time, that no `ListKeys`/`ListKeysPage`
//!    prompt ever names a concept the shared store already holds as
//!    exhausted.
//! 4. **Invalidation** — a store warmed by one model signature must be
//!    invisible to a different signature: the second session re-lists
//!    from scratch and matches a fresh session bit-for-bit.
//! 5. **Partial frontiers** — a capped listing stores a partial universe;
//!    a later query appends past the frontier (append-only, no duplicate
//!    keys) and the final universe equals the uncapped listing.
//! 6. **Thread-count determinism** — suite cache-hit totals are identical
//!    at 1 and 8 harness threads, and repeated 8-thread runs agree
//!    (the by-signature sub-entry accounting regression pin).
//! 7. **Property form** — over random seeds, random query orderings,
//!    K ∈ {1,2,8}, B ∈ {1,10}, both pipelines: the store never changes
//!    `R_M`, the warm pass lists nothing, and cache-hit totals match the
//!    store-off session pass-for-pass.

mod common;

use common::{assert_stats_eq, options, oracle_session, permutation, small_config, sorted_rows};
use galois::core::{
    concept_signature_for, Galois, GaloisOptions, ListStore, Parallelism, Pipeline, PromptBatch,
};
use galois::dataset::Scenario;
use galois::eval::{run_galois_suite_on, GaloisRun};
use galois::llm::intent::{parse_task, TaskIntent};
use galois::llm::{Completion, KeyUniverseStore, LanguageModel, ModelProfile, SimLlm};
use galois::relational::Value;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// `ListStore::Off` is the default and must be bit-identical to the
/// pre-store engine: every observable counter and every row, for every
/// suite query, on both pipelines.
#[test]
fn store_off_is_bit_identical_to_default() {
    let s = Scenario::generate_with(42, small_config());
    assert_eq!(
        GaloisOptions::default().list_store,
        ListStore::Off,
        "Off must stay the default"
    );
    for pipeline in [Pipeline::Off, Pipeline::Streaming] {
        let default_session = oracle_session(
            &s,
            GaloisOptions {
                pipeline,
                prompt_batch: PromptBatch::Keys(10),
                parallelism: Parallelism::new(4),
                ..Default::default()
            },
        );
        let off_session = oracle_session(
            &s,
            options(ListStore::Off, pipeline, PromptBatch::Keys(10), 4),
        );
        for spec in &s.suite {
            let sql = spec.to_sql();
            let a = default_session.execute(&sql).unwrap();
            let b = off_session.execute(&sql).unwrap();
            assert_eq!(a.relation.rows, b.relation.rows, "q{}", spec.id);
            assert_stats_eq(&a.stats, &b.stats, &format!("q{} stats: {sql}", spec.id));
        }
    }
}

/// Asserts two suite runs agree on everything Table 1 and Table 2 are
/// computed from, per query.
fn assert_tables_equal(a: &GaloisRun, b: &GaloisRun, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: suite length");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.truth_rows, y.truth_rows, "{label}: q{} |R_D|", x.id);
        assert_eq!(x.result_rows, y.result_rows, "{label}: q{} |R_M|", x.id);
        assert_eq!(
            x.cardinality_diff, y.cardinality_diff,
            "{label}: q{} Table-1 cell",
            x.id
        );
        assert_eq!(x.matching, y.matching, "{label}: q{} Table-2 cells", x.id);
    }
    assert_eq!(
        a.average_cardinality_diff(),
        b.average_cardinality_diff(),
        "{label}: Table 1"
    );
    assert_eq!(
        a.content_score(None),
        b.content_score(None),
        "{label}: Table 2"
    );
}

fn suite_hits(run: &GaloisRun) -> usize {
    run.outcomes.iter().map(|o| o.stats.cache_hits).sum()
}

fn suite_prompts(run: &GaloisRun) -> usize {
    run.outcomes.iter().map(|o| o.stats.total_prompts()).sum()
}

fn suite_list_prompts(run: &GaloisRun) -> usize {
    run.outcomes.iter().map(|o| o.stats.list_prompts).sum()
}

/// Cold pass, warm pass, and a store-off control session, on both
/// pipelines: the store must be invisible in every reported table and in
/// the cache-hit bill, and the warm pass must list nothing.
#[test]
fn warm_pass_matches_cold_pass_tables_and_hits() {
    let s = Scenario::generate_with(42, small_config());
    for pipeline in [Pipeline::Off, Pipeline::Streaming] {
        let off = oracle_session(
            &s,
            options(ListStore::Off, pipeline, PromptBatch::Keys(10), 8),
        );
        let on = oracle_session(
            &s,
            options(ListStore::On, pipeline, PromptBatch::Keys(10), 8),
        );
        let off1 = run_galois_suite_on(&s, &off, "oracle", 1);
        let off2 = run_galois_suite_on(&s, &off, "oracle", 1);
        let on1 = run_galois_suite_on(&s, &on, "oracle", 1);
        let on2 = run_galois_suite_on(&s, &on, "oracle", 1);

        assert_tables_equal(&off1, &on1, "cold pass vs store-off");
        assert_tables_equal(&off2, &on2, "warm pass vs store-off");
        assert_tables_equal(&off1, &on2, "warm pass vs cold pass");

        // The cold pass already shares universes *across* queries: its
        // prompt bill may only shrink, its cache-hit bill is unchanged
        // (a warm read bills the stored iterations — exactly what the
        // store-off session pays in raw prompt-cache hits to re-list).
        assert_eq!(
            suite_hits(&off1),
            suite_hits(&on1),
            "cold-pass cache hits ({pipeline:?})"
        );
        assert!(
            suite_prompts(&on1) <= suite_prompts(&off1),
            "cold pass must not spend extra prompts ({pipeline:?})"
        );
        // The warm pass never lists and never out-spends the store-off
        // session's cached second pass.
        assert_eq!(
            suite_list_prompts(&on2),
            0,
            "warm pass issued list prompts ({pipeline:?})"
        );
        assert_eq!(
            suite_hits(&off2),
            suite_hits(&on2),
            "warm-pass cache hits ({pipeline:?})"
        );
        assert!(
            suite_prompts(&on2) <= suite_prompts(&off2),
            "warm pass must not spend extra prompts ({pipeline:?})"
        );
    }
}

/// Wraps a model and flags any `ListKeys`/`ListKeysPage` prompt whose
/// concept the shared store already holds as exhausted — the one prompt
/// the store exists to make impossible.
struct ListAuditor {
    inner: SimLlm,
    store: Arc<KeyUniverseStore>,
    violations: AtomicUsize,
}

impl LanguageModel for ListAuditor {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn signature(&self) -> String {
        self.inner.signature()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn complete(&self, prompt: &str) -> Completion {
        if let Some(
            TaskIntent::ListKeys {
                relation,
                key_attr,
                condition,
                ..
            }
            | TaskIntent::ListKeysPage {
                relation,
                key_attr,
                condition,
                ..
            },
        ) = parse_task(prompt)
        {
            let concept = concept_signature_for(
                &relation,
                &key_attr,
                &condition.as_ref().map(|c| c.render()).unwrap_or_default(),
            );
            if self
                .store
                .warm_map(&self.inner.signature())
                .contains_key(&concept)
            {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
        self.inner.complete(prompt)
    }
}

/// A fresh session sharing a fully warmed store must never send a list
/// prompt for an exhausted concept to the model — checked at the model
/// boundary, not from the session's own accounting.
#[test]
fn exhausted_concepts_are_never_relisted() {
    let s = Scenario::generate_with(42, small_config());
    let store = Arc::new(KeyUniverseStore::default());
    let warmer = oracle_session(
        &s,
        options(
            ListStore::Shared(store.clone()),
            Pipeline::Off,
            PromptBatch::Keys(10),
            4,
        ),
    );
    for spec in &s.suite {
        warmer.execute(&spec.to_sql()).unwrap();
    }
    assert!(!store.is_empty(), "the cold pass must populate the store");

    let auditor = Arc::new(ListAuditor {
        inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
        store: store.clone(),
        violations: AtomicUsize::new(0),
    });
    let audited = Galois::with_options(
        auditor.clone(),
        s.database.clone(),
        options(
            ListStore::Shared(store.clone()),
            Pipeline::Off,
            PromptBatch::Keys(10),
            4,
        ),
    );
    let control = oracle_session(
        &s,
        options(ListStore::Off, Pipeline::Off, PromptBatch::Keys(10), 4),
    );
    for spec in &s.suite {
        let sql = spec.to_sql();
        let got = audited.execute(&sql).unwrap();
        let want = control.execute(&sql).unwrap();
        assert_eq!(
            sorted_rows(&got.relation),
            sorted_rows(&want.relation),
            "q{} diverged on the warmed store: {sql}",
            spec.id
        );
    }
    assert_eq!(
        auditor.violations.load(Ordering::SeqCst),
        0,
        "a list prompt was issued for an already-exhausted concept"
    );
}

/// A store warmed under one model signature is dead weight for another:
/// the mismatched session must re-list from scratch and be bit-identical
/// to a session that never saw the store.
#[test]
fn signature_change_invalidates_and_matches_fresh_session() {
    let s = Scenario::generate_with(42, small_config());
    let store = Arc::new(KeyUniverseStore::default());
    let oracle_sig = SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()).signature();
    let chatgpt_sig = SimLlm::new(s.knowledge.clone(), ModelProfile::chatgpt()).signature();
    assert_ne!(oracle_sig, chatgpt_sig, "profiles must sign differently");

    let warmer = oracle_session(
        &s,
        options(
            ListStore::Shared(store.clone()),
            Pipeline::Off,
            PromptBatch::Keys(10),
            4,
        ),
    );
    for spec in &s.suite {
        warmer.execute(&spec.to_sql()).unwrap();
    }
    let warmed = store.warm_map(&oracle_sig).len();
    assert!(warmed > 0, "oracle pass must warm the store");

    let session = |store: ListStore| {
        Galois::with_options(
            Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::chatgpt())),
            s.database.clone(),
            options(store, Pipeline::Off, PromptBatch::Keys(10), 4),
        )
    };
    let stale = session(ListStore::Shared(store.clone()));
    let fresh = session(ListStore::On);
    for spec in &s.suite {
        let sql = spec.to_sql();
        let a = stale.execute(&sql).unwrap();
        let b = fresh.execute(&sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows, "q{}: {sql}", spec.id);
        assert_stats_eq(&a.stats, &b.stats, &format!("q{} stats: {sql}", spec.id));
    }
    // Invalidate-on-read dropped every stale entry the chatgpt session
    // touched and republished under its own signature.
    assert!(
        store.warm_map(&oracle_sig).len() < warmed,
        "stale oracle universes must be evicted on read"
    );
    assert!(
        !store.warm_map(&chatgpt_sig).is_empty(),
        "the mismatched session must republish under its own signature"
    );
}

/// Partial universes resume append-only: a capped session stores a
/// frontier, a later uncapped query extends it without re-listing or
/// duplicating the stored prefix, and a third query reads the completed
/// universe warm.
#[test]
fn partial_universe_resumes_append_only() {
    let s = Scenario::generate_with(42, small_config());
    let paged = ModelProfile {
        list_page_size: 4,
        ..ModelProfile::oracle()
    };
    let session = |store: ListStore, cap: usize| {
        Galois::with_options(
            Arc::new(SimLlm::new(s.knowledge.clone(), paged.clone())),
            s.database.clone(),
            GaloisOptions {
                max_list_iterations: cap,
                list_store: store,
                ..Default::default()
            },
        )
    };
    let sql = "SELECT name FROM city";
    let full = session(ListStore::Off, 32).execute(sql).unwrap();
    let full_rows: Vec<_> = full.relation.rows.clone();
    assert!(full_rows.len() > 8, "need several pages for this test");
    {
        let mut unique: Vec<Vec<String>> = full_rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), full_rows.len(), "full listing has dupes");
    }

    let store = Arc::new(KeyUniverseStore::default());
    // Two pages of four keys, then the cap: a partial frontier of 8.
    let capped = session(ListStore::Shared(store.clone()), 2)
        .execute(sql)
        .unwrap();
    assert_eq!(
        capped.relation.rows,
        full_rows[..capped.relation.rows.len()],
        "the capped pass must be a prefix of the full listing"
    );
    assert!(
        capped.relation.rows.len() < full_rows.len(),
        "the cap must actually truncate the listing"
    );
    let sig = SimLlm::new(s.knowledge.clone(), paged.clone()).signature();
    assert!(
        store.warm_map(&sig).is_empty(),
        "a partial frontier must stay invisible to warm reads"
    );

    // An uncapped query on the shared store appends past the frontier.
    let resumed = session(ListStore::Shared(store.clone()), 32)
        .execute(sql)
        .unwrap();
    assert_eq!(
        resumed.relation.rows, full_rows,
        "resumed listing must equal the uncapped listing, in order"
    );
    let warm = store.warm_map(&sig);
    assert_eq!(warm.len(), 1, "exactly one exhausted concept expected");
    assert_eq!(
        warm.values().copied().sum::<usize>(),
        full_rows.len(),
        "stored universe must hold every key exactly once"
    );

    // A third query reads the completed universe at zero list cost.
    let warm_read = session(ListStore::Shared(store), 32).execute(sql).unwrap();
    assert_eq!(warm_read.relation.rows, full_rows);
    assert_eq!(warm_read.stats.list_prompts, 0, "warm read must not list");
}

/// Satellite regression pin: with sub-entry hits billed by signature the
/// suite's cache-hit totals are identical at 1 and 8 harness threads on
/// the batched configuration, and repeated 8-thread runs agree with each
/// other — full-row equality minus the prompt totals, which may still
/// wobble when racing queries split chunks differently.
#[test]
fn suite_cache_hits_are_thread_count_invariant() {
    let s = Scenario::generate_with(42, small_config());
    let run = |threads: usize| {
        let session = oracle_session(
            &s,
            options(ListStore::Off, Pipeline::Off, PromptBatch::Keys(10), 8),
        );
        run_galois_suite_on(&s, &session, "oracle", threads)
    };
    let single = run(1);
    for attempt in 0..3 {
        let threaded = run(8);
        assert_tables_equal(&single, &threaded, "8-thread suite");
        assert_eq!(
            suite_hits(&single),
            suite_hits(&threaded),
            "cache-hit totals wobbled under threads (attempt {attempt})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over random worlds, random suite orderings and the
    /// ISSUE's K/B grid: the store never changes `R_M`; the warm pass
    /// lists nothing; pass-for-pass cache-hit totals equal the store-off
    /// session's.
    #[test]
    fn store_is_observationally_pure_for_any_ordering(
        seed in 0u64..10_000,
        perm in 0u64..1_000_000,
        lanes in prop::sample::select(vec![1usize, 2, 8]),
        b in prop::sample::select(vec![1usize, 10]),
        streaming in prop::sample::select(vec![false, true]),
    ) {
        let s = Scenario::generate_with(seed, small_config());
        let pipeline = if streaming { Pipeline::Streaming } else { Pipeline::Off };
        let order: Vec<usize> = permutation(s.suite.len(), perm)
            .into_iter()
            .take(10)
            .collect();
        let off = oracle_session(&s, options(ListStore::Off, pipeline, PromptBatch::Keys(b), lanes));
        let on = oracle_session(&s, options(ListStore::On, pipeline, PromptBatch::Keys(b), lanes));
        for pass in 0..2 {
            let mut off_hits = 0usize;
            let mut on_hits = 0usize;
            for &qi in &order {
                let spec = &s.suite[qi];
                let sql = spec.to_sql();
                let a = off.execute(&sql)
                    .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
                let c = on.execute(&sql)
                    .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
                prop_assert_eq!(
                    sorted_rows(&a.relation), sorted_rows(&c.relation),
                    "q{} R_M diverged (pass {}, B={}, K={}, {:?})",
                    spec.id, pass, b, lanes, pipeline
                );
                off_hits += a.stats.cache_hits;
                on_hits += c.stats.cache_hits;
                prop_assert!(
                    c.stats.total_prompts() <= a.stats.total_prompts(),
                    "q{} store-on out-spent store-off (pass {}, B={}, K={}, {:?})",
                    spec.id, pass, b, lanes, pipeline
                );
                if pass == 1 {
                    prop_assert_eq!(
                        c.stats.list_prompts, 0,
                        "q{} warm pass listed (B={}, K={}, {:?})",
                        spec.id, b, lanes, pipeline
                    );
                }
            }
            prop_assert_eq!(
                off_hits, on_hits,
                "cache-hit totals diverged (pass {}, B={}, K={}, {:?})",
                pass, b, lanes, pipeline
            );
        }
    }
}
