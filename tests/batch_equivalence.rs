//! Multi-key prompt batching invariants (PR 4):
//!
//! 1. **Off bit-exactness** — `PromptBatch::Off` (the default) must be
//!    bit-identical to the pre-batching pipeline: prompts per kind, cache
//!    hits, both virtual clocks and result relations all match a session
//!    that never heard of batching. This is the same invariant discipline
//!    as `Parallelism(1)` and `Planner::Heuristic`.
//! 2. **Batched result invariance** — `PromptBatch::Keys(B)` may reshape
//!    the prompt schedule arbitrarily, but on a noise-free model it must
//!    never change `R_M`, for any batch factor and any worker count.
//! 3. **Fallback safety** — even when batched answers are corrupted so
//!    per-key lines fail to parse, the per-key fallback re-asks restore
//!    the exact `PromptBatch::Off` relations; accuracy can never regress,
//!    only the prompt bill can.

use galois::core::{Galois, GaloisOptions, Parallelism, PromptBatch};
use galois::dataset::{Scenario, WorldConfig};
use galois::llm::intent::{parse_task, TaskIntent};
use galois::llm::{Completion, LanguageModel, ModelProfile, SimLlm};
use galois::relational::{Relation, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn small_config() -> WorldConfig {
    WorldConfig {
        countries: 6,
        cities: 14,
        airports: 6,
        singers: 6,
        concerts: 8,
        employees: 10,
    }
}

fn sorted_rows(rel: &Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect())
        .collect();
    rows.sort();
    rows
}

fn session(s: &Scenario, batch: PromptBatch, lanes: usize) -> Galois {
    Galois::with_options(
        Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle())),
        s.database.clone(),
        GaloisOptions {
            prompt_batch: batch,
            parallelism: Parallelism::new(lanes),
            ..Default::default()
        },
    )
}

/// `PromptBatch::Off` is the default: the default-options session and an
/// explicitly-Off session must agree on *every* observable counter across
/// the whole suite — prompts per kind, cache hits, both clocks, rows.
#[test]
fn off_is_bit_identical_to_default_pipeline() {
    let s = Scenario::generate_with(42, small_config());
    let default_session = Galois::with_options(
        Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle())),
        s.database.clone(),
        GaloisOptions::default(),
    );
    let off_session = session(&s, PromptBatch::Off, 1);
    assert_eq!(
        GaloisOptions::default().prompt_batch,
        PromptBatch::Off,
        "Off must stay the default"
    );
    for spec in &s.suite {
        let sql = spec.to_sql();
        let a = default_session.execute(&sql).unwrap();
        let b = off_session.execute(&sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows, "q{}", spec.id);
        assert_eq!(a.stats.list_prompts, b.stats.list_prompts, "q{}", spec.id);
        assert_eq!(
            a.stats.filter_prompts, b.stats.filter_prompts,
            "q{}",
            spec.id
        );
        assert_eq!(a.stats.fetch_prompts, b.stats.fetch_prompts, "q{}", spec.id);
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "q{}", spec.id);
        assert_eq!(a.stats.virtual_ms, b.stats.virtual_ms, "q{}", spec.id);
        assert_eq!(
            a.stats.serial_virtual_ms, b.stats.serial_virtual_ms,
            "q{}",
            spec.id
        );
    }
}

/// Batched execution returns identical relations for K ∈ {1, 8} worker
/// threads / request lanes, at several batch factors, over the suite.
#[test]
fn batched_relations_match_off_for_one_and_eight_workers() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1);
    for spec in &s.suite {
        let sql = spec.to_sql();
        let base = off.execute(&sql).unwrap();
        for lanes in [1usize, 8] {
            for b in [2usize, 10] {
                let got = session(&s, PromptBatch::Keys(b), lanes)
                    .execute(&sql)
                    .unwrap();
                assert_eq!(
                    sorted_rows(&got.relation),
                    sorted_rows(&base.relation),
                    "q{} diverged at B={b}, K={lanes}: {sql}",
                    spec.id
                );
            }
        }
    }
}

/// Wraps a model and corrupts every batched answer by dropping every
/// second line — forcing the per-key fallback path for half the keys of
/// every batched prompt.
struct LineDropper {
    inner: SimLlm,
}

impl LanguageModel for LineDropper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn complete(&self, prompt: &str) -> Completion {
        let mut completion = self.inner.complete(prompt);
        if matches!(
            parse_task(prompt),
            Some(TaskIntent::FetchAttrBatch { .. } | TaskIntent::FilterKeysBatch { .. })
        ) {
            completion.text = completion
                .text
                .lines()
                .enumerate()
                .filter_map(|(i, line)| (i % 2 == 0).then_some(line))
                .collect::<Vec<_>>()
                .join("\n");
        }
        completion
    }
}

/// With half of every batched answer destroyed, the fallback re-asks must
/// restore the exact `PromptBatch::Off` relations — at K ∈ {1, 8} — while
/// necessarily spending extra prompts.
#[test]
fn corrupted_batches_fall_back_to_off_relations() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1);
    for lanes in [1usize, 8] {
        let flaky = Galois::with_options(
            Arc::new(LineDropper {
                inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
            }),
            s.database.clone(),
            GaloisOptions {
                prompt_batch: PromptBatch::Keys(8),
                parallelism: Parallelism::new(lanes),
                ..Default::default()
            },
        );
        for spec in s.suite.iter().take(12) {
            let sql = spec.to_sql();
            let a = off.execute(&sql).unwrap();
            let b = flaky.execute(&sql).unwrap();
            assert_eq!(
                sorted_rows(&a.relation),
                sorted_rows(&b.relation),
                "q{} diverged under corrupted batches at K={lanes}: {sql}",
                spec.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over arbitrary worlds, suite queries and batch
    /// factors: batching never changes `R_M` on a noise-free model, and
    /// with no fallbacks (the oracle parses cleanly) it never costs more
    /// prompts than the single-key protocol.
    #[test]
    fn batching_is_result_invariant_for_any_seed(
        seed in 0u64..10_000,
        qi in 0usize..46,
        b in 2usize..26,
    ) {
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        let sql = spec.to_sql();
        let a = session(&s, PromptBatch::Off, 1).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let bat = session(&s, PromptBatch::Keys(b), 1).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(
            sorted_rows(&a.relation), sorted_rows(&bat.relation),
            "q{} R_M diverges at B={}", spec.id, b
        );
        prop_assert!(
            bat.stats.total_prompts() <= a.stats.total_prompts(),
            "q{}: batched {} > off {} prompts at B={}",
            spec.id, bat.stats.total_prompts(), a.stats.total_prompts(), b
        );
    }
}
