//! Multi-key prompt batching invariants (PR 4):
//!
//! 1. **Off bit-exactness** — `PromptBatch::Off` (the default) must be
//!    bit-identical to the pre-batching pipeline: prompts per kind, cache
//!    hits, both virtual clocks and result relations all match a session
//!    that never heard of batching. This is the same invariant discipline
//!    as `Parallelism(1)` and `Planner::Heuristic`.
//! 2. **Batched result invariance** — `PromptBatch::Keys(B)` may reshape
//!    the prompt schedule arbitrarily, but on a noise-free model it must
//!    never change `R_M`, for any batch factor and any worker count.
//! 3. **Fallback safety** — even when batched answers are corrupted so
//!    per-key lines fail to parse, the per-key fallback re-asks restore
//!    the exact `PromptBatch::Off` relations; accuracy can never regress,
//!    only the prompt bill can.

mod common;

use common::{
    assert_suite_bit_identical, options, oracle_session, session_with_model, small_config,
    sorted_rows, LineDropper,
};
use galois::core::{GaloisOptions, ListStore, Pipeline, PromptBatch};
use galois::dataset::Scenario;
use proptest::prelude::*;
use std::sync::Arc;

fn session(s: &Scenario, batch: PromptBatch, lanes: usize) -> galois::core::Galois {
    oracle_session(s, options(ListStore::Off, Pipeline::Off, batch, lanes))
}

/// `PromptBatch::Off` is the default: the default-options session and an
/// explicitly-Off session must agree on *every* observable counter across
/// the whole suite — prompts per kind, cache hits, both clocks, rows.
#[test]
fn off_is_bit_identical_to_default_pipeline() {
    let s = Scenario::generate_with(42, small_config());
    let default_session = oracle_session(&s, GaloisOptions::default());
    let off_session = session(&s, PromptBatch::Off, 1);
    assert_eq!(
        GaloisOptions::default().prompt_batch,
        PromptBatch::Off,
        "Off must stay the default"
    );
    assert_suite_bit_identical(&s, &default_session, &off_session, usize::MAX, "batch off");
}

/// Batched execution returns identical relations for K ∈ {1, 8} worker
/// threads / request lanes, at several batch factors, over the suite.
#[test]
fn batched_relations_match_off_for_one_and_eight_workers() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1);
    for spec in &s.suite {
        let sql = spec.to_sql();
        let base = off.execute(&sql).unwrap();
        for lanes in [1usize, 8] {
            for b in [2usize, 10] {
                let got = session(&s, PromptBatch::Keys(b), lanes)
                    .execute(&sql)
                    .unwrap();
                assert_eq!(
                    sorted_rows(&got.relation),
                    sorted_rows(&base.relation),
                    "q{} diverged at B={b}, K={lanes}: {sql}",
                    spec.id
                );
            }
        }
    }
}

/// With half of every batched answer destroyed, the fallback re-asks must
/// restore the exact `PromptBatch::Off` relations — at K ∈ {1, 8} — while
/// necessarily spending extra prompts.
#[test]
fn corrupted_batches_fall_back_to_off_relations() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, PromptBatch::Off, 1);
    for lanes in [1usize, 8] {
        let flaky = session_with_model(
            Arc::new(LineDropper::oracle(&s)),
            &s,
            options(ListStore::Off, Pipeline::Off, PromptBatch::Keys(8), lanes),
        );
        common::assert_suite_rows_match(
            &s,
            &off,
            &flaky,
            12,
            &format!("corrupted batches at K={lanes}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over arbitrary worlds, suite queries and batch
    /// factors: batching never changes `R_M` on a noise-free model, and
    /// with no fallbacks (the oracle parses cleanly) it never costs more
    /// prompts than the single-key protocol.
    #[test]
    fn batching_is_result_invariant_for_any_seed(
        seed in 0u64..10_000,
        qi in 0usize..46,
        b in 2usize..26,
    ) {
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        let sql = spec.to_sql();
        let a = session(&s, PromptBatch::Off, 1).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let bat = session(&s, PromptBatch::Keys(b), 1).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(
            sorted_rows(&a.relation), sorted_rows(&bat.relation),
            "q{} R_M diverges at B={}", spec.id, b
        );
        prop_assert!(
            bat.stats.total_prompts() <= a.stats.total_prompts(),
            "q{}: batched {} > off {} prompts at B={}",
            spec.id, bat.stats.total_prompts(), a.stats.total_prompts(), b
        );
    }
}
