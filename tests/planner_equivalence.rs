//! Planner invariants (PR 3):
//!
//! 1. **Heuristic bit-exactness** — `Planner::Heuristic` (the default)
//!    must reproduce the pre-planner pipeline *bit for bit*: the compiled
//!    retrieval program equals a direct `compile()` of the optimized plan,
//!    and executing through the session yields byte-identical `R_M` rows,
//!    prompt counts and report tables. This is the same invariant
//!    discipline as `Parallelism(1)` for the scheduler.
//! 2. **Cost-based result invariance** — `Planner::CostBased` may reshape
//!    the prompt schedule (pushdowns, step order) but must never change
//!    the result relation on a noise-free model: only the prompt
//!    accounting may differ, and over the suite it must not cost more.

mod common;

use common::{oracle_session, small_config, sorted_rows};
use galois::core::plan_choice::{plan_query, Planner, PlannerParams};
use galois::core::{compile, Galois, GaloisOptions};
use galois::dataset::Scenario;
use galois::eval::{run_galois_suite, suite_totals, table1, table2};
use galois::llm::ModelProfile;
use proptest::prelude::*;

fn planner_session(s: &Scenario, planner: Planner) -> Galois {
    oracle_session(
        s,
        GaloisOptions {
            planner,
            ..Default::default()
        },
    )
}

/// The pre-PR pipeline, reconstructed literally: optimize, `compile()`
/// with the session's options, `execute_compiled`. The session's default
/// path must be indistinguishable from it.
#[test]
fn heuristic_is_bit_identical_to_direct_compilation() {
    for seed in [42u64, 7, 99] {
        let s = Scenario::generate_with(seed, small_config());
        let session = planner_session(&s, Planner::Heuristic);
        for spec in &s.suite {
            let sql = spec.to_sql();
            let plan = s.database.plan(&sql).unwrap();
            let direct =
                compile::compile(&plan, s.database.catalog(), &session.options().compile).unwrap();
            let chosen = plan_query(
                &plan,
                s.database.catalog(),
                &session.options().compile,
                Planner::Heuristic,
                &PlannerParams::default(),
            )
            .unwrap();
            assert_eq!(
                chosen.compiled, direct,
                "q{} compiled drift: {sql}",
                spec.id
            );

            // Executing the directly-compiled program and executing via the
            // session must agree on rows *and* on every prompt counter.
            session.client().clear_cache();
            let a = session.execute_compiled(&direct).unwrap();
            session.client().clear_cache();
            let b = session.execute(&sql).unwrap();
            assert_eq!(a.relation.rows, b.relation.rows, "q{}", spec.id);
            assert_eq!(a.stats.list_prompts, b.stats.list_prompts, "q{}", spec.id);
            assert_eq!(
                a.stats.filter_prompts, b.stats.filter_prompts,
                "q{}",
                spec.id
            );
            assert_eq!(a.stats.fetch_prompts, b.stats.fetch_prompts, "q{}", spec.id);
            assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "q{}", spec.id);
            assert_eq!(a.stats.virtual_ms, b.stats.virtual_ms, "q{}", spec.id);
        }
    }
}

/// Table 1 / Table 2 are produced through `GaloisOptions::default()`,
/// which routes through `Planner::Heuristic`; an explicitly-heuristic run
/// must render byte-identical report artifacts.
#[test]
fn report_tables_are_byte_identical_under_explicit_heuristic() {
    let s = Scenario::generate_with(42, small_config());
    let default_run = run_galois_suite(&s, ModelProfile::chatgpt(), GaloisOptions::default());
    let heuristic_run = run_galois_suite(
        &s,
        ModelProfile::chatgpt(),
        GaloisOptions {
            planner: Planner::Heuristic,
            ..Default::default()
        },
    );
    for (a, b) in default_run.outcomes.iter().zip(&heuristic_run.outcomes) {
        assert_eq!(a.result_rows, b.result_rows, "q{}", a.id);
        assert_eq!(
            a.stats.total_prompts(),
            b.stats.total_prompts(),
            "q{}",
            a.id
        );
        assert_eq!(a.matching.score(), b.matching.score(), "q{}", a.id);
    }
    let (t1, _) = table1(&s, &[ModelProfile::oracle(), ModelProfile::chatgpt()]);
    let (t1_again, _) = table1(&s, &[ModelProfile::oracle(), ModelProfile::chatgpt()]);
    assert_eq!(t1.render(), t1_again.render());
    let t2 = table2(&s, ModelProfile::chatgpt()).render();
    let t2_again = table2(&s, ModelProfile::chatgpt()).render();
    assert_eq!(t2, t2_again);
}

/// Over the whole oracle suite, cost-based planning returns the same
/// relations while spending strictly fewer prompts and less virtual time.
#[test]
fn cost_based_suite_is_cheaper_with_identical_relations() {
    let s = Scenario::generate_with(42, small_config());
    let heuristic = planner_session(&s, Planner::Heuristic);
    let cost_based = planner_session(&s, Planner::CostBased);
    for spec in &s.suite {
        let sql = spec.to_sql();
        let a = heuristic.execute(&sql).unwrap();
        let b = cost_based.execute(&sql).unwrap();
        assert_eq!(
            sorted_rows(&a.relation),
            sorted_rows(&b.relation),
            "q{} relations diverge: {sql}",
            spec.id
        );
    }
    let h_run = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
    let c_run = run_galois_suite(
        &s,
        ModelProfile::oracle(),
        GaloisOptions {
            planner: Planner::CostBased,
            ..Default::default()
        },
    );
    let h = suite_totals(&h_run, 1);
    let c = suite_totals(&c_run, 1);
    assert!(
        c.prompts < h.prompts,
        "cost-based {} vs heuristic {} prompts",
        c.prompts,
        h.prompts
    );
    assert!(
        c.virtual_ms < h.virtual_ms,
        "cost-based {} vs heuristic {} virtual ms",
        c.virtual_ms,
        h.virtual_ms
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over arbitrary worlds and suite queries: the
    /// heuristic compilation never drifts from `compile()`, and a
    /// cost-based plan never changes `R_M` on the oracle — it may only
    /// re-account the prompts.
    #[test]
    fn planner_invariants_hold_for_any_seed(seed in 0u64..10_000, qi in 0usize..46) {
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        let sql = spec.to_sql();
        let plan = s.database.plan(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let options = GaloisOptions::default();
        let direct = compile::compile(&plan, s.database.catalog(), &options.compile)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let heuristic = plan_query(
            &plan, s.database.catalog(), &options.compile,
            Planner::Heuristic, &PlannerParams::default(),
        ).map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(&heuristic.compiled, &direct, "q{} heuristic drift", spec.id);

        let a = planner_session(&s, Planner::Heuristic).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let b = planner_session(&s, Planner::CostBased).execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(
            sorted_rows(&a.relation), sorted_rows(&b.relation),
            "q{} R_M diverges", spec.id
        );
        // Prompt accounting may differ, but never for free: a cost-based
        // plan is never *more* expensive than the heuristic one.
        prop_assert!(
            b.stats.total_prompts() <= a.stats.total_prompts(),
            "q{}: cost-based {} > heuristic {} prompts",
            spec.id, b.stats.total_prompts(), a.stats.total_prompts()
        );
    }
}
