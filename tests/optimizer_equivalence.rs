//! Optimizer soundness: for every suite query (and a set of adversarial
//! hand-written ones), the optimized plan must produce exactly the same
//! relation as the unoptimized plan. This is the classic plan-equivalence
//! property; Galois additionally depends on it because its prompt compiler
//! consumes *optimized* plans.

mod common;

use common::{medium_config, sorted_rows};
use galois::dataset::Scenario;
use galois::relational::execute;

fn assert_equivalent(scenario: &Scenario, sql: &str) {
    let unopt = scenario.database.plan_unoptimized(sql).unwrap();
    let opt = scenario.database.plan(sql).unwrap();
    let a = execute(&unopt, scenario.database.catalog()).unwrap();
    let b = execute(&opt, scenario.database.catalog()).unwrap();
    assert_eq!(sorted_rows(&a), sorted_rows(&b), "plans diverge for: {sql}");
    assert_eq!(a.schema.arity(), b.schema.arity(), "{sql}");
}

#[test]
fn suite_queries_are_optimizer_invariant() {
    for seed in [42u64, 7, 99] {
        let s = Scenario::generate_with(seed, medium_config());
        for spec in &s.suite {
            assert_equivalent(&s, &spec.to_sql());
        }
    }
}

#[test]
fn adversarial_queries_are_optimizer_invariant() {
    let s = Scenario::generate(42);
    for sql in [
        // Multi-way comma join with mixed single-table and cross conjuncts.
        "SELECT c.name, m.party, k.gdp FROM city c, cityMayor m, country k \
         WHERE c.mayor = m.name AND c.country = k.name AND k.gdp > 1.0 \
         AND m.electionYear >= 2016 AND c.population > 100000",
        // Cross join filtered only on one side.
        "SELECT c.name FROM city c, country k WHERE c.population > 2000000",
        // Non-equi join condition (nested loop path).
        "SELECT c.name, k.name FROM city c, country k \
         WHERE c.population > k.population",
        // OR predicate: must NOT be split as conjuncts.
        "SELECT name FROM city WHERE population > 5000000 OR elevation < 20",
        // Equi condition written value = column (mirrored sides).
        "SELECT c.name FROM city c, country k WHERE k.name = c.country",
        // Filter referencing both sides plus residual arithmetic.
        "SELECT c.name FROM city c, country k \
         WHERE c.country = k.name AND c.population * 2 > k.population",
        // Left join above a filter.
        "SELECT c.name, k.gdp FROM city c LEFT JOIN country k ON c.country = k.name \
         WHERE c.elevation < 2600",
        // Aggregate over a join with HAVING and ORDER BY.
        "SELECT k.continent, COUNT(*), AVG(c.population) \
         FROM city c, country k WHERE c.country = k.name \
         GROUP BY k.continent HAVING COUNT(*) >= 1 ORDER BY COUNT(*) DESC",
        // DISTINCT + LIMIT above a join.
        "SELECT DISTINCT k.continent FROM city c, country k \
         WHERE c.country = k.name ORDER BY k.continent LIMIT 3",
        // LIMIT with OFFSET above a sorted join (windowing, not truncation).
        "SELECT c.name FROM city c, country k \
         WHERE c.country = k.name ORDER BY c.name LIMIT 4 OFFSET 2",
        // IN / BETWEEN / LIKE mix.
        "SELECT name FROM city WHERE name LIKE '%e%' \
         AND population BETWEEN 10000 AND 9000000 AND elevation IN (1, 2, 3, 100)",
    ] {
        assert_equivalent(&s, sql);
    }
}

#[test]
fn optimizer_removes_cross_joins_from_suite_join_queries() {
    use galois::relational::plan_stats;
    let s = Scenario::generate(42);
    for spec in s
        .suite
        .iter()
        .filter(|q| matches!(q.category, galois::dataset::QueryCategory::Join))
    {
        let plan = s.database.plan(&spec.to_sql()).unwrap();
        let stats = plan_stats(&plan);
        assert_eq!(
            stats.cross_joins,
            0,
            "q{} kept a cross join:\n{}",
            spec.id,
            plan.explain()
        );
        assert_eq!(stats.joins, 1, "q{}", spec.id);
    }
}
