//! Streaming-pipeline invariants (PR 5):
//!
//! 1. **Off bit-exactness** — `Pipeline::Off` (the default) must be
//!    bit-identical to the wave pipeline: prompts per kind, cache hits,
//!    both virtual clocks and result relations all match a session that
//!    never heard of pipelining. Same invariant discipline as
//!    `Parallelism(1)`, `Planner::Heuristic` and `PromptBatch::Off`.
//! 2. **Streaming result invariance** — `Pipeline::Streaming` may reshape
//!    the prompt *schedule* arbitrarily, but on a noise-free model it must
//!    never change `R_M`, for any lane count and any batch factor.
//! 3. **Accounting discipline** — streaming always takes exactly the wave
//!    pipeline's cache hits, and its prompt bill can only grow (an
//!    idle-lane flush may split a chunk that later input would have
//!    filled), never shrink. On the benchmark configuration — single-page
//!    key streams whose stage inputs each arrive at one instant — the
//!    prompt bill is exactly the wave's, which the fixed-grid test below
//!    (and CI's `pipeline_parity` pair) pins down.
//! 4. **Fallback safety** — corrupted batched answers still fall back to
//!    single-key re-asks under the event-driven dataflow: accuracy can
//!    never regress, only the prompt bill can.

mod common;

use common::{
    assert_suite_bit_identical, assert_suite_rows_match, options, oracle_session,
    session_with_model, small_config, sorted_rows, LineDropper,
};
use galois::core::{Galois, GaloisOptions, ListStore, Pipeline, PromptBatch};
use galois::dataset::Scenario;
use proptest::prelude::*;
use std::sync::Arc;

fn session(s: &Scenario, pipeline: Pipeline, batch: PromptBatch, lanes: usize) -> Galois {
    oracle_session(s, options(ListStore::Off, pipeline, batch, lanes))
}

/// `Pipeline::Off` is the default: the default-options session and an
/// explicitly-Off session must agree on *every* observable counter across
/// the whole suite — prompts per kind, cache hits, both clocks, the
/// per-phase breakdown, rows.
#[test]
fn off_is_bit_identical_to_default_pipeline() {
    let s = Scenario::generate_with(42, small_config());
    let default_session = oracle_session(&s, GaloisOptions::default());
    let off_session = session(&s, Pipeline::Off, PromptBatch::Off, 1);
    assert_eq!(
        GaloisOptions::default().pipeline,
        Pipeline::Off,
        "Off must stay the default"
    );
    assert_suite_bit_identical(
        &s,
        &default_session,
        &off_session,
        usize::MAX,
        "pipeline off",
    );
}

/// Streaming returns identical relations for K ∈ {1, 2, 8} × B ∈ {1, 10}
/// across the whole suite — the ISSUE's invariance grid.
#[test]
fn streaming_relations_match_off_across_the_grid() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, Pipeline::Off, PromptBatch::Off, 1);
    for spec in &s.suite {
        let sql = spec.to_sql();
        let base = off.execute(&sql).unwrap();
        for lanes in [1usize, 2, 8] {
            for b in [1usize, 10] {
                let got = session(&s, Pipeline::Streaming, PromptBatch::Keys(b), lanes)
                    .execute(&sql)
                    .unwrap();
                assert_eq!(
                    sorted_rows(&got.relation),
                    sorted_rows(&base.relation),
                    "q{} diverged at B={b}, K={lanes}: {sql}",
                    spec.id
                );
            }
        }
    }
}

/// On this fixed workload (seed-42 small world, the oracle's single-page
/// key streams, these B/K geometries) the streaming dataflow issues
/// exactly the wave pipeline's prompts — per kind — and takes exactly its
/// cache hits, in the same result-row order. This is a deterministic
/// regression pin for the benchmark configuration, not a universal law:
/// a filter stage with more chunks than lanes completes across distinct
/// instants and can make the idle flush split downstream chunks (see the
/// proptest below). Fresh session pairs per query keep the comparison
/// exact (no cross-query cache interleaving).
#[test]
fn streaming_preserves_prompts_hits_and_row_order() {
    let s = Scenario::generate_with(42, small_config());
    for spec in &s.suite {
        let sql = spec.to_sql();
        for (lanes, b) in [(1usize, 10usize), (8, 10), (8, 1)] {
            let batch = PromptBatch::Keys(b);
            let wave = session(&s, Pipeline::Off, batch, lanes)
                .execute(&sql)
                .unwrap();
            let stream = session(&s, Pipeline::Streaming, batch, lanes)
                .execute(&sql)
                .unwrap();
            assert_eq!(
                wave.relation.rows, stream.relation.rows,
                "q{} rows at B={b}, K={lanes}",
                spec.id
            );
            assert_eq!(
                wave.stats.list_prompts, stream.stats.list_prompts,
                "q{} list prompts at B={b}, K={lanes}",
                spec.id
            );
            assert_eq!(
                wave.stats.filter_prompts, stream.stats.filter_prompts,
                "q{} filter prompts at B={b}, K={lanes}",
                spec.id
            );
            assert_eq!(
                wave.stats.fetch_prompts, stream.stats.fetch_prompts,
                "q{} fetch prompts at B={b}, K={lanes}",
                spec.id
            );
            assert_eq!(
                wave.stats.cache_hits, stream.stats.cache_hits,
                "q{} cache hits at B={b}, K={lanes}",
                spec.id
            );
            assert_eq!(
                wave.stats.serial_virtual_ms > 0,
                stream.stats.serial_virtual_ms > 0,
                "q{}",
                spec.id
            );
        }
    }
}

/// With half of every batched answer destroyed, the streaming fallback
/// re-asks must restore the exact `Pipeline::Off` relations — at
/// K ∈ {1, 8} — while necessarily spending extra prompts.
#[test]
fn corrupted_streams_fall_back_to_off_relations() {
    let s = Scenario::generate_with(42, small_config());
    let off = session(&s, Pipeline::Off, PromptBatch::Off, 1);
    for lanes in [1usize, 8] {
        let flaky = session_with_model(
            Arc::new(LineDropper::oracle(&s)),
            &s,
            options(
                ListStore::Off,
                Pipeline::Streaming,
                PromptBatch::Keys(8),
                lanes,
            ),
        );
        assert_suite_rows_match(
            &s,
            &off,
            &flaky,
            12,
            &format!("corrupted micro-batches at K={lanes}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form over arbitrary worlds, suite queries, batch factors
    /// and lane counts: streaming never changes `R_M` on a noise-free
    /// model and never takes different cache hits; its prompt bill can
    /// only grow. Exact prompt equality is deliberately *not* asserted
    /// here: when a multi-chunk filter stage's chunks complete at distinct
    /// virtual instants (more chunks than lanes), the idle-lane flush can
    /// split a downstream accumulator that later survivors of the same
    /// page would have filled — e.g. seed 0, `cityMayor` with
    /// `electionYear >= 2019`, B=3, K=4 spends 11 prompts against the
    /// wave's 10. Latency is bought with partial-chunk prompts, never
    /// with accuracy.
    #[test]
    fn streaming_is_result_invariant_for_any_seed(
        seed in 0u64..10_000,
        qi in 0usize..46,
        b in 1usize..26,
        lanes in 1usize..12,
    ) {
        let s = Scenario::generate_with(seed, small_config());
        let spec = &s.suite[qi];
        let sql = spec.to_sql();
        let wave = session(&s, Pipeline::Off, PromptBatch::Keys(b), lanes)
            .execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        let stream = session(&s, Pipeline::Streaming, PromptBatch::Keys(b), lanes)
            .execute(&sql)
            .map_err(|e| TestCaseError::fail(format!("q{}: {e}", spec.id)))?;
        prop_assert_eq!(
            sorted_rows(&wave.relation), sorted_rows(&stream.relation),
            "q{} R_M diverges at B={}, K={}", spec.id, b, lanes
        );
        prop_assert!(
            stream.stats.total_prompts() >= wave.stats.total_prompts(),
            "q{}: streaming spent fewer prompts ({}) than the wave ({}) at B={}, K={}",
            spec.id, stream.stats.total_prompts(), wave.stats.total_prompts(), b, lanes
        );
        prop_assert_eq!(
            wave.stats.cache_hits, stream.stats.cache_hits,
            "q{} cache hits diverge at B={}, K={}", spec.id, b, lanes
        );
    }
}
