//! Chaos battery (PR 9): fault-injected model runs against the fault-free
//! engine.
//!
//! 1. **Fault-free equivalence under retries** — with a bounded fault
//!    schedule (`max_consecutive` ≤ the retry budget) and
//!    `Resilience::On`, a faulty run reproduces the fault-free suite
//!    *bit-exactly*: same rows in order, same prompts net of retries, same
//!    cache hits and token totals, zero `failed_cells` — only the virtual
//!    clocks (which legally bill the retry waits) and the resilience
//!    counters differ. Property-tested over fault seeds × lanes × batch
//!    shapes × pipelines × list stores.
//! 2. **Graceful degradation on exhaustion** — when the retry budget is
//!    smaller than the fault schedule, queries still return: partial
//!    relations with per-cell `Null`s, `failed_cells` counting every
//!    degraded cell, and no panic; once the schedule drains, a later
//!    session over the same model handle recovers the exact clean result.
//! 3. **Circuit breaker** — an exhaustion streak opens the breaker
//!    (fail-fast, visible in `breaker_fastfails`), the half-open probe
//!    path eventually drains the schedule, and recovery is complete.
//! 4. **Store resume** — a listing killed mid-flight by a fault leaves a
//!    *resumable* (`exhausted: false`) frontier in the shared key-universe
//!    store, never a poisoned "complete" universe: a retrying session
//!    resumes past the frontier and completes the listing at a lower list
//!    bill than a cold start.

mod common;

use common::{
    assert_stats_eq_modulo_resilience, faulty_oracle, options, oracle_session, permutation,
    session_with_model, small_config,
};
use galois::core::{
    Galois, GaloisOptions, ListStore, Pipeline, PromptBatch, Resilience, RetryPolicy,
};
use galois::dataset::Scenario;
use galois::llm::{FaultProfile, FaultyLlm, KeyUniverseStore, LanguageModel, ModelProfile, SimLlm};
use galois::relational::Value;
use proptest::prelude::*;
use std::sync::Arc;

/// A fault schedule with the marker-detectable kinds only: truncated
/// faults deliberately survive the parsing gauntlet (they corrupt the
/// clean answer's prefix), so exhaustion-shape assertions that compare
/// cell values against the clean run exclude them. The equivalence test
/// keeps all four kinds — retries absorb truncation before parsing.
fn detectable_faults(seed: u64, rate: f64) -> FaultProfile {
    FaultProfile {
        seed,
        fault_rate: rate,
        truncated_weight: 0,
        ..FaultProfile::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance grid: fault rate ≤ 20 %, all four fault kinds, retry
    /// budget ≥ the schedule's `max_consecutive` — the faulty run must be
    /// bit-exact with the fault-free run on rows, prompts, cache hits and
    /// tokens, for every seed × lane × batch × pipeline × store corner.
    #[test]
    fn faulty_model_under_retries_reproduces_the_fault_free_suite(
        fault_seed in 1u64..100_000,
        lanes in prop::sample::select(vec![1usize, 4]),
        batch_pick in 0u8..3,
        streaming in any::<bool>(),
        store_on in any::<bool>(),
        order_seed in any::<u64>(),
    ) {
        let s = Scenario::generate_with(42, small_config());
        let batch = match batch_pick {
            0 => PromptBatch::Off,
            1 => PromptBatch::Keys(6),
            _ => PromptBatch::Grid { keys: 6, attrs: 2 },
        };
        let pipeline = if streaming { Pipeline::Streaming } else { Pipeline::Off };
        let store = || if store_on { ListStore::On } else { ListStore::Off };

        let clean = oracle_session(&s, options(store(), pipeline, batch, lanes));
        let profile = FaultProfile {
            seed: fault_seed,
            ..FaultProfile::with_rate(0.2)
        };
        prop_assert!(profile.max_consecutive <= RetryPolicy::default().max_retries);
        let faulty = session_with_model(
            faulty_oracle(&s, profile),
            &s,
            GaloisOptions {
                resilience: Resilience::On(RetryPolicy::default()),
                ..options(store(), pipeline, batch, lanes)
            },
        );

        for &i in permutation(s.suite.len(), order_seed).iter().take(6) {
            let sql = s.suite[i].to_sql();
            let a = clean.execute(&sql).unwrap();
            let b = faulty.execute(&sql).unwrap();
            prop_assert_eq!(
                &a.relation.rows, &b.relation.rows,
                "q{} rows diverged under faults (seed {}): {}",
                s.suite[i].id, fault_seed, sql
            );
            prop_assert_eq!(a.stats.failed_cells, 0, "clean run can't fail cells");
            assert_stats_eq_modulo_resilience(
                &a.stats,
                &b.stats,
                &format!("q{} stats (seed {fault_seed}): {sql}", s.suite[i].id),
            );
        }
    }
}

/// With the retry budget *below* the fault schedule, exhausted cells
/// degrade instead of panicking: the relation keeps its shape (clean rows
/// or rows with `Null` cells), `failed_cells` and `retries` are visible,
/// and once the per-prompt schedules drain, a fresh session over the same
/// model handle reproduces the clean result exactly.
#[test]
fn retry_exhaustion_degrades_to_partial_results_and_recovers() {
    let s = Scenario::generate_with(42, small_config());
    let sql = "SELECT name, population FROM city";
    let want = oracle_session(&s, GaloisOptions::default())
        .execute(sql)
        .unwrap();

    let model = faulty_oracle(&s, detectable_faults(7, 1.0));
    let policy = RetryPolicy {
        max_retries: 1,
        breaker_threshold: u32::MAX,
        ..RetryPolicy::default()
    };
    let session = || {
        session_with_model(
            model.clone(),
            &s,
            GaloisOptions {
                resilience: Resilience::On(policy),
                ..GaloisOptions::default()
            },
        )
    };

    let first = session().execute(sql).unwrap();
    assert!(
        first.stats.failed_cells > 0,
        "a rate-1.0 schedule must exhaust the 1-retry budget somewhere"
    );
    assert!(first.stats.retries > 0, "the retry loop must have fired");
    assert_eq!(
        first.relation.schema.columns, want.relation.schema.columns,
        "degradation must never change the relation shape"
    );
    let clean_rows: std::collections::HashSet<&Vec<Value>> = want.relation.rows.iter().collect();
    for row in &first.relation.rows {
        assert!(
            clean_rows.contains(row) || row.iter().any(|v| matches!(v, Value::Null)),
            "degraded row is neither clean nor Null-annotated: {row:?}"
        );
    }

    // Every prompt's schedule is bounded, so fresh sessions over the same
    // handle drain it; the first fully-clean run is bit-equal to the
    // fault-free result.
    let mut last = first;
    for _ in 0..12 {
        if last.stats.failed_cells == 0 {
            break;
        }
        last = session().execute(sql).unwrap();
    }
    assert_eq!(last.stats.failed_cells, 0, "schedule failed to drain");
    assert_eq!(last.relation.rows, want.relation.rows);
}

/// An exhaustion streak trips the breaker: later requests fail fast
/// (counted in `breaker_fastfails`, spending no model attempts), the
/// half-open probe keeps testing the model, and once the fault schedule
/// drains the engine recovers the clean result completely.
#[test]
fn breaker_opens_fails_fast_and_recovers_through_half_open_probes() {
    let s = Scenario::generate_with(42, small_config());
    let sql = "SELECT name, population FROM city";
    let want = oracle_session(&s, GaloisOptions::default())
        .execute(sql)
        .unwrap();

    let model = faulty_oracle(&s, detectable_faults(11, 1.0));
    let policy = RetryPolicy {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: 1,
        ..RetryPolicy::default()
    };
    let session = || {
        session_with_model(
            model.clone(),
            &s,
            GaloisOptions {
                resilience: Resilience::On(policy),
                ..GaloisOptions::default()
            },
        )
    };

    // The breaker is per-session state, and a session whose *listing*
    // exhausts issues no further prompts — the streak builds in the
    // session whose listing finally drains and whose fetch wave then
    // exhausts key after key. Run fresh sessions until the schedule
    // drains; at least one of them must have tripped the breaker, and the
    // short cooldown's half-open probes keep burning the per-prompt
    // schedules even while it flaps, so the runs converge.
    let mut saw_fastfails = false;
    let mut saw_failed_cells = false;
    let mut last = session().execute(sql).unwrap();
    for _ in 0..30 {
        saw_fastfails |= last.stats.breaker_fastfails > 0;
        saw_failed_cells |= last.stats.failed_cells > 0;
        if last.stats.failed_cells == 0 {
            break;
        }
        last = session().execute(sql).unwrap();
    }
    assert!(
        saw_failed_cells,
        "a rate-1.0 schedule with no retries must degrade cells"
    );
    assert!(
        saw_fastfails,
        "the exhaustion streak must open the breaker in some run"
    );
    assert_eq!(last.stats.failed_cells, 0, "schedule failed to drain");
    assert_eq!(last.relation.rows, want.relation.rows);
}

/// A fault that kills a listing mid-flight leaves the shared store
/// *resumable*, never poisoned: the partial frontier is invisible to warm
/// reads, a retrying session resumes past it (cheaper than a cold
/// listing) and completes the exact universe with no duplicates.
#[test]
fn faulted_mid_listing_leaves_a_resumable_frontier() {
    let s = Scenario::generate_with(42, small_config());
    let paged = ModelProfile {
        list_page_size: 4,
        ..ModelProfile::oracle()
    };
    let sql = "SELECT name FROM city";
    let full = Galois::with_options(
        Arc::new(SimLlm::new(s.knowledge.clone(), paged.clone())),
        s.database.clone(),
        GaloisOptions::default(),
    )
    .execute(sql)
    .unwrap();
    assert!(full.relation.rows.len() > 8, "need several pages");

    // Scan fault seeds for one that fails the listing mid-flight (some
    // pages in, some pages short) on a resilience-Off session.
    let mut found = None;
    for seed in 1..=80u64 {
        let store = Arc::new(KeyUniverseStore::default());
        let model = Arc::new(FaultyLlm::new(
            Arc::new(SimLlm::new(s.knowledge.clone(), paged.clone())),
            FaultProfile {
                fault_rate: 0.35,
                ..detectable_faults(seed, 0.35)
            },
        ));
        let partial = Galois::with_options(
            model.clone(),
            s.database.clone(),
            GaloisOptions {
                list_store: ListStore::Shared(store.clone()),
                ..GaloisOptions::default()
            },
        )
        .execute(sql)
        .unwrap();
        let n = partial.relation.rows.len();
        if n > 0 && n < full.relation.rows.len() {
            assert!(
                partial.stats.failed_cells > 0,
                "a truncated listing must be counted as a failed cell"
            );
            assert_eq!(
                partial.relation.rows,
                full.relation.rows[..n],
                "the partial listing must be a clean prefix of the full one"
            );
            found = Some((store, model, n));
            break;
        }
    }
    let (store, model, kept) = found.expect("no seed produced a mid-listing failure");

    // The partial frontier must not be warm-visible (that would make the
    // truncated universe look complete — a poisoned store).
    assert!(
        store.warm_map(&model.signature()).is_empty(),
        "a faulted listing must never publish an exhausted universe"
    );

    // A retrying session over the same model handle and store resumes
    // past the frontier: exact full universe, no duplicates, and fewer
    // list prompts than the clean cold start needed.
    let resumed = Galois::with_options(
        model.clone(),
        s.database.clone(),
        GaloisOptions {
            list_store: ListStore::Shared(store.clone()),
            resilience: Resilience::On(RetryPolicy::default()),
            ..GaloisOptions::default()
        },
    )
    .execute(sql)
    .unwrap();
    assert_eq!(resumed.relation.rows, full.relation.rows);
    assert_eq!(resumed.stats.failed_cells, 0);
    assert!(
        resumed.stats.list_prompts < full.stats.list_prompts,
        "resume must be cheaper than the cold listing ({} vs {}, {} keys kept)",
        resumed.stats.list_prompts,
        full.stats.list_prompts,
        kept
    );
    let warm = store.warm_map(&model.signature());
    assert_eq!(
        warm.values().copied().sum::<usize>(),
        full.relation.rows.len(),
        "the completed universe must hold every key exactly once"
    );
}
