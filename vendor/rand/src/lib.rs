//! Offline shim for the slice of the [`rand`](https://docs.rs/rand/0.8) 0.8
//! API this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges.
//!
//! The build container has no crates.io access, so this crate stands in via a
//! workspace path dependency. The generator is a SplitMix64 — deterministic,
//! seedable and statistically adequate for simulation and test data; it is
//! **not** the ChaCha12 stream the real `StdRng` uses, and it is not
//! cryptographically secure. Swap this crate for the registry `rand` when
//! networked builds become available (seeded streams will change).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the underlying uniform `u64` stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range` (integer or float, half-open
    /// or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples a value of a [`Standard`]-distributed type: `f64` uniform in
    /// `[0, 1)`, `bool` as a fair coin.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`]; mirrors `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]; mirrors `rand`'s `SampleRange`.
/// The single blanket impl per range shape (rather than one impl per
/// element type) is what lets `gen_range(-50..200)` infer its element type
/// from the surrounding expression, exactly as the real crate does.
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(start, end, true, rng)
    }
}

/// Element types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[start, end)`, or `[start, end]` when
    /// `inclusive`. Panics on an empty range.
    fn sample_between<R: RngCore>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(width > 0, "empty gen_range");
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { start <= end } else { start < end },
                    "empty gen_range"
                );
                start + (f64::sample_standard(rng) as $t) * (end - start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix once so seeds 0 and 1 do not yield correlated streams.
            let mut rng = StdRng { state };
            rng.next_u64();
            StdRng { state: rng.state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50..200);
            assert!((-50..200).contains(&v));
            let f = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let m = rng.gen_range(1..=12);
            assert!((1..=12).contains(&m));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
