//! Offline shim for the slice of the
//! [`proptest`](https://docs.rs/proptest/1) API this workspace's property
//! tests use.
//!
//! Implemented surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`, `prop_recursive`
//!   and `boxed`; [`strategy::Just`]; tuples, integer ranges and
//!   regex-subset string literals as strategies;
//! * [`arbitrary::any`] for `bool`, integers and floats;
//! * [`sample::select`], [`collection::vec`], [`option::of`];
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`]-family macros and [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Differences from the real crate, by design: generation is driven by a
//! deterministic per-test SplitMix64 stream (no `PROPTEST_*` env knobs), and
//! there is **no shrinking** — a failing case panics with the generated
//! values in the message instead of a minimized counterexample. Swap for the
//! registry `proptest` when networked builds become available.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// expands to a `#[test]` running `body` over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )*
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 10_000,
                                "{}: too many prop_assume rejections ({})",
                                stringify!($name),
                                __why,
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "property {} failed after {} passing cases: {}",
                                stringify!($name),
                                __accepted,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type. Weighted arms are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Fails the current test case (with an optional formatted message) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __left, __right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    __left,
                    __right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __left, __right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __left,
                    __right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Discards the current test case (without counting it against the case
/// budget) unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}
