//! The [`Strategy`] trait, its combinators, and strategy implementations
//! for ranges, tuples, string patterns and constants.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A type-erased, reference-counted strategy. Cloning is cheap and shares
/// the underlying sampler, which is what lets recursive strategies close
/// over themselves.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling closure as a strategy.
    pub fn from_fn(sample: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// A recipe for generating values of one type from the deterministic test
/// stream. Unlike the real crate there is no value tree and no shrinking:
/// `generate` directly yields a final value.
pub trait Strategy: Clone {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }

    /// Applies `map` to every generated value.
    fn prop_map<U, F>(self, map: F) -> BoxedStrategy<U>
    where
        Self: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::from_fn(move |rng| map(self.generate(rng)))
    }

    /// Discards generated values failing the predicate, retrying with fresh
    /// draws. Panics (failing the test) if 1000 consecutive draws are
    /// rejected — filters are meant for rare exclusions, not narrow search.
    fn prop_filter<F>(self, reason: &str, keep: F) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let reason = reason.to_string();
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1000 {
                let value = self.generate(rng);
                if keep(&value) {
                    return value;
                }
            }
            panic!("prop_filter({reason:?}) rejected 1000 consecutive values");
        })
    }

    /// Builds a recursive strategy: `expand` receives the strategy for the
    /// previous depth and returns the strategy for one more level. Leaves
    /// are mixed in at every level so sizes stay bounded; `_desired_size`
    /// and `_expected_branch` are accepted for signature compatibility but
    /// only `depth` limits recursion.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut tree = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(tree).boxed();
            let leaf = leaf.clone();
            tree = BoxedStrategy::from_fn(move |rng| {
                // One-third leaves keeps expected node counts finite even
                // for wide branching factors.
                if rng.below(3) == 0 {
                    leaf.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            });
        }
        tree
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies; backs [`crate::prop_oneof!`].
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::from_fn(move |rng| {
        let index = rng.below(arms.len() as u64) as usize;
        arms[index].generate(rng)
    })
}

macro_rules! impl_int_range_strategy {
    ($($int:ty),*) => {$(
        impl Strategy for Range<$int> {
            type Value = $int;

            fn generate(&self, rng: &mut TestRng) -> $int {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $int
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &'static str {
    type Value = String;

    /// String literals are regex-subset patterns; see [`crate::string`].
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident . $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
