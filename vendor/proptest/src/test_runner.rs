//! Test-runner types: configuration, case outcomes and the deterministic
//! generation stream.

/// Per-test configuration; only the case count is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(String),
    /// The property is false for this case; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a [`TestCaseError::Fail`].
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a [`TestCaseError::Reject`].
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic SplitMix64 stream feeding every strategy in one test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so every run of a given property
    /// generates the same cases (no shrinking means reproducibility is the
    /// only debugging aid).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed once.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: hash };
        rng.next_u64();
        rng
    }

    /// Returns the next value of the uniform `u64` stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
