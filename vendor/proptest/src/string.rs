//! Generation of strings from the regex subset this workspace's tests use:
//! sequences of literal characters and `[..]` character classes, each with
//! an optional `{n}`, `{m,n}`, `?`, `*` or `+` quantifier.

use crate::test_runner::TestRng;

/// One pattern element: inclusive character ranges to choose from, plus a
/// repetition interval.
struct Piece {
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`. Panics on syntax outside the
/// supported subset, which fails the offending test loudly rather than
/// producing silently wrong data.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = piece.min + (rng.below(u64::from(piece.max - piece.min) + 1) as u32);
        for _ in 0..count {
            out.push(sample_class(&piece.ranges, rng));
        }
    }
    out
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = u64::from(hi) - u64::from(lo) + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32)
                .expect("class ranges stay inside valid scalar values");
        }
        pick -= span;
    }
    unreachable!("pick is bounded by the total class size")
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                ranges
            }
            '\\' => {
                i += 2;
                vec![(chars[i - 1], chars[i - 1])]
            }
            literal => {
                i += 1;
                vec![(literal, literal)]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { ranges, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        // `a-z` is a range unless the dash is the last class character.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        // Unbounded quantifiers get a small cap; the tests only use them
        // for filler text.
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|offset| i + offset)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((min, max)) => (
                    min.parse().expect("quantifier minimum"),
                    max.parse().expect("quantifier maximum"),
                ),
                None => {
                    let exact = body.parse().expect("quantifier count");
                    (exact, exact)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_produce_matching_strings() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..200 {
            let ident = generate("[a-zA-Z][a-zA-Z0-9]{0,10}", &mut rng);
            assert!((1..=11).contains(&ident.chars().count()), "{ident:?}");
            assert!(ident.chars().next().unwrap().is_ascii_alphabetic());
            assert!(ident.chars().all(|c| c.is_ascii_alphanumeric()));

            let printable = generate("[ -~]{0,80}", &mut rng);
            assert!(printable.chars().count() <= 80);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));

            let like = generate("[a-z%_]{1,6}", &mut rng);
            assert!((1..=6).contains(&like.chars().count()));
            assert!(like
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '%' || c == '_'));
        }
    }
}
