//! Collection strategies.

use std::ops::Range;

use crate::strategy::{BoxedStrategy, Strategy};

/// Vectors of `element` values with a length drawn uniformly from `size`
/// (half-open, like `proptest::collection::vec` with a range argument).
pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
{
    assert!(size.start < size.end, "empty vec() size range");
    BoxedStrategy::from_fn(move |rng| {
        let len = size.start + rng.below((size.end - size.start) as u64) as usize;
        (0..len).map(|_| element.generate(rng)).collect()
    })
}
