//! `any::<T>()` — default strategies per type.

use crate::strategy::BoxedStrategy;

/// Types with a default generation strategy.
pub trait Arbitrary: Sized + 'static {
    /// The default strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Returns the default strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::from_fn(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_arbitrary_int {
    ($($int:ty),*) => {$(
        impl Arbitrary for $int {
            fn arbitrary() -> BoxedStrategy<$int> {
                BoxedStrategy::from_fn(|rng| {
                    // Half small values (readable failure output, denser
                    // edge coverage near zero), half full-width bits.
                    if rng.next_u64() & 1 == 0 {
                        (rng.below(2001) as i64 - 1000) as $int
                    } else {
                        rng.next_u64() as $int
                    }
                })
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_float {
    ($($float:ident),*) => {$(
        impl Arbitrary for $float {
            fn arbitrary() -> BoxedStrategy<$float> {
                BoxedStrategy::from_fn(|rng| match rng.below(10) {
                    // Weird corner of the space: raw bit patterns cover
                    // NaN, infinities, subnormals and extreme magnitudes.
                    0..=2 => $float::from_bits(rng.next_u64() as _),
                    // Tame decimals, e.g. -483.07.
                    _ => {
                        let whole = rng.below(2_000_001) as i64 - 1_000_000;
                        let scale = [1.0, 10.0, 100.0, 10_000.0][rng.below(4) as usize];
                        whole as $float / scale
                    }
                })
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);
