//! Sampling from explicit value lists.

use crate::strategy::BoxedStrategy;

/// Uniform choice from `options`, mirroring `proptest::sample::select`.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    BoxedStrategy::from_fn(move |rng| options[rng.below(options.len() as u64) as usize].clone())
}
