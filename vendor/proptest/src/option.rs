//! Optional-value strategies.

use crate::strategy::{BoxedStrategy, Strategy};

/// Wraps a strategy's values in `Some` three times out of four, `None`
/// otherwise; mirrors `proptest::option::of`.
pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
{
    BoxedStrategy::from_fn(move |rng| {
        if rng.below(4) == 0 {
            None
        } else {
            Some(inner.generate(rng))
        }
    })
}
