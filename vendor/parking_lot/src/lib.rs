//! Offline shim for the slice of the
//! [`parking_lot`](https://docs.rs/parking_lot/0.12) API this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free, non-poisoning guards.
//!
//! Backed by `std::sync` primitives; poisoning is deliberately swallowed
//! (matching `parking_lot` semantics, where a panicked holder does not poison
//! the lock). Swap this crate for the registry `parking_lot` when networked
//! builds become available.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never fails: a poisoned lock is
    /// recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
