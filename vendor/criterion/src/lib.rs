//! Offline shim for the slice of the
//! [`criterion`](https://docs.rs/criterion/0.5) API this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a single warm-up pass followed by a fixed measurement window;
//! it reports mean wall-clock time per iteration with no statistics,
//! outlier rejection or HTML reports. Good enough to smoke-test bench
//! targets and eyeball relative cost; swap for the registry `criterion`
//! when networked builds become available.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Wall-clock budget for one `bench_function` measurement window.
    measurement_time: Duration,
}

impl Criterion {
    fn measurement(&self) -> Duration {
        if self.measurement_time.is_zero() {
            Duration::from_millis(200)
        } else {
            self.measurement_time
        }
    }

    /// Runs `f` under the bench harness and prints a one-line mean timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement(),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters
        };
        println!(
            "{name:<40} time: {mean:>12.3?}   ({} iterations)",
            bencher.iters
        );
        self
    }
}

/// Per-benchmark timing loop.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly until the measurement budget is spent,
    /// accumulating wall-clock time per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up call, unmeasured.
        black_box(routine());
        let window = Instant::now();
        while window.elapsed() < self.budget && self.iters < 1_000_000 {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Registers bench functions under a group name, mirroring `criterion`'s
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each registered group, mirroring `criterion`'s
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        criterion.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
