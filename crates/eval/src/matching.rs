//! The content metric of Table 2: tuple mapping + cell-value matching.
//!
//! The paper "manually map\[s\] tuples between `R_D` … and `(R_M, T_M,
//! T_C_M)`" and counts matching cell values, accepting a numerical value
//! "if the relative error w.r.t. `R_D` is less than 5%". This module
//! mechanises that process: rows are greedily assigned to the ground-truth
//! row they match best, then cells are compared with the 5% rule for
//! numbers, calendar equality for dates, and normalised case-insensitive
//! equality for text.

use galois_core::clean::{normalise_text, parse_date, parse_number, CleaningPolicy};
use galois_relational::{Relation, Value};

/// Relative-error tolerance for numeric cells (paper §5).
pub const NUMERIC_TOLERANCE: f64 = 0.05;

/// Outcome of matching one candidate result against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchOutcome {
    /// Cells that matched under the tolerant comparison.
    pub matched_cells: usize,
    /// Total ground-truth cells.
    pub truth_cells: usize,
    /// Total candidate cells.
    pub candidate_cells: usize,
}

impl MatchOutcome {
    /// Cell match score in `[0, 1]`: matched cells over ground-truth
    /// cells. This is the reading of the paper's metric consistent with
    /// its own numbers — ChatGPT scores 80% on selections while returning
    /// 19.5% fewer rows overall, which only adds up when the deficit is
    /// concentrated in joins/aggregates and missing cells count against
    /// the method (see EXPERIMENTS.md).
    pub fn score(&self) -> f64 {
        if self.truth_cells == 0 {
            return 1.0;
        }
        self.matched_cells as f64 / self.truth_cells as f64
    }

    /// Precision variant: matched cells over *returned* cells. Reported
    /// alongside the main score by the harness binaries.
    pub fn precision(&self) -> f64 {
        if self.candidate_cells == 0 {
            return if self.truth_cells == 0 { 1.0 } else { 0.0 };
        }
        self.matched_cells as f64 / self.candidate_cells as f64
    }
}

/// Tolerantly compares one ground-truth cell against a candidate string.
pub fn cell_matches(truth: &Value, candidate: &str) -> bool {
    let policy = CleaningPolicy::default();
    let cand = normalise_text(candidate);
    if cand.is_empty() {
        return truth.is_null();
    }
    match truth {
        Value::Null => cand.eq_ignore_ascii_case("null") || cand.eq_ignore_ascii_case("unknown"),
        Value::Int(t) => match parse_number(&cand, &policy) {
            Some(c) => within_tolerance(*t as f64, c),
            None => false,
        },
        Value::Float(t) => match parse_number(&cand, &policy) {
            Some(c) => within_tolerance(*t, c),
            None => false,
        },
        Value::Bool(t) => {
            cand.eq_ignore_ascii_case(if *t { "true" } else { "false" })
                || cand.eq_ignore_ascii_case(if *t { "yes" } else { "no" })
        }
        Value::Text(t) => normalise_text(t).eq_ignore_ascii_case(&cand),
        Value::Date(t) => match parse_date(&cand, &policy) {
            Some(d) => d == *t,
            None => false,
        },
    }
}

fn within_tolerance(truth: f64, candidate: f64) -> bool {
    if truth == 0.0 {
        return candidate.abs() < 1e-9;
    }
    ((candidate - truth) / truth).abs() < NUMERIC_TOLERANCE
}

/// Number of matching cells when a candidate row is aligned positionally
/// with a truth row (extra/missing cells never match).
fn row_match_count(truth: &[Value], candidate: &[String]) -> usize {
    truth
        .iter()
        .zip(candidate.iter())
        .filter(|(t, c)| cell_matches(t, c))
        .count()
}

/// Greedy tuple mapping: candidates are assigned, in order, to the free
/// ground-truth row they match best (ties to the earliest row). This is
/// the mechanised stand-in for the paper's manual mapping.
pub fn match_records(truth: &Relation, candidates: &[Vec<String>]) -> MatchOutcome {
    let arity = truth.schema.arity();
    let truth_cells = truth.len() * arity;
    let candidate_cells: usize = candidates.iter().map(|c| c.len().min(arity).max(1)).sum();

    let mut taken = vec![false; truth.rows.len()];
    let mut matched_cells = 0usize;
    for cand in candidates {
        let mut best: Option<(usize, usize)> = None; // (truth idx, matches)
        for (i, truth_row) in truth.rows.iter().enumerate() {
            if taken[i] {
                continue;
            }
            let m = row_match_count(truth_row, cand);
            if m > 0 && best.map(|(_, bm)| m > bm).unwrap_or(true) {
                best = Some((i, m));
            }
        }
        if let Some((i, m)) = best {
            taken[i] = true;
            matched_cells += m;
        }
    }
    MatchOutcome {
        matched_cells,
        truth_cells,
        candidate_cells,
    }
}

/// Renders a relation's rows as strings for matching (used on `R_M`).
pub fn relation_to_records(rel: &Relation) -> Vec<Vec<String>> {
    rel.rows
        .iter()
        .map(|row| row.iter().map(Value::render).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_relational::{DataType, Date, PlanColumn, PlanSchema};

    fn truth(rows: Vec<Vec<Value>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation {
            schema: PlanSchema::new(
                (0..arity)
                    .map(|i| PlanColumn::computed(format!("c{i}"), DataType::Text))
                    .collect(),
            ),
            rows,
        }
    }

    #[test]
    fn numeric_tolerance_five_percent() {
        assert!(cell_matches(&Value::Int(100), "104"));
        assert!(!cell_matches(&Value::Int(100), "106"));
        assert!(cell_matches(&Value::Int(2_800_000), "2.8 million"));
        assert!(cell_matches(&Value::Float(2.5), "2.45"));
        assert!(!cell_matches(&Value::Int(100), "Rome"));
    }

    #[test]
    fn text_matching_is_normalised() {
        assert!(cell_matches(&Value::Text("Rome".into()), " rome. "));
        assert!(!cell_matches(&Value::Text("Rome".into()), "Milan"));
        // Aliases do NOT match: this is exactly the paper's join/content
        // failure ("IT" ≠ "ITA" at the string level).
        assert!(!cell_matches(&Value::Text("ITA".into()), "IT"));
    }

    #[test]
    fn date_matching_is_format_insensitive() {
        let d = Value::Date(Date::new(1961, 5, 8).unwrap());
        assert!(cell_matches(&d, "1961-05-08"));
        assert!(cell_matches(&d, "May 8, 1961"));
        assert!(cell_matches(&d, "05/08/1961"));
        assert!(!cell_matches(&d, "1961-05-09"));
    }

    #[test]
    fn greedy_mapping_matches_unordered_rows() {
        let t = truth(vec![
            vec![Value::Text("Rome".into()), Value::Int(100)],
            vec![Value::Text("Paris".into()), Value::Int(200)],
        ]);
        let cands = vec![
            vec!["Paris".to_string(), "200".to_string()],
            vec!["Rome".to_string(), "101".to_string()],
        ];
        let m = match_records(&t, &cands);
        assert_eq!(m.matched_cells, 4);
        assert!((m.score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rows_lower_the_score() {
        let t = truth(vec![
            vec![Value::Text("Rome".into())],
            vec![Value::Text("Paris".into())],
        ]);
        let m = match_records(&t, &[vec!["Rome".to_string()]]);
        assert_eq!(m.matched_cells, 1);
        assert!((m.score() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hallucinated_rows_lower_precision_not_recall() {
        let t = truth(vec![vec![Value::Text("Rome".into())]]);
        let cands = vec![
            vec!["Rome".to_string()],
            vec!["Atlantis".to_string()],
            vec!["El Dorado".to_string()],
        ];
        let m = match_records(&t, &cands);
        assert_eq!(m.matched_cells, 1);
        assert!((m.score() - 1.0).abs() < 1e-12);
        assert!((m.precision() - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn a_truth_row_is_used_at_most_once() {
        let t = truth(vec![vec![Value::Text("Rome".into())]]);
        let cands = vec![vec!["Rome".to_string()], vec!["Rome".to_string()]];
        let m = match_records(&t, &cands);
        assert_eq!(m.matched_cells, 1);
    }

    #[test]
    fn empty_candidates_score_zero_against_non_empty_truth() {
        let t = truth(vec![vec![Value::Text("Rome".into())]]);
        let m = match_records(&t, &[]);
        assert_eq!(m.matched_cells, 0);
        assert_eq!(m.score(), 0.0);
        assert_eq!(m.precision(), 0.0);
    }

    #[test]
    fn both_empty_is_perfect() {
        let t = truth(vec![]);
        let m = match_records(&t, &[]);
        assert!((m.score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_cells_match_unknown() {
        assert!(cell_matches(&Value::Null, "unknown"));
        assert!(cell_matches(&Value::Null, ""));
        assert!(!cell_matches(&Value::Null, "42"));
    }
}
