//! Suite runners regenerating the paper's experiments.
//!
//! * [`run_galois_suite`] — executes the 46 queries through Galois on one
//!   model (`R_M` per query), collecting cardinality, content and prompt
//!   statistics;
//! * [`run_baseline_suite`] — the QA baselines (`T_M`, `T_C_M`);
//! * [`table1`] / [`table2`] / [`timing_summary`] — the paper's reported
//!   artifacts.

use crate::cardinality::{average_diff, cardinality_diff_percent};
use crate::matching::{match_records, relation_to_records, MatchOutcome};
use crate::report::{percent0, signed1, TextTable};
use galois_core::{BaselineKind, Galois, GaloisOptions, QaBaseline, QueryStats, Scheduler};
use galois_dataset::{
    build_operator_suite, OperatorCheck, OperatorFamily, QueryCategory, Scenario,
};
use galois_llm::{lane_schedule, LanguageModel, ModelProfile, Parallelism, SimLlm};
use std::sync::Arc;
use std::time::Instant;

/// One query's outcome under Galois.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query id (1-based).
    pub id: usize,
    /// Table-2 class.
    pub category: QueryCategory,
    /// `|R_D|`.
    pub truth_rows: usize,
    /// `|R_M|`.
    pub result_rows: usize,
    /// Cardinality diff % for this query.
    pub cardinality_diff: f64,
    /// Content matching outcome.
    pub matching: MatchOutcome,
    /// Prompt accounting.
    pub stats: QueryStats,
}

/// A full Galois suite run on one model.
#[derive(Debug, Clone)]
pub struct GaloisRun {
    /// Model profile name.
    pub model: String,
    /// Per-query outcomes, in suite order.
    pub outcomes: Vec<QueryOutcome>,
    /// Real wall-clock milliseconds for the whole suite.
    pub wall_ms: u64,
}

impl GaloisRun {
    /// Average cardinality difference (%), paper Table 1 cell.
    pub fn average_cardinality_diff(&self) -> f64 {
        let pairs: Vec<(usize, usize)> = self
            .outcomes
            .iter()
            .map(|o| (o.truth_rows, o.result_rows))
            .collect();
        average_diff(&pairs).0
    }

    /// Mean content score over a category filter (`None` = all).
    pub fn content_score(&self, category: Option<QueryCategory>) -> f64 {
        let scores: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| category.map(|c| o.category == c).unwrap_or(true))
            .map(|o| o.matching.score())
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Builds the simulated model for a profile over the scenario's knowledge.
pub fn model_for(scenario: &Scenario, profile: ModelProfile) -> Arc<dyn LanguageModel> {
    Arc::new(SimLlm::new(scenario.knowledge.clone(), profile))
}

/// Runs all 46 queries through Galois on the given model, sequentially
/// (equivalent to [`run_galois_suite_parallel`] with one thread).
pub fn run_galois_suite(
    scenario: &Scenario,
    profile: ModelProfile,
    options: GaloisOptions,
) -> GaloisRun {
    run_galois_suite_parallel(scenario, profile, options, 1)
}

/// Runs all 46 queries through Galois on the given model, across up to
/// `threads` worker threads.
///
/// One shared session serves every query (as in the sequential harness, so
/// the prompt cache is reused across queries), workers claim queries from
/// a shared queue, and outcomes are always collected in suite order — the
/// report artifacts (Table 1 / Table 2) are byte-identical to a
/// single-threaded run for any thread count, because each query's `R_M`
/// relation is a deterministic function of its prompts alone.
pub fn run_galois_suite_parallel(
    scenario: &Scenario,
    profile: ModelProfile,
    options: GaloisOptions,
    threads: usize,
) -> GaloisRun {
    let model_name = profile.name.clone();
    let model = model_for(scenario, profile);
    let galois = Galois::with_options(model, scenario.database.clone(), options);
    run_galois_suite_on(scenario, &galois, &model_name, threads)
}

/// Runs all 46 queries through an *existing* Galois session, across up to
/// `threads` worker threads.
///
/// Separated from [`run_galois_suite_parallel`] (which constructs a fresh
/// session) so callers can run the suite repeatedly on one session and
/// measure what session-lived state — the prompt cache, and the
/// key-universe store when [`galois_core::ListStore`] is enabled — buys
/// the second pass.
pub fn run_galois_suite_on(
    scenario: &Scenario,
    galois: &Galois,
    model_name: &str,
    threads: usize,
) -> GaloisRun {
    let started = Instant::now();
    let scheduler = Scheduler::new(Parallelism::new(threads));
    let units: Vec<_> = scenario
        .suite
        .iter()
        .map(|spec| {
            let galois = &galois;
            move || {
                let sql = spec.to_sql();
                let truth = scenario
                    .database
                    .execute(&sql)
                    .expect("suite queries execute on ground truth");
                let (relation, stats) = match galois.execute(&sql) {
                    Ok(r) => (r.relation, r.stats),
                    // An execution failure contributes an empty result —
                    // the system returned nothing for this query.
                    Err(_) => (
                        galois_relational::Relation::empty(truth.schema.clone()),
                        QueryStats::default(),
                    ),
                };
                let matching = match_records(&truth, &relation_to_records(&relation));
                QueryOutcome {
                    id: spec.id,
                    category: spec.category,
                    truth_rows: truth.len(),
                    result_rows: relation.len(),
                    cardinality_diff: cardinality_diff_percent(truth.len(), relation.len()),
                    matching,
                    stats,
                }
            }
        })
        .collect();
    let outcomes = scheduler.run_wave(units);
    GaloisRun {
        model: model_name.to_string(),
        outcomes,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Aggregate prompt/latency accounting over one Galois suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteTotals {
    /// Prompts that reached the model or cache, across all queries.
    pub prompts: usize,
    /// Cache hits across all queries.
    pub cache_hits: usize,
    /// Sum of per-query single-lane virtual time (the pre-scheduler
    /// "total virtual_ms" of the suite).
    pub serial_virtual_ms: u64,
    /// Virtual makespan of the suite: per-query virtual times packed onto
    /// `lanes` concurrent query streams (equals `serial_virtual_ms` when
    /// both the session parallelism and `lanes` are 1).
    pub virtual_ms: u64,
    /// Virtual milliseconds attributed to the key-listing phase, summed
    /// over queries — where the remaining model time lives, per protocol
    /// phase (see [`galois_core::QueryStats::list_virtual_ms`] for the
    /// per-query accounting rule; phases overlap on the lanes, so the
    /// three fields need not sum to `virtual_ms`).
    pub list_virtual_ms: u64,
    /// Virtual milliseconds attributed to the filter phase, summed over
    /// queries.
    pub filter_virtual_ms: u64,
    /// Virtual milliseconds attributed to the attribute-fetch phase,
    /// summed over queries.
    pub fetch_virtual_ms: u64,
    /// Real wall-clock milliseconds for the run.
    pub wall_ms: u64,
    /// Virtual milliseconds queries waited in the cross-query admission
    /// queue, summed over queries (always zero outside the concurrent
    /// harness — see [`galois_core::QueryStats::queue_ms`]).
    pub queue_ms: u64,
}

/// Folds a run's per-query stats into [`SuiteTotals`], modelling `lanes`
/// concurrent query streams for the suite-level virtual makespan.
pub fn suite_totals(run: &GaloisRun, lanes: usize) -> SuiteTotals {
    SuiteTotals {
        prompts: run.outcomes.iter().map(|o| o.stats.total_prompts()).sum(),
        cache_hits: run.outcomes.iter().map(|o| o.stats.cache_hits).sum(),
        serial_virtual_ms: run.outcomes.iter().map(|o| o.stats.serial_virtual_ms).sum(),
        virtual_ms: lane_schedule(run.outcomes.iter().map(|o| o.stats.virtual_ms), lanes),
        list_virtual_ms: run.outcomes.iter().map(|o| o.stats.list_virtual_ms).sum(),
        filter_virtual_ms: run.outcomes.iter().map(|o| o.stats.filter_virtual_ms).sum(),
        fetch_virtual_ms: run.outcomes.iter().map(|o| o.stats.fetch_virtual_ms).sum(),
        wall_ms: run.wall_ms,
        queue_ms: run.outcomes.iter().map(|o| o.stats.queue_ms).sum(),
    }
}

/// One query's outcome under a QA baseline.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Query id.
    pub id: usize,
    /// Table-2 class.
    pub category: QueryCategory,
    /// Content matching outcome.
    pub matching: MatchOutcome,
    /// Virtual milliseconds spent answering the question.
    pub virtual_ms: u64,
}

/// A QA baseline run over the suite.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Model profile name.
    pub model: String,
    /// Baseline flavour.
    pub kind: BaselineKind,
    /// Per-query outcomes.
    pub outcomes: Vec<BaselineOutcome>,
    /// Real wall-clock milliseconds for the whole suite.
    pub wall_ms: u64,
}

impl BaselineRun {
    /// Mean content score over a category filter (`None` = all).
    pub fn content_score(&self, category: Option<QueryCategory>) -> f64 {
        let scores: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| category.map(|c| o.category == c).unwrap_or(true))
            .map(|o| o.matching.score())
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Runs the NL-question baseline over the suite, sequentially.
pub fn run_baseline_suite(
    scenario: &Scenario,
    profile: ModelProfile,
    kind: BaselineKind,
) -> BaselineRun {
    run_baseline_suite_parallel(scenario, profile, kind, 1)
}

/// Runs the NL-question baseline over the suite across up to `threads`
/// worker threads, with outcomes in suite order.
pub fn run_baseline_suite_parallel(
    scenario: &Scenario,
    profile: ModelProfile,
    kind: BaselineKind,
    threads: usize,
) -> BaselineRun {
    let started = Instant::now();
    let model_name = profile.name.clone();
    let model = model_for(scenario, profile);
    let baseline = QaBaseline::new(model);
    let scheduler = Scheduler::new(Parallelism::new(threads));
    let units: Vec<_> = scenario
        .suite
        .iter()
        .map(|spec| {
            let baseline = &baseline;
            move || {
                let truth = scenario
                    .database
                    .execute(&spec.to_sql())
                    .expect("suite queries execute on ground truth");
                let result = baseline.ask(&spec.question(), kind);
                let matching = match_records(&truth, &result.records);
                BaselineOutcome {
                    id: spec.id,
                    category: spec.category,
                    matching,
                    virtual_ms: result.virtual_ms,
                }
            }
        })
        .collect();
    let outcomes = scheduler.run_wave(units);
    BaselineRun {
        model: model_name,
        kind,
        outcomes,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Regenerates **Table 1**: average cardinality difference per model.
pub fn table1(scenario: &Scenario, profiles: &[ModelProfile]) -> (TextTable, Vec<(String, f64)>) {
    table1_parallel(scenario, profiles, 1)
}

/// [`table1`] with each profile's suite run across `threads` workers; the
/// rendered table is byte-identical for any thread count.
pub fn table1_parallel(
    scenario: &Scenario,
    profiles: &[ModelProfile],
    threads: usize,
) -> (TextTable, Vec<(String, f64)>) {
    let mut table = TextTable::new(&["model", "diff as % of |R_D|"]);
    let mut values = Vec::new();
    for profile in profiles {
        let run =
            run_galois_suite_parallel(scenario, profile.clone(), GaloisOptions::default(), threads);
        let avg = run.average_cardinality_diff();
        table.row(vec![run.model.clone(), signed1(avg)]);
        values.push((run.model, avg));
    }
    (table, values)
}

/// The three method rows of Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Galois (`R_M`) scores: (all, selections, aggregates, joins).
    pub galois: (f64, f64, f64, f64),
    /// Plain QA (`T_M`) scores.
    pub qa: (f64, f64, f64, f64),
    /// CoT QA (`T_C_M`) scores.
    pub cot: (f64, f64, f64, f64),
}

impl Table2 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["method", "All", "Selections", "Aggregates", "Joins only"]);
        for (label, s) in [
            ("R_M (SQL queries)", &self.galois),
            ("T_M (NL questions)", &self.qa),
            ("T_C_M (NL quest.+CoT)", &self.cot),
        ] {
            t.row(vec![
                label.to_string(),
                percent0(s.0),
                percent0(s.1),
                percent0(s.2),
                percent0(s.3),
            ]);
        }
        t.render()
    }
}

/// Regenerates **Table 2** on one model (the paper uses ChatGPT).
pub fn table2(scenario: &Scenario, profile: ModelProfile) -> Table2 {
    table2_parallel(scenario, profile, 1)
}

/// [`table2`] with each suite run across `threads` workers; the rendered
/// table is byte-identical for any thread count.
pub fn table2_parallel(scenario: &Scenario, profile: ModelProfile, threads: usize) -> Table2 {
    let by_cat = |scores: &dyn Fn(Option<QueryCategory>) -> f64| {
        (
            scores(None),
            scores(Some(QueryCategory::SelectionOnly)),
            scores(Some(QueryCategory::Aggregate)),
            scores(Some(QueryCategory::Join)),
        )
    };
    let galois_run =
        run_galois_suite_parallel(scenario, profile.clone(), GaloisOptions::default(), threads);
    let qa_run =
        run_baseline_suite_parallel(scenario, profile.clone(), BaselineKind::Plain, threads);
    let cot_run =
        run_baseline_suite_parallel(scenario, profile, BaselineKind::ChainOfThought, threads);
    Table2 {
        galois: by_cat(&|c| galois_run.content_score(c)),
        qa: by_cat(&|c| qa_run.content_score(c)),
        cot: by_cat(&|c| cot_run.content_score(c)),
    }
}

/// One operator-suite query's outcome: whether Galois reproduced the
/// ground truth under the query's scoring semantics
/// ([`galois_dataset::OperatorCheck`]), plus its prompt accounting.
#[derive(Debug, Clone)]
pub struct OperatorOutcome {
    /// Query id within the operator suite (1-based).
    pub id: usize,
    /// Operator family.
    pub family: OperatorFamily,
    /// `|R_D|` (for `Window` checks, the unlimited truth size).
    pub truth_rows: usize,
    /// `|R_M|`.
    pub result_rows: usize,
    /// True when the result satisfies the query's check exactly.
    pub passed: bool,
    /// Prompt accounting.
    pub stats: QueryStats,
}

/// An operator-suite run ([`galois_dataset::build_operator_suite`])
/// through one Galois session.
#[derive(Debug, Clone)]
pub struct OperatorRun {
    /// Model profile name.
    pub model: String,
    /// Per-query outcomes, in suite order.
    pub outcomes: Vec<OperatorOutcome>,
    /// Real wall-clock milliseconds for the run.
    pub wall_ms: u64,
}

impl OperatorRun {
    /// Fraction of queries passing their check (`None` = all families).
    pub fn pass_rate(&self, family: Option<OperatorFamily>) -> f64 {
        let picked: Vec<&OperatorOutcome> = self
            .outcomes
            .iter()
            .filter(|o| family.map(|f| o.family == f).unwrap_or(true))
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().filter(|o| o.passed).count() as f64 / picked.len() as f64
        }
    }

    /// Renders the per-family report table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["family", "queries", "passed", "prompts"]);
        for family in [
            OperatorFamily::JoinLlm,
            OperatorFamily::JoinStored,
            OperatorFamily::GroupAgg,
            OperatorFamily::Limit,
        ] {
            let rows: Vec<&OperatorOutcome> = self
                .outcomes
                .iter()
                .filter(|o| o.family == family)
                .collect();
            t.row(vec![
                family.label().to_string(),
                rows.len().to_string(),
                rows.iter().filter(|o| o.passed).count().to_string(),
                rows.iter()
                    .map(|o| o.stats.total_prompts())
                    .sum::<usize>()
                    .to_string(),
            ]);
        }
        t.row(vec![
            "all".to_string(),
            self.outcomes.len().to_string(),
            self.outcomes
                .iter()
                .filter(|o| o.passed)
                .count()
                .to_string(),
            self.outcomes
                .iter()
                .map(|o| o.stats.total_prompts())
                .sum::<usize>()
                .to_string(),
        ]);
        t.render()
    }
}

/// Sorted rendered rows — the order-insensitive comparison key the
/// operator checks use.
fn sorted_rendered(rel: &galois_relational::Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(galois_relational::Value::render).collect())
        .collect();
    rows.sort();
    rows
}

/// Runs the operator suite (joins, grouped aggregates, LIMIT windows)
/// through Galois on the given model, scoring each query against ground
/// truth under its check semantics: `Exact` queries must reproduce the
/// truth as a multiset; `Window` queries must surface exactly
/// `min(n, |truth| − offset)` rows, all admitted by the unlimited truth.
pub fn run_operator_suite(
    scenario: &Scenario,
    profile: ModelProfile,
    options: GaloisOptions,
) -> OperatorRun {
    let started = Instant::now();
    let model_name = profile.name.clone();
    let model = model_for(scenario, profile);
    let galois = Galois::with_options(model, scenario.database.clone(), options);
    let outcomes = build_operator_suite(&scenario.world)
        .iter()
        .map(|q| {
            let (relation, stats) = match galois.execute(&q.sql) {
                Ok(r) => (r.relation, r.stats),
                Err(_) => (
                    galois_relational::Relation::empty(galois_relational::PlanSchema::new(vec![])),
                    QueryStats::default(),
                ),
            };
            let (truth_rows, passed) = match &q.check {
                OperatorCheck::Exact => {
                    let truth = scenario
                        .database
                        .execute(&q.sql)
                        .expect("operator queries execute on ground truth");
                    (
                        truth.len(),
                        sorted_rendered(&relation) == sorted_rendered(&truth),
                    )
                }
                OperatorCheck::Window {
                    unlimited_sql,
                    n,
                    offset,
                } => {
                    let full = scenario
                        .database
                        .execute(unlimited_sql)
                        .expect("operator queries execute on ground truth");
                    let admitted = sorted_rendered(&full);
                    let expect = (*n).min(full.len().saturating_sub(*offset));
                    let ok = relation.len() == expect
                        && relation
                            .rows
                            .iter()
                            .map(|r| {
                                r.iter()
                                    .map(galois_relational::Value::render)
                                    .collect::<Vec<_>>()
                            })
                            .all(|row| admitted.binary_search(&row).is_ok());
                    (full.len(), ok)
                }
            };
            OperatorOutcome {
                id: q.id,
                family: q.family,
                truth_rows,
                result_rows: relation.len(),
                passed,
                stats,
            }
        })
        .collect();
    OperatorRun {
        model: model_name,
        outcomes,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Prompt/latency distribution over a run (paper §5: "GPT-3 takes ∼20
/// seconds to execute a query (∼110 batched prompts per query).
/// Distributions for these metrics are skewed").
#[derive(Debug, Clone, Copy)]
pub struct TimingSummary {
    /// Mean prompts per query.
    pub mean_prompts: f64,
    /// Median prompts per query.
    pub median_prompts: f64,
    /// 90th-percentile prompts per query.
    pub p90_prompts: f64,
    /// Mean virtual seconds per query.
    pub mean_seconds: f64,
    /// Median virtual seconds per query.
    pub median_seconds: f64,
    /// 90th-percentile virtual seconds.
    pub p90_seconds: f64,
}

/// Summarises the prompt/latency distribution of a run.
pub fn timing_summary(run: &GaloisRun) -> TimingSummary {
    let mut prompts: Vec<f64> = run
        .outcomes
        .iter()
        .map(|o| o.stats.total_prompts() as f64)
        .collect();
    let mut seconds: Vec<f64> = run
        .outcomes
        .iter()
        .map(|o| o.stats.virtual_seconds())
        .collect();
    prompts.sort_by(f64::total_cmp);
    seconds.sort_by(f64::total_cmp);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let pct = |v: &[f64], p: f64| {
        if v.is_empty() {
            0.0
        } else {
            v[((v.len() - 1) as f64 * p).round() as usize]
        }
    };
    TimingSummary {
        mean_prompts: mean(&prompts),
        median_prompts: pct(&prompts, 0.5),
        p90_prompts: pct(&prompts, 0.9),
        mean_seconds: mean(&seconds),
        median_seconds: pct(&seconds, 0.5),
        p90_seconds: pct(&seconds, 0.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> Scenario {
        // Smaller world keeps harness tests quick while exercising every
        // query shape.
        Scenario::generate_with(
            42,
            galois_dataset::WorldConfig {
                countries: 8,
                cities: 20,
                airports: 10,
                singers: 10,
                concerts: 12,
                employees: 15,
            },
        )
    }

    #[test]
    fn oracle_run_is_nearly_perfect() {
        let s = small_scenario();
        let run = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        assert_eq!(run.outcomes.len(), 46);
        let diff = run.average_cardinality_diff();
        assert!(diff.abs() < 2.0, "oracle diff {diff}");
        let all = run.content_score(None);
        assert!(all > 0.95, "oracle content {all}");
    }

    #[test]
    fn noisy_model_is_worse_than_oracle() {
        let s = small_scenario();
        let oracle = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let flan = run_galois_suite(&s, ModelProfile::flan(), GaloisOptions::default());
        assert!(flan.average_cardinality_diff() < oracle.average_cardinality_diff() - 10.0);
        assert!(flan.content_score(None) < oracle.content_score(None));
    }

    #[test]
    fn baseline_run_produces_scores() {
        let s = small_scenario();
        let run = run_baseline_suite(&s, ModelProfile::oracle(), BaselineKind::Plain);
        assert_eq!(run.outcomes.len(), 46);
        let all = run.content_score(None);
        assert!(all > 0.5, "oracle QA score {all}");
    }

    #[test]
    fn timing_summary_is_consistent() {
        let s = small_scenario();
        let run = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let t = timing_summary(&run);
        assert!(t.mean_prompts > 1.0);
        assert!(t.p90_prompts >= t.median_prompts);
        assert!(t.mean_seconds > 0.0);
    }

    #[test]
    fn table1_has_all_models() {
        let s = small_scenario();
        let (table, values) = table1(&s, &[ModelProfile::oracle()]);
        assert_eq!(values.len(), 1);
        assert!(table.render().contains("oracle"));
    }

    #[test]
    fn parallel_harness_reports_are_byte_identical() {
        let s = small_scenario();
        let (seq_t1, _) = table1(&s, &[ModelProfile::oracle(), ModelProfile::flan()]);
        let (par_t1, _) = table1_parallel(&s, &[ModelProfile::oracle(), ModelProfile::flan()], 4);
        assert_eq!(seq_t1.render(), par_t1.render());
        let seq_t2 = table2(&s, ModelProfile::chatgpt()).render();
        let par_t2 = table2_parallel(&s, ModelProfile::chatgpt(), 4).render();
        assert_eq!(seq_t2, par_t2);
    }

    #[test]
    fn parallel_harness_preserves_suite_totals() {
        let s = small_scenario();
        let seq = run_galois_suite(&s, ModelProfile::chatgpt(), GaloisOptions::default());
        let par =
            run_galois_suite_parallel(&s, ModelProfile::chatgpt(), GaloisOptions::default(), 8);
        let a = suite_totals(&seq, 1);
        let b = suite_totals(&par, 1);
        // Prompt volume, cache-hit totals and serial virtual time are
        // interleaving-independent; only per-query *attribution* of
        // cross-query cache hits may shift.
        assert_eq!(a.prompts, b.prompts);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.serial_virtual_ms, b.serial_virtual_ms);
        for (x, y) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.result_rows, y.result_rows);
            assert_eq!(x.stats.total_prompts(), y.stats.total_prompts());
            assert_eq!(x.matching.score(), y.matching.score());
        }
    }

    #[test]
    fn operator_families_are_exact_on_the_oracle() {
        let s = small_scenario();
        let run = run_operator_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        assert!(run.outcomes.len() >= 16);
        for o in &run.outcomes {
            assert!(o.passed, "op{} ({:?}) failed its check", o.id, o.family);
        }
        assert_eq!(run.pass_rate(None), 1.0);
        let text = run.render();
        for label in ["LLM ⋈ LLM", "LLM ⋈ stored", "Group/Agg", "Limit"] {
            assert!(text.contains(label), "{text}");
        }
        // The widened surface holds under the full engine stack too:
        // streaming, grid fusion and LIMIT-aware early termination.
        let stacked = run_operator_suite(
            &s,
            ModelProfile::oracle(),
            GaloisOptions {
                pipeline: galois_core::Pipeline::Streaming,
                prompt_batch: galois_core::PromptBatch::Grid { keys: 8, attrs: 2 },
                parallelism: galois_llm::Parallelism::new(4),
                early_stop: galois_core::EarlyStop::Limit,
                ..Default::default()
            },
        );
        assert_eq!(stacked.pass_rate(None), 1.0, "\n{}", stacked.render());
    }

    #[test]
    fn cost_based_planner_is_cheaper_suite_wide() {
        let s = small_scenario();
        let heuristic = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let cost_based = run_galois_suite(
            &s,
            ModelProfile::oracle(),
            GaloisOptions {
                planner: galois_core::Planner::CostBased,
                ..Default::default()
            },
        );
        // Identical relations (the planner only reshapes the prompt
        // schedule), strictly cheaper accounting.
        assert_eq!(
            heuristic.content_score(None),
            cost_based.content_score(None)
        );
        assert_eq!(
            heuristic.average_cardinality_diff(),
            cost_based.average_cardinality_diff()
        );
        let h = suite_totals(&heuristic, 1);
        let c = suite_totals(&cost_based, 1);
        assert!(c.prompts < h.prompts, "{} vs {}", c.prompts, h.prompts);
        assert!(
            c.virtual_ms < h.virtual_ms,
            "{} vs {}",
            c.virtual_ms,
            h.virtual_ms
        );
    }

    #[test]
    fn batched_suite_is_cheaper_with_identical_scores() {
        let s = small_scenario();
        let off = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let batched = run_galois_suite(
            &s,
            ModelProfile::oracle(),
            GaloisOptions {
                prompt_batch: galois_core::PromptBatch::Keys(10),
                ..Default::default()
            },
        );
        // Identical result relations (batching only reshapes the prompt
        // schedule on a noise-free model), strictly cheaper accounting.
        assert_eq!(off.content_score(None), batched.content_score(None));
        assert_eq!(
            off.average_cardinality_diff(),
            batched.average_cardinality_diff()
        );
        let a = suite_totals(&off, 1);
        let b = suite_totals(&batched, 1);
        assert!(b.prompts < a.prompts, "{} vs {}", b.prompts, a.prompts);
        assert!(
            b.virtual_ms < a.virtual_ms,
            "{} vs {}",
            b.virtual_ms,
            a.virtual_ms
        );
    }

    #[test]
    fn phase_breakdown_accounts_for_the_sequential_clock() {
        let s = small_scenario();
        let run = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let t = suite_totals(&run, 1);
        assert!(t.list_virtual_ms > 0);
        assert!(t.fetch_virtual_ms > 0);
        // At Parallelism(1) each query's wave phases sum to its virtual
        // clock, so the suite phases sum to the serial total exactly.
        assert_eq!(
            t.list_virtual_ms + t.filter_virtual_ms + t.fetch_virtual_ms,
            t.serial_virtual_ms
        );
    }

    #[test]
    fn pipelined_suite_matches_batched_accounting_with_lower_makespan() {
        let s = small_scenario();
        let lanes = 8;
        let batched = GaloisOptions {
            parallelism: galois_llm::Parallelism::new(lanes),
            planner: galois_core::Planner::CostBased,
            prompt_batch: galois_core::PromptBatch::Keys(10),
            ..Default::default()
        };
        let pipelined = GaloisOptions {
            pipeline: galois_core::Pipeline::Streaming,
            ..batched.clone()
        };
        // One harness thread keeps cross-query cache interleaving
        // deterministic, so the totals compare exactly.
        let a = run_galois_suite_parallel(&s, ModelProfile::oracle(), batched, 1);
        let b = run_galois_suite_parallel(&s, ModelProfile::oracle(), pipelined, 1);
        assert_eq!(a.content_score(None), b.content_score(None));
        assert_eq!(a.average_cardinality_diff(), b.average_cardinality_diff());
        let at = suite_totals(&a, lanes);
        let bt = suite_totals(&b, lanes);
        // Streaming issues exactly the wave pipeline's prompts …
        assert_eq!(at.prompts, bt.prompts);
        assert_eq!(at.cache_hits, bt.cache_hits);
        // … but stops idling at the phase barriers.
        assert!(
            bt.virtual_ms < at.virtual_ms,
            "pipelined {} vs batched {}",
            bt.virtual_ms,
            at.virtual_ms
        );
    }

    #[test]
    fn scheduled_suite_is_virtually_faster() {
        let s = small_scenario();
        let lanes = 8;
        let sequential = run_galois_suite(&s, ModelProfile::oracle(), GaloisOptions::default());
        let scheduled = run_galois_suite_parallel(
            &s,
            ModelProfile::oracle(),
            GaloisOptions {
                parallelism: galois_llm::Parallelism::new(lanes),
                ..Default::default()
            },
            lanes,
        );
        let before = suite_totals(&sequential, 1);
        let after = suite_totals(&scheduled, lanes);
        assert_eq!(before.virtual_ms, before.serial_virtual_ms);
        assert!(
            after.virtual_ms * 4 <= before.virtual_ms,
            "expected ≥4× lower suite virtual time: {} vs {}",
            before.virtual_ms,
            after.virtual_ms
        );
    }
}
