//! # galois-eval
//!
//! Evaluation metrics and suite harness for the Galois reproduction
//! (["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472),
//! EDBT 2024, §5 "Evaluation").
//!
//! Two measurements, matching the paper's two analysis dimensions:
//!
//! 1. **Cardinality** ([`cardinality`]) — `f = 2·|R_D| / (|R_D|+|R_M|)`
//!    reported as the difference `1 − f` in % (Table 1);
//! 2. **Content** ([`matching`]) — greedy tuple mapping then cell-value
//!    matching with the paper's 5% numeric tolerance (Table 2).
//!
//! [`harness`] wires the metrics to the 46-query suite across models and
//! methods (`R_M`, `T_M`, `T_C_M`), regenerating the paper's tables.

#![warn(missing_docs)]

pub mod cardinality;
pub mod concurrent;
pub mod harness;
pub mod matching;
pub mod report;

pub use cardinality::{average_diff, cardinality_diff_percent, cardinality_ratio};
pub use concurrent::{run_suite_concurrent, run_suite_concurrent_on, ConcurrentSuiteRun};
pub use harness::{
    model_for, run_baseline_suite, run_baseline_suite_parallel, run_galois_suite,
    run_galois_suite_on, run_galois_suite_parallel, run_operator_suite, suite_totals, table1,
    table1_parallel, table2, table2_parallel, timing_summary, BaselineOutcome, BaselineRun,
    GaloisRun, OperatorOutcome, OperatorRun, QueryOutcome, SuiteTotals, Table2, TimingSummary,
};
pub use matching::{cell_matches, match_records, relation_to_records, MatchOutcome};
pub use report::{percent0, signed1, TextTable};
