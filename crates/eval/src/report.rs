//! Plain-text table rendering for experiment reports.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{c:<w$}"));
                } else {
                    line.push_str(&format!("  {c:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with one decimal and an explicit sign, the way the
/// paper prints Table 1 ("-47.4", "+1.0").
pub fn signed1(v: f64) -> String {
    if v >= 0.0 {
        format!("+{v:.1}")
    } else {
        format!("{v:.1}")
    }
}

/// Formats a 0–1 score as a whole-number percentage (Table 2 style).
pub fn percent0(v: f64) -> String {
    format!("{:.0}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["model", "diff"]);
        t.row(vec!["flan".into(), "-47.4".into()]);
        t.row(vec!["chatgpt".into(), "-19.5".into()]);
        let s = t.render();
        assert!(s.contains("model"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(signed1(1.04), "+1.0");
        assert_eq!(signed1(-47.42), "-47.4");
        assert_eq!(percent0(0.801), "80");
    }
}
