//! The cardinality metric of Table 1.
//!
//! The paper measures how close the Galois output size is to ground truth
//! with `f = 2·|R_D| / (|R_D| + |R_M|)` (best is `f = 1`) and reports the
//! difference `1 − f` as a percentage, "averaged over all queries with
//! non-empty results".

/// `f = 2·|R_D| / (|R_D| + |R_M|)`, in `[0, 2]`.
pub fn cardinality_ratio(truth_rows: usize, result_rows: usize) -> f64 {
    if truth_rows + result_rows == 0 {
        return 1.0; // both empty: perfectly matched
    }
    2.0 * truth_rows as f64 / (truth_rows + result_rows) as f64
}

/// The paper's reported quantity: `(1 − f) · 100` (% of `|R_D|`; closer to
/// 0 is better, negative = too few rows).
pub fn cardinality_diff_percent(truth_rows: usize, result_rows: usize) -> f64 {
    (1.0 - cardinality_ratio(truth_rows, result_rows)) * 100.0
}

/// Averages the diff over queries, skipping empty results the way the
/// paper does. Returns `(average, used, skipped)`.
pub fn average_diff(pairs: &[(usize, usize)]) -> (f64, usize, usize) {
    let mut sum = 0.0;
    let mut used = 0usize;
    let mut skipped = 0usize;
    for &(truth, result) in pairs {
        if result == 0 {
            skipped += 1;
            continue;
        }
        sum += cardinality_diff_percent(truth, result);
        used += 1;
    }
    if used == 0 {
        (0.0, 0, skipped)
    } else {
        (sum / used as f64, used, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_zero() {
        assert_eq!(cardinality_diff_percent(10, 10), 0.0);
        assert!((cardinality_ratio(10, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example() {
        // Paper §5: |R_D| = 3, |R_M| = 1 → f = 6/4 = 1.5.
        assert!((cardinality_ratio(3, 1) - 1.5).abs() < 1e-12);
        assert!((cardinality_diff_percent(3, 1) - (-50.0)).abs() < 1e-12);
    }

    #[test]
    fn too_many_rows_is_positive() {
        assert!(cardinality_diff_percent(10, 12) > 0.0);
    }

    #[test]
    fn bounds() {
        assert_eq!(cardinality_diff_percent(10, 0), -100.0);
        assert!((cardinality_ratio(0, 10) - 0.0).abs() < 1e-12);
        assert_eq!(cardinality_ratio(0, 0), 1.0);
    }

    #[test]
    fn average_skips_empty_results() {
        let (avg, used, skipped) = average_diff(&[(10, 10), (10, 0), (3, 1)]);
        assert_eq!(used, 2);
        assert_eq!(skipped, 1);
        assert!((avg - (-25.0)).abs() < 1e-9);
    }

    #[test]
    fn average_of_nothing_is_zero() {
        let (avg, used, skipped) = average_diff(&[(5, 0)]);
        assert_eq!((avg, used, skipped), (0.0, 0, 1));
    }
}
