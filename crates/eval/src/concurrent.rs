//! Closed-loop concurrent suite harness over the cross-query scheduler.
//!
//! [`run_suite_concurrent`] replays the oracle-46 suite (or any
//! scenario's suite) at `N` concurrent closed-loop sessions over one
//! shared session — one `LlmClient`, sub-entry cache and key-universe
//! store — through [`galois_core::run_multi_query`]. Answers and prompt
//! accounting are those of a serial run by construction (the scheduler's
//! logical pass runs the queries in canonical suite order); the shared
//! lane pool decides only the clocks, which this harness summarises as
//! suite makespan, p50/p99 per-query virtual latency, queueing delay and
//! lane utilisation.

use std::time::Instant;

use galois_core::{run_multi_query, Galois, GaloisOptions};
use galois_dataset::Scenario;
use galois_llm::ModelProfile;

use crate::harness::{model_for, GaloisRun, QueryOutcome, SuiteTotals};
use crate::matching::{match_records, relation_to_records};

/// A concurrent suite replay: the per-query outcomes (matched to ground
/// truth, in suite order) plus the shared-pool clock summary.
#[derive(Debug, Clone)]
pub struct ConcurrentSuiteRun {
    /// The suite run — outcomes carry replay clocks in
    /// [`galois_core::QueryStats::virtual_ms`] /
    /// [`galois_core::QueryStats::queue_ms`].
    pub run: GaloisRun,
    /// Closed-loop sessions the suite was spread across.
    pub sessions: usize,
    /// Lanes in the shared pool.
    pub pool_lanes: usize,
    /// Virtual instant the last query finished — the suite makespan.
    pub makespan_ms: u64,
    /// Median per-query virtual latency (queueing + execution).
    pub p50_latency_ms: u64,
    /// 99th-percentile per-query virtual latency.
    pub p99_latency_ms: u64,
    /// Total admission-queue delay across the suite.
    pub total_queue_ms: u64,
    /// Fraction of the `pool_lanes × makespan` budget spent doing work.
    pub lane_utilisation: f64,
}

impl ConcurrentSuiteRun {
    /// Mean prompts per query over the suite.
    pub fn prompts_per_query(&self) -> f64 {
        if self.run.outcomes.is_empty() {
            return 0.0;
        }
        let prompts: usize = self
            .run
            .outcomes
            .iter()
            .map(|o| o.stats.total_prompts())
            .sum();
        prompts as f64 / self.run.outcomes.len() as f64
    }

    /// Folds the replay into [`SuiteTotals`], with the shared-pool
    /// makespan as the suite virtual time (the per-query clocks already
    /// embed the pool contention, so no further lane packing applies).
    pub fn totals(&self) -> SuiteTotals {
        SuiteTotals {
            prompts: self
                .run
                .outcomes
                .iter()
                .map(|o| o.stats.total_prompts())
                .sum(),
            cache_hits: self.run.outcomes.iter().map(|o| o.stats.cache_hits).sum(),
            serial_virtual_ms: self
                .run
                .outcomes
                .iter()
                .map(|o| o.stats.serial_virtual_ms)
                .sum(),
            virtual_ms: self.makespan_ms,
            list_virtual_ms: self
                .run
                .outcomes
                .iter()
                .map(|o| o.stats.list_virtual_ms)
                .sum(),
            filter_virtual_ms: self
                .run
                .outcomes
                .iter()
                .map(|o| o.stats.filter_virtual_ms)
                .sum(),
            fetch_virtual_ms: self
                .run
                .outcomes
                .iter()
                .map(|o| o.stats.fetch_virtual_ms)
                .sum(),
            wall_ms: self.run.wall_ms,
            queue_ms: self.total_queue_ms,
        }
    }
}

/// Runs the scenario's suite at `sessions` concurrent closed-loop
/// sessions over a fresh shared session built from `options`.
///
/// Queries are dealt round-robin (`query i` → `session i mod sessions`),
/// the admission policy comes from [`GaloisOptions::admission`] (the
/// default fair policy when the knob is off), and the options must select
/// [`Pipeline::Streaming`](galois_core::Pipeline::Streaming) — the wave
/// engine has no task trace to replay.
pub fn run_suite_concurrent(
    scenario: &Scenario,
    profile: ModelProfile,
    options: GaloisOptions,
    sessions: usize,
) -> galois_core::Result<ConcurrentSuiteRun> {
    let model_name = profile.name.clone();
    let model = model_for(scenario, profile);
    let galois = Galois::with_options(model, scenario.database.clone(), options);
    run_suite_concurrent_on(scenario, &galois, &model_name, sessions)
}

/// [`run_suite_concurrent`] over an *existing* shared session, so callers
/// can replay repeatedly against warm session state.
pub fn run_suite_concurrent_on(
    scenario: &Scenario,
    galois: &Galois,
    model_name: &str,
    sessions: usize,
) -> galois_core::Result<ConcurrentSuiteRun> {
    let started = Instant::now();
    let sessions = sessions.max(1);
    let sqls: Vec<String> = scenario.suite.iter().map(|spec| spec.to_sql()).collect();
    let queries: Vec<&str> = sqls.iter().map(String::as_str).collect();
    let session_of: Vec<usize> = (0..queries.len()).map(|i| i % sessions).collect();
    let policy = galois.options().admission.policy().unwrap_or_default();
    let report = run_multi_query(galois, &queries, &session_of, &policy)?;

    let outcomes: Vec<QueryOutcome> = scenario
        .suite
        .iter()
        .zip(&report.outcomes)
        .map(|(spec, out)| {
            let truth = scenario
                .database
                .execute(&spec.to_sql())
                .expect("suite queries execute on ground truth");
            let relation = &out.result.relation;
            let matching = match_records(&truth, &relation_to_records(relation));
            QueryOutcome {
                id: spec.id,
                category: spec.category,
                truth_rows: truth.len(),
                result_rows: relation.len(),
                cardinality_diff: crate::cardinality::cardinality_diff_percent(
                    truth.len(),
                    relation.len(),
                ),
                matching,
                stats: out.result.stats,
            }
        })
        .collect();

    Ok(ConcurrentSuiteRun {
        run: GaloisRun {
            model: model_name.to_string(),
            outcomes,
            wall_ms: started.elapsed().as_millis() as u64,
        },
        sessions,
        pool_lanes: report.pool_lanes,
        makespan_ms: report.makespan_ms,
        p50_latency_ms: report.p50_latency_ms(),
        p99_latency_ms: report.p99_latency_ms(),
        total_queue_ms: report.total_queue_ms,
        lane_utilisation: report.lane_utilisation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_galois_suite_parallel, suite_totals};
    use galois_core::{Admission, AdmissionPolicy, Parallelism, Pipeline, PromptBatch};

    fn small_scenario() -> Scenario {
        Scenario::generate_with(
            42,
            galois_dataset::WorldConfig {
                countries: 8,
                cities: 20,
                airports: 10,
                singers: 10,
                concerts: 12,
                employees: 15,
            },
        )
    }

    fn streaming_options() -> GaloisOptions {
        GaloisOptions {
            pipeline: Pipeline::Streaming,
            prompt_batch: PromptBatch::Keys(10),
            parallelism: Parallelism::new(8),
            ..Default::default()
        }
    }

    #[test]
    fn concurrent_suite_matches_serial_answers_and_beats_its_clock() {
        let s = small_scenario();
        let serial = run_galois_suite_parallel(&s, ModelProfile::oracle(), streaming_options(), 1);
        let concurrent =
            run_suite_concurrent(&s, ModelProfile::oracle(), streaming_options(), 8).unwrap();
        assert_eq!(concurrent.sessions, 8);
        assert_eq!(concurrent.pool_lanes, 64);
        assert_eq!(serial.outcomes.len(), concurrent.run.outcomes.len());
        for (a, b) in serial.outcomes.iter().zip(&concurrent.run.outcomes) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.result_rows, b.result_rows);
            assert_eq!(a.matching.score(), b.matching.score());
            assert_eq!(a.stats.total_prompts(), b.stats.total_prompts());
            assert_eq!(a.stats.cache_hits, b.stats.cache_hits);
        }
        let serial_sum: u64 = serial.outcomes.iter().map(|o| o.stats.virtual_ms).sum();
        assert!(
            concurrent.makespan_ms < serial_sum,
            "shared pool {} ms vs serial suite {} ms",
            concurrent.makespan_ms,
            serial_sum
        );
        assert!(concurrent.p50_latency_ms <= concurrent.p99_latency_ms);
        assert!(concurrent.p99_latency_ms <= concurrent.makespan_ms);
        assert!(concurrent.lane_utilisation > 0.0 && concurrent.lane_utilisation <= 1.0);
        // Default policy: unlimited admission, so nothing queues.
        assert_eq!(concurrent.total_queue_ms, 0);
        assert_eq!(concurrent.totals().queue_ms, 0);
    }

    #[test]
    fn inflight_cap_surfaces_queue_delay_in_totals() {
        let s = small_scenario();
        let options = GaloisOptions {
            admission: Admission::Fair(AdmissionPolicy {
                max_inflight: 2,
                ..Default::default()
            }),
            ..streaming_options()
        };
        let run = run_suite_concurrent(&s, ModelProfile::oracle(), options, 8).unwrap();
        assert!(run.total_queue_ms > 0);
        let totals = run.totals();
        assert_eq!(totals.queue_ms, run.total_queue_ms);
        assert!(run.prompts_per_query() > 0.0);
        // Serial-harness totals agree on the interleaving-independent
        // accounting (prompt volume, cache hits, serial clock).
        let serial = run_galois_suite_parallel(&s, ModelProfile::oracle(), streaming_options(), 1);
        let st = suite_totals(&serial, 1);
        assert_eq!(totals.prompts, st.prompts);
        assert_eq!(totals.cache_hits, st.cache_hits);
        assert_eq!(totals.serial_virtual_ms, st.serial_virtual_ms);
    }

    #[test]
    fn one_session_concurrent_run_is_the_serial_suite() {
        let s = small_scenario();
        let serial = run_galois_suite_parallel(&s, ModelProfile::oracle(), streaming_options(), 1);
        let one = run_suite_concurrent(&s, ModelProfile::oracle(), streaming_options(), 1).unwrap();
        let serial_sum: u64 = serial.outcomes.iter().map(|o| o.stats.virtual_ms).sum();
        assert_eq!(one.makespan_ms, serial_sum);
        for (a, b) in serial.outcomes.iter().zip(&one.run.outcomes) {
            assert_eq!(a.stats.virtual_ms, b.stats.virtual_ms);
            assert_eq!(b.stats.queue_ms, 0);
        }
    }
}
