//! Property tests on the evaluation metrics.

use galois_eval::{cardinality_diff_percent, cardinality_ratio, match_records, MatchOutcome};
use galois_relational::{DataType, PlanColumn, PlanSchema, Relation, Value};
use proptest::prelude::*;

fn relation(rows: Vec<Vec<i64>>) -> Relation {
    let arity = rows.first().map(|r| r.len()).unwrap_or(1);
    Relation {
        schema: PlanSchema::new(
            (0..arity)
                .map(|i| PlanColumn::computed(format!("c{i}"), DataType::Int))
                .collect(),
        ),
        rows: rows
            .into_iter()
            .map(|r| r.into_iter().map(Value::Int).collect())
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f stays in [0, 2]; the diff stays in [-100, 100]; perfect match is 0.
    #[test]
    fn cardinality_bounds(truth in 0usize..1000, result in 0usize..1000) {
        let f = cardinality_ratio(truth, result);
        prop_assert!((0.0..=2.0).contains(&f));
        let d = cardinality_diff_percent(truth, result);
        prop_assert!((-100.0..=100.0).contains(&d));
        if truth == result {
            prop_assert!(d.abs() < 1e-9);
        }
        // Antisymmetry of sign: more rows → positive, fewer → negative.
        if result > truth {
            prop_assert!(d > 0.0);
        }
        if result < truth && result > 0 {
            prop_assert!(d < 0.0);
        }
    }

    /// Matching is bounded and monotone: matched cells never exceed either
    /// side, the score is in [0, 1], and matching a relation against its
    /// own rendering is perfect.
    #[test]
    fn matching_bounds(rows in prop::collection::vec(
        prop::collection::vec(-50i64..50, 2..4), 0..8)
    ) {
        // Make rows unique to sidestep duplicate-key ambiguity.
        let mut unique = rows;
        unique.sort();
        unique.dedup();
        let arity = unique.first().map(|r| r.len()).unwrap_or(2);
        let unique: Vec<Vec<i64>> = unique.into_iter().filter(|r| r.len() == arity).collect();

        let rel = relation(unique.clone());
        let records: Vec<Vec<String>> = unique
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        let outcome: MatchOutcome = match_records(&rel, &records);
        prop_assert!(outcome.matched_cells <= outcome.truth_cells);
        prop_assert!((0.0..=1.0).contains(&outcome.score()));
        prop_assert!((0.0..=1.0).contains(&outcome.precision()));
        // Self-match is perfect.
        prop_assert!((outcome.score() - 1.0).abs() < 1e-12);

        // Dropping rows can only lower the score.
        if records.len() > 1 {
            let partial = match_records(&rel, &records[..records.len() - 1]);
            prop_assert!(partial.score() <= outcome.score() + 1e-12);
        }
    }

    /// Shuffling candidate rows never changes the matched-cell count for
    /// exact candidates (greedy mapping finds the same perfect assignment).
    #[test]
    fn matching_is_order_insensitive_for_exact_rows(rows in prop::collection::vec(
        prop::collection::vec(-50i64..50, 2..3), 1..6)
    ) {
        let mut unique = rows;
        unique.sort();
        unique.dedup();
        let arity = unique.first().map(|r| r.len()).unwrap_or(2);
        let unique: Vec<Vec<i64>> = unique.into_iter().filter(|r| r.len() == arity).collect();
        prop_assume!(!unique.is_empty());

        let rel = relation(unique.clone());
        let forward: Vec<Vec<String>> = unique
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        prop_assert_eq!(
            match_records(&rel, &forward).matched_cells,
            match_records(&rel, &reversed).matched_cells
        );
    }
}
