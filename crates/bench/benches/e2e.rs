//! End-to-end benchmarks: a full Galois query (plan → prompts → parse →
//! clean → relational tail) per query class, plus the QA baseline path.
//! These are the macro-level numbers behind the reproduction tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::{BaselineKind, Galois, GaloisOptions, Parallelism, QaBaseline};
use galois_dataset::Scenario;
use galois_eval::model_for;
use galois_llm::ModelProfile;

fn bench_galois_queries(c: &mut Criterion) {
    let s = Scenario::generate(42);
    // One session per benchmark; the cache is cleared each iteration so
    // every sample pays the full retrieval cost.
    for (name, sql) in [
        (
            "e2e_selection",
            "SELECT name FROM city WHERE population > 1000000",
        ),
        ("e2e_aggregate", "SELECT COUNT(*) FROM city"),
        (
            "e2e_join",
            "SELECT p.name, r.birthDate FROM city p, cityMayor r WHERE p.mayor = r.name",
        ),
    ] {
        let galois = Galois::new(model_for(&s, ModelProfile::chatgpt()), s.database.clone());
        c.bench_function(name, |b| {
            b.iter(|| {
                galois.client().clear_cache();
                galois.execute(black_box(sql)).unwrap()
            })
        });
    }
}

/// The 10× world: same 46 query shapes over relations ten times larger,
/// so retrieval wall-clock is dominated by prompt volume — the regime the
/// scheduler's worker threads target. One sequential and one 8-way
/// scheduled session run the same query for a direct wall-clock A/B.
fn bench_galois_scaled_world(c: &mut Criterion) {
    let s = Scenario::generate_scaled(42, 10);
    let sql = "SELECT name, population FROM city WHERE elevation < 800";
    for (name, parallelism) in [("e2e_scaled10_seq", 1), ("e2e_scaled10_par8", 8)] {
        let galois = Galois::with_options(
            model_for(&s, ModelProfile::chatgpt()),
            s.database.clone(),
            GaloisOptions {
                parallelism: Parallelism::new(parallelism),
                ..Default::default()
            },
        );
        c.bench_function(name, |b| {
            b.iter(|| {
                galois.client().clear_cache();
                galois.execute(black_box(sql)).unwrap()
            })
        });
    }
}

fn bench_qa_baseline(c: &mut Criterion) {
    let s = Scenario::generate(42);
    let baseline = QaBaseline::new(model_for(&s, ModelProfile::chatgpt()));
    let question = s.suite[0].question();
    c.bench_function("e2e_qa_baseline", |b| {
        b.iter(|| baseline.ask(black_box(&question), BaselineKind::Plain))
    });
}

criterion_group!(
    benches,
    bench_galois_queries,
    bench_galois_scaled_world,
    bench_qa_baseline
);
criterion_main!(benches);
