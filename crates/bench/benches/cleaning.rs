//! Microbenchmarks for answer parsing and the cleaning/normalisation
//! stage — the hot path of workflow step (3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::clean::{clean_to_type, parse_number, CleaningPolicy};
use galois_core::parse::{extract_records, parse_list_answer};
use galois_relational::DataType;

fn bench_numbers(c: &mut Criterion) {
    let policy = CleaningPolicy::default();
    for (name, input) in [
        ("plain", "2800000"),
        ("thousands", "2,800,000"),
        ("spelled", "about 2.8 million"),
        ("suffix", "500k"),
    ] {
        c.bench_function(&format!("parse_number_{name}"), |b| {
            b.iter(|| parse_number(black_box(input), &policy))
        });
    }
    c.bench_function("clean_to_int", |b| {
        b.iter(|| clean_to_type(black_box("2.8 million"), DataType::Int, &policy))
    });
    c.bench_function("clean_to_date", |b| {
        b.iter(|| clean_to_type(black_box("May 8, 1961"), DataType::Date, &policy))
    });
}

fn bench_answers(c: &mut Criterion) {
    let list = "Sure! Here are some values: Rome, Paris, Milan, Naples, Turin, \
                Palermo, Genoa, Bologna, Florence, Bari, Catania, Venice.";
    c.bench_function("parse_list_answer", |b| {
        b.iter(|| parse_list_answer(black_box(list)))
    });
    let qa = "- Rome: 2,800,000\n- Paris: 2,100,000\n- Milan: 1,400,000\n- Naples: 960,000";
    c.bench_function("extract_records", |b| {
        b.iter(|| extract_records(black_box(qa)))
    });
}

criterion_group!(benches, bench_numbers, bench_answers);
criterion_main!(benches);
