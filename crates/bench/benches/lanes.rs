//! Microbenchmarks for the virtual-lane scheduler over 10k-item waves:
//! [`lane_schedule`] (min-scan below 32 lanes, binary heap at and above —
//! the measured crossover) against the pre-satellite per-item `O(lanes)`
//! min-scan applied unconditionally, plus the raw [`EventClock`] the
//! streaming pipeline drives. At 8 lanes the two match (both scan); at 64
//! lanes the heap's `O(log K)` lane lookup shows its win.
//!
//! The `lane_schedule_fresh_alloc_*` cases are the before/after pair for
//! the scratch-buffer reuse fix: the "before" reallocates the load vector
//! and heap on every call (the old heap-path behaviour), while
//! `lane_schedule` reuses thread-local scratch and an explicit
//! [`LaneScratch`] skips even the thread-local lookup. All three produce
//! bit-identical makespans; only the allocator traffic differs — visible
//! on the short per-batch waves the client accounts on every prompt
//! batch, not just the 10k-item extreme.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_llm::{lane_schedule, EventClock, LaneScratch};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic pseudo-random durations (xorshift), with plenty of ties.
fn durations(n: usize) -> Vec<u64> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 400
        })
        .collect()
}

/// The pre-heap formulation: scan every lane for the minimum load on each
/// item.
fn lane_schedule_min_scan(durations: &[u64], lanes: usize) -> u64 {
    let mut load = vec![0u64; lanes];
    for &d in durations {
        let min = (0..lanes)
            .min_by_key(|&i| load[i])
            .expect("at least one lane");
        load[min] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

/// The pre-fix formulation: same assignments and tie-breaks as
/// `lane_schedule`, but the load vector / heap are allocated fresh on
/// every call instead of reused from scratch buffers.
fn lane_schedule_fresh_alloc(durations: &[u64], lanes: usize) -> u64 {
    if lanes >= 32 {
        let mut free: BinaryHeap<Reverse<(u64, usize)>> =
            (0..lanes).map(|i| Reverse((0, i))).collect();
        let mut makespan = 0u64;
        for &d in durations {
            let Reverse((free_at, lane)) = free.pop().expect("at least one lane");
            let done = free_at + d;
            free.push(Reverse((done, lane)));
            makespan = makespan.max(done);
        }
        makespan
    } else {
        lane_schedule_min_scan(durations, lanes)
    }
}

fn bench_lane_schedule(c: &mut Criterion) {
    let wave = durations(10_000);
    for lanes in [8usize, 64] {
        c.bench_function(&format!("lane_schedule_10k_{lanes}lanes"), |b| {
            b.iter(|| lane_schedule(black_box(&wave).iter().copied(), lanes))
        });
        c.bench_function(&format!("lane_schedule_minscan_10k_{lanes}lanes"), |b| {
            b.iter(|| lane_schedule_min_scan(black_box(&wave), lanes))
        });
    }
}

/// Before/after for the scratch-buffer reuse fix, on the wave shape the
/// client actually accounts in steady state: a stream of small batches
/// (10 items, the default `PromptBatch::Keys(10)` width), where per-call
/// allocation dominates the arithmetic.
fn bench_lane_scratch_reuse(c: &mut Criterion) {
    let wave = durations(10_000);
    let batches: Vec<&[u64]> = wave.chunks(10).collect();
    for lanes in [8usize, 64] {
        c.bench_function(&format!("batchstream_fresh_alloc_{lanes}lanes"), |b| {
            b.iter(|| {
                batches
                    .iter()
                    .map(|batch| lane_schedule_fresh_alloc(black_box(batch), lanes))
                    .sum::<u64>()
            })
        });
        c.bench_function(&format!("batchstream_thread_local_{lanes}lanes"), |b| {
            b.iter(|| {
                batches
                    .iter()
                    .map(|batch| lane_schedule(black_box(batch).iter().copied(), lanes))
                    .sum::<u64>()
            })
        });
        c.bench_function(&format!("batchstream_explicit_scratch_{lanes}lanes"), |b| {
            let mut scratch = LaneScratch::new();
            b.iter(|| {
                batches
                    .iter()
                    .map(|batch| scratch.lane_schedule(black_box(batch).iter().copied(), lanes))
                    .sum::<u64>()
            })
        });
    }
}

fn bench_event_clock(c: &mut Criterion) {
    let wave = durations(10_000);
    c.bench_function("event_clock_10k_released_8lanes", |b| {
        b.iter(|| {
            let mut clock = EventClock::new(8);
            // Staggered releases, the streaming driver's shape.
            for (i, &d) in wave.iter().enumerate() {
                clock.schedule((i as u64) * 3, d);
            }
            clock.makespan()
        })
    });
}

criterion_group!(
    benches,
    bench_lane_schedule,
    bench_lane_scratch_reuse,
    bench_event_clock
);
criterion_main!(benches);
