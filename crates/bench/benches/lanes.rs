//! Microbenchmarks for the virtual-lane scheduler over 10k-item waves:
//! [`lane_schedule`] (min-scan below 32 lanes, binary heap at and above —
//! the measured crossover) against the pre-satellite per-item `O(lanes)`
//! min-scan applied unconditionally, plus the raw [`EventClock`] the
//! streaming pipeline drives. At 8 lanes the two match (both scan); at 64
//! lanes the heap's `O(log K)` lane lookup shows its win.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_llm::{lane_schedule, EventClock};

/// Deterministic pseudo-random durations (xorshift), with plenty of ties.
fn durations(n: usize) -> Vec<u64> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 400
        })
        .collect()
}

/// The pre-heap formulation: scan every lane for the minimum load on each
/// item.
fn lane_schedule_min_scan(durations: &[u64], lanes: usize) -> u64 {
    let mut load = vec![0u64; lanes];
    for &d in durations {
        let min = (0..lanes)
            .min_by_key(|&i| load[i])
            .expect("at least one lane");
        load[min] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

fn bench_lane_schedule(c: &mut Criterion) {
    let wave = durations(10_000);
    for lanes in [8usize, 64] {
        c.bench_function(&format!("lane_schedule_10k_{lanes}lanes"), |b| {
            b.iter(|| lane_schedule(black_box(&wave).iter().copied(), lanes))
        });
        c.bench_function(&format!("lane_schedule_minscan_10k_{lanes}lanes"), |b| {
            b.iter(|| lane_schedule_min_scan(black_box(&wave), lanes))
        });
    }
}

fn bench_event_clock(c: &mut Criterion) {
    let wave = durations(10_000);
    c.bench_function("event_clock_10k_released_8lanes", |b| {
        b.iter(|| {
            let mut clock = EventClock::new(8);
            // Staggered releases, the streaming driver's shape.
            for (i, &d) in wave.iter().enumerate() {
                clock.schedule((i as u64) * 3, d);
            }
            clock.makespan()
        })
    });
}

criterion_group!(benches, bench_lane_schedule, bench_event_clock);
criterion_main!(benches);
