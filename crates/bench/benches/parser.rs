//! Microbenchmarks for the SQL front-end: lexing and parsing throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_sql::{lexer::tokenize, parse};

const SIMPLE: &str = "SELECT name FROM city WHERE population > 1000000";
const COMPLEX: &str = "SELECT c.name, k.gdp, COUNT(*), AVG(c.population) \
    FROM city c, country k \
    WHERE c.country = k.name AND c.population BETWEEN 100000 AND 5000000 \
    AND c.name LIKE 'S%' AND k.continent IN ('Euralia', 'Meridia') \
    GROUP BY c.name, k.gdp HAVING COUNT(*) > 1 \
    ORDER BY AVG(c.population) DESC, c.name LIMIT 10";

fn bench_lexer(c: &mut Criterion) {
    c.bench_function("lex_simple", |b| {
        b.iter(|| tokenize(black_box(SIMPLE)).unwrap())
    });
    c.bench_function("lex_complex", |b| {
        b.iter(|| tokenize(black_box(COMPLEX)).unwrap())
    });
}

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_simple", |b| {
        b.iter(|| parse(black_box(SIMPLE)).unwrap())
    });
    c.bench_function("parse_complex", |b| {
        b.iter(|| parse(black_box(COMPLEX)).unwrap())
    });
    // Round-trip: parse → print → parse (canonical printer throughput).
    c.bench_function("roundtrip_complex", |b| {
        let stmt = parse(COMPLEX).unwrap();
        b.iter(|| parse(&black_box(&stmt).to_string()).unwrap())
    });
}

criterion_group!(benches, bench_lexer, bench_parser);
criterion_main!(benches);
