//! Microbenchmarks for the relational engine: planning and the physical
//! operators over the ground-truth corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_dataset::Scenario;

fn bench_planning(c: &mut Criterion) {
    let s = Scenario::generate(42);
    let sql = "SELECT c.name, k.gdp FROM city c, country k \
               WHERE c.country = k.name AND c.population > 500000 ORDER BY k.gdp DESC";
    c.bench_function("plan_join_query", |b| {
        b.iter(|| s.database.plan(black_box(sql)).unwrap())
    });
}

fn bench_execution(c: &mut Criterion) {
    let s = Scenario::generate(42);
    c.bench_function("exec_filter_scan", |b| {
        b.iter(|| {
            s.database
                .execute(black_box("SELECT name FROM city WHERE population > 500000"))
                .unwrap()
        })
    });
    c.bench_function("exec_hash_join", |b| {
        b.iter(|| {
            s.database
                .execute(black_box(
                    "SELECT c.name, k.gdp FROM city c, country k WHERE c.country = k.name",
                ))
                .unwrap()
        })
    });
    c.bench_function("exec_group_aggregate", |b| {
        b.iter(|| {
            s.database
                .execute(black_box(
                    "SELECT country, COUNT(*), AVG(population) FROM city GROUP BY country",
                ))
                .unwrap()
        })
    });
    c.bench_function("exec_sort_limit", |b| {
        b.iter(|| {
            s.database
                .execute(black_box(
                    "SELECT name FROM city ORDER BY population DESC LIMIT 5",
                ))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_planning, bench_execution);
criterion_main!(benches);
