//! Microbenchmarks for the batched-cell hot path.
//!
//! Every key of every retrieval cell builds a sub-entry signature for the
//! client's per-key extraction cache. The session precomputes each cell's
//! signature *prefix* once and appends only the key onto a reused buffer;
//! `cell_sig_prefixed` vs `cell_sig_naive_format` measures that win with
//! the pre-satellite formulation reconstructed literally (the full
//! table/attribute preamble re-formatted per key). The end-to-end bench
//! drives the real session: a repeated batched query's filter/fetch
//! phases are served entirely from sub-entries, so the run is dominated
//! by per-key signature building and cache extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::{Galois, GaloisOptions, PromptBatch};
use galois_dataset::Scenario;
use galois_llm::{ModelProfile, SimLlm};
use std::sync::Arc;

fn bench_signature_building(c: &mut Criterion) {
    let keys: Vec<String> = (0..10_000).map(|i| format!("City{i}")).collect();
    let (table, key_attr, attribute) = ("city", "name", "population");

    c.bench_function("cell_sig_prefixed_10k", |b| {
        b.iter(|| {
            let prefix = format!("fetch\u{1f}{table}\u{1f}{key_attr}\u{1f}{attribute}\u{1f}");
            let mut sig = String::new();
            let mut total = 0usize;
            for key in &keys {
                sig.clear();
                sig.push_str(&prefix);
                sig.push_str(key);
                total += black_box(&sig).len();
            }
            total
        })
    });

    // The pre-satellite formulation: the whole signature re-formatted for
    // every key.
    c.bench_function("cell_sig_naive_format_10k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for key in &keys {
                let sig = format!("fetch\u{1f}{table}\u{1f}{key_attr}\u{1f}{attribute}\u{1f}{key}");
                total += black_box(&sig).len();
            }
            total
        })
    });
}

fn bench_batched_cell_extraction(c: &mut Criterion) {
    let scenario = Scenario::generate(42);
    let session = Galois::with_options(
        Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        )),
        scenario.database.clone(),
        GaloisOptions {
            prompt_batch: PromptBatch::Keys(10),
            ..Default::default()
        },
    );
    let sql = "SELECT name, population FROM city WHERE elevation < 100";
    // Warm the sub-entry store: every later run's filter/fetch phase is
    // pure per-key signature building + extraction.
    session.execute(sql).expect("warm-up run");

    c.bench_function("batched_cells_subentry_run", |b| {
        b.iter(|| session.execute(black_box(sql)).expect("cached run"))
    });
}

criterion_group!(
    benches,
    bench_signature_building,
    bench_batched_cell_extraction
);
criterion_main!(benches);
