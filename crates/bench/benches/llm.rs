//! Microbenchmarks for the simulated-LLM substrate: prompt round-trips and
//! the client cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::prompts::PromptBuilder;
use galois_dataset::Scenario;
use galois_eval::model_for;
use galois_llm::intent::TaskIntent;
use galois_llm::{LlmClient, ModelProfile};

fn bench_completion(c: &mut Criterion) {
    let s = Scenario::generate(42);
    let model = model_for(&s, ModelProfile::chatgpt());
    let builder = PromptBuilder::for_model("chatgpt");
    let list_prompt = builder.task(&TaskIntent::ListKeys {
        relation: "city".into(),
        key_attr: "name".into(),
        condition: None,
        exclude: std::sync::Arc::new(vec![]),
    });
    let fetch_prompt = builder.task(&TaskIntent::FetchAttr {
        relation: "city".into(),
        key_attr: "name".into(),
        key: s.world.cities[0].name.clone(),
        attribute: "population".into(),
    });

    c.bench_function("sim_list_keys", |b| {
        b.iter(|| model.complete(black_box(&list_prompt)))
    });
    c.bench_function("sim_fetch_attr", |b| {
        b.iter(|| model.complete(black_box(&fetch_prompt)))
    });

    let qa_prompt = builder.question(&s.suite[0].question());
    c.bench_function("sim_qa_question", |b| {
        b.iter(|| model.complete(black_box(&qa_prompt)))
    });
}

fn bench_client_cache(c: &mut Criterion) {
    let s = Scenario::generate(42);
    let model = model_for(&s, ModelProfile::chatgpt());
    let builder = PromptBuilder::for_model("chatgpt");
    let prompt = builder.task(&TaskIntent::FetchAttr {
        relation: "city".into(),
        key_attr: "name".into(),
        key: s.world.cities[0].name.clone(),
        attribute: "population".into(),
    });
    let client = LlmClient::new(model);
    client.complete(&prompt); // warm the cache
    c.bench_function("client_cache_hit", |b| {
        b.iter(|| client.complete(black_box(&prompt)))
    });
}

criterion_group!(benches, bench_completion, bench_client_cache);
criterion_main!(benches);
