//! Microbenchmarks for prompt construction: the hot-path `PromptBuilder`
//! (whose static `"{preamble}\nQ: "` prefix is precomputed per builder —
//! `prompt_task_prebuilt` vs `prompt_task_naive_format` measures that win)
//! and the multi-key batched rendering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::prompts::{PromptBuilder, FIGURE4_PREAMBLE};
use galois_llm::intent::{render_task, TaskIntent};

fn fetch_intent() -> TaskIntent {
    TaskIntent::FetchAttr {
        relation: "city".into(),
        key_attr: "name".into(),
        key: "Rome".into(),
        attribute: "population".into(),
    }
}

fn bench_prompt_builder(c: &mut Criterion) {
    let builder = PromptBuilder::for_model("chatgpt");
    let intent = fetch_intent();

    c.bench_function("prompt_task_prebuilt", |b| {
        b.iter(|| builder.task(black_box(&intent)))
    });

    // The pre-satellite formulation, reconstructed literally: re-format
    // the full static preamble on every call.
    c.bench_function("prompt_task_naive_format", |b| {
        b.iter(|| {
            format!(
                "{}\nQ: {}\nA:",
                FIGURE4_PREAMBLE,
                render_task(black_box(&intent))
            )
        })
    });

    c.bench_function("prompt_question_prebuilt", |b| {
        b.iter(|| builder.question(black_box("What is the capital of France?")))
    });
}

fn bench_batched_rendering(c: &mut Criterion) {
    let builder = PromptBuilder::for_model("chatgpt");
    let keys: Vec<String> = (0..25).map(|i| format!("City{i}")).collect();
    let batched = TaskIntent::FetchAttrBatch {
        relation: "city".into(),
        key_attr: "name".into(),
        keys,
        attribute: "population".into(),
    };
    c.bench_function("prompt_task_batched_25", |b| {
        b.iter(|| builder.task(black_box(&batched)))
    });
}

/// The fetch-path per-cell render hoist: building one prompt per key for
/// the same (relation, key attribute, attribute) cell. "before" rebuilds
/// the full intent and re-renders the preamble/question framing per key;
/// "after" renders through the hoisted [`galois_core::prompts::FetchTemplate`]
/// — the table/attribute framing is formatted once and each key costs one
/// exact-size concatenation.
fn bench_fetch_render_hoist(c: &mut Criterion) {
    let builder = PromptBuilder::for_model("chatgpt");
    let keys: Vec<String> = (0..25).map(|i| format!("City{i}")).collect();

    c.bench_function("fetch_render_per_key_intent_25", |b| {
        b.iter(|| {
            keys.iter()
                .map(|key| {
                    builder.task(&TaskIntent::FetchAttr {
                        relation: "city".into(),
                        key_attr: "name".into(),
                        key: black_box(key).clone(),
                        attribute: "population".into(),
                    })
                })
                .collect::<Vec<String>>()
        })
    });

    c.bench_function("fetch_render_hoisted_template_25", |b| {
        b.iter(|| {
            let template = builder.fetch_template("city", "name", "population");
            keys.iter()
                .map(|key| template.render(black_box(key)))
                .collect::<Vec<String>>()
        })
    });
}

criterion_group!(
    benches,
    bench_prompt_builder,
    bench_batched_rendering,
    bench_fetch_render_hoist
);
criterion_main!(benches);
