//! Microbenchmarks for prompt construction: the hot-path `PromptBuilder`
//! (whose static `"{preamble}\nQ: "` prefix is precomputed per builder —
//! `prompt_task_prebuilt` vs `prompt_task_naive_format` measures that win)
//! and the multi-key batched rendering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois_core::prompts::{PromptBuilder, FIGURE4_PREAMBLE};
use galois_llm::intent::{render_task, TaskIntent};

fn fetch_intent() -> TaskIntent {
    TaskIntent::FetchAttr {
        relation: "city".into(),
        key_attr: "name".into(),
        key: "Rome".into(),
        attribute: "population".into(),
    }
}

fn bench_prompt_builder(c: &mut Criterion) {
    let builder = PromptBuilder::for_model("chatgpt");
    let intent = fetch_intent();

    c.bench_function("prompt_task_prebuilt", |b| {
        b.iter(|| builder.task(black_box(&intent)))
    });

    // The pre-satellite formulation, reconstructed literally: re-format
    // the full static preamble on every call.
    c.bench_function("prompt_task_naive_format", |b| {
        b.iter(|| {
            format!(
                "{}\nQ: {}\nA:",
                FIGURE4_PREAMBLE,
                render_task(black_box(&intent))
            )
        })
    });

    c.bench_function("prompt_question_prebuilt", |b| {
        b.iter(|| builder.question(black_box("What is the capital of France?")))
    });
}

fn bench_batched_rendering(c: &mut Criterion) {
    let builder = PromptBuilder::for_model("chatgpt");
    let keys: Vec<String> = (0..25).map(|i| format!("City{i}")).collect();
    let batched = TaskIntent::FetchAttrBatch {
        relation: "city".into(),
        key_attr: "name".into(),
        keys,
        attribute: "population".into(),
    };
    c.bench_function("prompt_task_batched_25", |b| {
        b.iter(|| builder.task(black_box(&batched)))
    });
}

criterion_group!(benches, bench_prompt_builder, bench_batched_rendering);
criterion_main!(benches);
