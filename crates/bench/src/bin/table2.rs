//! Reproduces **Table 2**: cell value matches (%) between the result
//! returned by a method and the same query executed on ground truth, for
//! the 46 queries, averaged on ChatGPT.
//!
//! Paper reference values:
//!
//! ```text
//!                         All  Selections  Aggregates  Joins only
//! R_M   (SQL queries)      50          80          29           0
//! T_M   (NL questions)     44          71          20           8
//! T_C_M (NL quest.+CoT)    41          71          13           0
//! ```

use galois_bench::{seed_from_args, threads_from_args};
use galois_dataset::Scenario;
use galois_eval::table2_parallel;
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let threads = threads_from_args();
    let scenario = Scenario::generate(seed);
    println!("Table 2 — cell value matches %, ChatGPT (seed {seed}, 46 queries)\n");
    let t = table2_parallel(&scenario, ModelProfile::chatgpt(), threads);
    println!("{}", t.render());
}
