//! Ablation **A9**: fault injection × retry policy — the resilience sweep.
//!
//! Runs the full 46-query oracle suite with the default (sequential)
//! engine configuration over a [`FaultyLlm`]-wrapped oracle, sweeping the
//! fault rate (`{0.1, 0.2, 0.5}`) against three retry policies: `off`
//! (`Resilience::Off` — graceful degradation is the only defence),
//! `retry 1` (a single re-ask, below the fault injector's consecutive-
//! failure cap, so some cells still exhaust), and `retry 4` (the default
//! [`RetryPolicy`], whose budget dominates the cap). Truncated faults are
//! excluded (`truncated_weight: 0`): they corrupt answers instead of
//! marking them, so rows under `off` would be silently wrong rather than
//! degraded — the marker-detectable kinds keep the sweep's row counts
//! meaningful across every policy.
//!
//! The table ties the fully-retried rows to the fault-free baseline and
//! separates the weaker policies on retries, breaker fast-fails, failed
//! cells, and the virtual clock (backoff is billed). The binary asserts
//! the headline equivalence in-line: under the default policy, **every**
//! fault rate must reproduce the clean run's row count, prompt bill (net
//! of retries) and cache hits exactly, with zero failed cells — this is
//! the same property CI checks on the `galois_faulty_retry` row of
//! `BENCH_e2e.json`.
//!
//! Usage: `ablation_faults [--seed 42]`.

use galois_bench::{detectable_fault_profile, seed_from_args};
use galois_core::{Galois, GaloisOptions, Resilience, RetryPolicy};
use galois_dataset::Scenario;
use galois_eval::TextTable;
use galois_llm::{FaultyLlm, LanguageModel, ModelProfile, SimLlm};
use std::sync::Arc;

#[derive(Default)]
struct Measure {
    rows: usize,
    prompts: usize,
    cache_hits: usize,
    retries: usize,
    timeouts: usize,
    rate_limited: usize,
    breaker_fastfails: usize,
    failed_cells: usize,
    virtual_ms: u64,
}

/// One full suite pass on a fresh session over `model`, with the default
/// engine options plus the given resilience knob. Fresh sessions (and
/// fresh `FaultyLlm` wrappers at the call sites) keep every cell's fault
/// schedule starting from attempt zero, so rows are comparable.
fn measure(scenario: &Scenario, model: Arc<dyn LanguageModel>, resilience: Resilience) -> Measure {
    let session = Galois::with_options(
        model,
        scenario.database.clone(),
        GaloisOptions {
            resilience,
            ..Default::default()
        },
    );
    let mut m = Measure::default();
    for spec in &scenario.suite {
        let result = session
            .execute(&spec.to_sql())
            .expect("suite query executes");
        m.rows += result.relation.len();
        m.prompts += result.stats.total_prompts();
        m.cache_hits += result.stats.cache_hits;
        m.retries += result.stats.retries;
        m.timeouts += result.stats.timeouts;
        m.rate_limited += result.stats.rate_limited;
        m.breaker_fastfails += result.stats.breaker_fastfails;
        m.failed_cells += result.stats.failed_cells;
        m.virtual_ms += result.stats.virtual_ms;
    }
    m
}

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    let oracle = || {
        Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        ))
    };
    println!(
        "Ablation A9 — fault injection x retry policy (46-query oracle suite, seed {seed}, \
         sequential engine, marker-detectable faults only)\n"
    );

    let clean = measure(&scenario, oracle(), Resilience::Off);

    let policies: [(&str, Resilience); 3] = [
        ("off", Resilience::Off),
        (
            "retry 1",
            Resilience::On(RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            }),
        ),
        ("retry 4", Resilience::On(RetryPolicy::default())),
    ];
    let rates = [0.1f64, 0.2, 0.5];

    let mut t = TextTable::new(&[
        "fault rate",
        "policy",
        "rows",
        "prompts",
        "cache hits",
        "retries",
        "timeouts",
        "rate-ltd",
        "fastfails",
        "failed cells",
        "virtual ms",
    ]);
    t.row(vec![
        "0.0".to_string(),
        "(clean)".to_string(),
        clean.rows.to_string(),
        clean.prompts.to_string(),
        clean.cache_hits.to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        clean.virtual_ms.to_string(),
    ]);
    for rate in rates {
        for (label, resilience) in policies {
            let model = Arc::new(FaultyLlm::new(oracle(), detectable_fault_profile(rate)));
            let m = measure(&scenario, model, resilience);
            if label == "retry 4" {
                // The headline property: a retry budget that dominates the
                // injector's consecutive-failure cap absorbs the entire
                // schedule — the suite is the fault-free suite, at any
                // fault rate, with only the virtual clock grown.
                assert_eq!(m.rows, clean.rows, "rows must tie clean at rate {rate}");
                assert_eq!(
                    m.prompts, clean.prompts,
                    "prompt bill net of retries must tie clean at rate {rate}"
                );
                assert_eq!(
                    m.cache_hits, clean.cache_hits,
                    "cache hits must tie clean at rate {rate}"
                );
                assert_eq!(m.failed_cells, 0, "no cell may exhaust at rate {rate}");
                assert!(m.virtual_ms > clean.virtual_ms, "backoff must be billed");
            }
            t.row(vec![
                format!("{rate}"),
                label.to_string(),
                m.rows.to_string(),
                m.prompts.to_string(),
                m.cache_hits.to_string(),
                m.retries.to_string(),
                m.timeouts.to_string(),
                m.rate_limited.to_string(),
                m.breaker_fastfails.to_string(),
                m.failed_cells.to_string(),
                m.virtual_ms.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(expected: every `retry 4` row ties the clean row on rows/prompts/cache hits with zero \
         failed cells — asserted above; `off` rows lose cells outright, `retry 1` rows absorb \
         single faults but exhaust on longer streaks, and billed backoff grows the virtual clock \
         with the fault rate)"
    );
}
