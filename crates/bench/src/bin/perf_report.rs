//! Emits `BENCH_e2e.json`: end-to-end prompt/latency accounting for the
//! 46-query oracle suite, before and after the concurrent prompt
//! scheduler.
//!
//! Methods reported:
//!
//! * `galois_sequential` — `Parallelism(1)`, one harness thread: the
//!   pre-scheduler numbers (`virtual_ms == serial_virtual_ms`);
//! * `galois_scheduled` — `Parallelism(K)` request lanes inside every
//!   query *and* `K` concurrent query streams across the suite, with the
//!   default heuristic planner;
//! * `galois_cost_planner` — same concurrency, but plans chosen by the
//!   cost-based prompt-aware planner (`Planner::CostBased`): identical
//!   relations, fewer prompts, lower virtual time;
//! * `galois_batched` — the cost-planner configuration plus multi-key
//!   prompt batching (`PromptBatch::Keys(B)`, default `B = 10`): each
//!   filter/fetch cell issues `ceil(keys / B)` fused prompts instead of
//!   `keys`, with identical relations on the oracle;
//! * `galois_pipelined` — the batched configuration plus
//!   `Pipeline::Streaming`: the same prompts, but keys flow through
//!   filter/fetch micro-batches under the event-driven clock instead of
//!   waiting at the phase barriers;
//! * `galois_listcached_cold` / `galois_listcached_warm` — the pipelined
//!   configuration plus the shared key-universe store
//!   (`ListStore::On`), run as **two suite passes on one session**: the
//!   cold pass pages every concept's key universe (speculatively, across
//!   the lanes) and stores it; the warm pass reads every universe back at
//!   zero list-prompt cost, collapsing the list-phase virtual floor. The
//!   cold pass runs on **one harness thread** so its row is exactly
//!   reproducible — with `K` query threads its prompt total wobbled a few
//!   prompts between runs (racing queries re-ask in-flight keys), which
//!   made the row disagree with the 1-thread `listcached_parity` object
//!   (e.g. 182 vs 174). The method row and the parity object are now the
//!   same measurement, and the method row is the authoritative one; the
//!   warm pass still runs across `K` streams (deterministic regardless —
//!   everything is cached);
//! * `galois_grid_fused` — the listcached-cold configuration with
//!   `PromptBatch::Grid { keys: B, attrs: A }` (default `A = 6`, wide
//!   enough to cover every table's non-key width; `--grid-keys` overrides
//!   `B`, defaulting to `--batch`): one prompt asks up to `A` attributes
//!   for up to `B` keys, cutting the fetch phase from `C × ⌈keys/B⌉` to
//!   `⌈C/A⌉ × ⌈keys/B⌉` prompts per step, and speculative pad columns
//!   seed the sub-entry store so later queries on the same table fetch
//!   at zero prompt cost. One harness thread keeps the row exactly
//!   reproducible;
//! * `galois_limit_streaming` / `galois_limit_unlimited` — the operator
//!   suite's LIMIT family over a widened world (a 120-key `city` concept,
//!   10-key list pages) through the streaming grid-fused stack. The
//!   `limit_streaming` row runs the LIMIT queries with
//!   `EarlyStop::Limit`: once confirmed survivors cover the window, list
//!   paging is cancelled and the remaining filter/fetch micro-batches are
//!   pruned. The `limit_unlimited` row runs the same queries' *unlimited*
//!   forms on the same stack — the prompt gap is what LIMIT-aware early
//!   termination buys. One harness thread keeps both rows exactly
//!   reproducible;
//! * `galois_faulty_retry` — the sequential configuration re-run over a
//!   [`FaultyLlm`]-wrapped oracle failing ~20 % of all prompts
//!   (deterministically; truncated faults excluded so every fault is
//!   marker-detectable), with `Resilience::On(RetryPolicy::default())`.
//!   The retry budget dominates the injector's consecutive-failure cap,
//!   so the row must tie `galois_sequential` **exactly** on prompts (net
//!   of retries) and cache hits — CI asserts this — while its virtual
//!   clock carries the billed retry/backoff overhead. One harness thread
//!   keeps the row exactly reproducible;
//! * `galois_multiquery` — the grid-fused stack replayed at `--sessions`
//!   (default 16) concurrent closed-loop sessions over one **shared lane
//!   pool** (`sessions × K` lanes) through the cross-query scheduler,
//!   with `max_inflight` admission (default 14, two below the session
//!   count) so queueing delay is exercised without serialising the
//!   suite. Queries execute logically in canonical suite order (answers
//!   and prompt accounting tie the serial stack bit for bit — the
//!   determinism battery pins this), then their task traces replay on
//!   the shared pool, overlapping one query's list-bound tail with
//!   another's filter/fetch work. The row's `virtual_ms` is the suite
//!   **makespan**, CI-asserted strictly below `galois_grid_fused`'s, and
//!   it alone carries `sessions` / `pool_lanes` / `p50_latency_ms` /
//!   `p99_latency_ms` / `lane_utilisation` fields;
//! * `qa_baseline` / `qa_cot_baseline` — the paper's `T_M` and `T_C_M`
//!   one-prompt-per-question methods, across `K` streams.
//!
//! Every Galois row also carries a per-phase virtual-time breakdown
//! (`list_virtual_ms` / `filter_virtual_ms` / `fetch_virtual_ms`) so the
//! remaining time can be located per protocol phase.
//!
//! Method rows share one uniform schema (see `crates/bench/README.md`):
//! `parallelism` is always the session's request-lane count `K` from the
//! row's `GaloisOptions`, `threads` is always the harness worker-thread
//! count the suite was driven with, and `queue_ms` (admission-queue
//! delay) is present on every row — zero everywhere except
//! `galois_multiquery`.
//!
//! The `pipeline_parity` object holds the batched-vs-pipelined
//! prompt/cache-hit comparison re-run on **one** harness thread. With `K`
//! real query threads, concurrently-running queries race on the shared
//! per-key sub-entry store: `cache_hits` are counted by signature (never
//! by arrival order) and so stay deterministic, but a racing query
//! re-asks in-flight keys, so the main rows' *prompt* totals can still
//! wobble by a few prompts between runs — the single-threaded pair is
//! exactly reproducible on every field, which is what CI asserts equality
//! on. The `listcached_parity` object plays the same role for the
//! `K`-thread listcached rows: the same cold/warm passes re-run on one
//! harness thread (a fresh store session).
//!
//! Usage: `perf_report [--seed 42] [--parallelism 8] [--batch 10]
//! [--grid-attrs 6] [--grid-keys 10] [--sessions 16] [--inflight 14]
//! [--out BENCH_e2e.json]`.

use galois_bench::{
    batched_options as batched_stack, cost_planned_options, detectable_fault_profile,
    grid_stack_options, lanes_from_args, parsed_flag, pipelined_options as pipelined_stack,
    seed_from_args, string_flag,
};
use galois_core::{
    Admission, AdmissionPolicy, BaselineKind, Galois, GaloisOptions, ListStore, Parallelism,
    Pipeline, PromptBatch, Resilience, RetryPolicy,
};
use galois_dataset::Scenario;
use galois_eval::{
    model_for, run_baseline_suite_parallel, run_galois_suite_on, run_galois_suite_parallel,
    run_suite_concurrent, suite_totals, BaselineRun, ConcurrentSuiteRun, SuiteTotals,
};
use galois_llm::{lane_schedule, FaultyLlm, ModelProfile};

/// One method's row in the JSON report. Every row carries the same flat
/// schema (documented in `crates/bench/README.md`); the multi-query row
/// appends its scheduling fields via `extra`.
struct MethodReport {
    name: &'static str,
    parallelism: usize,
    threads: usize,
    totals: SuiteTotals,
    extra: String,
}

impl MethodReport {
    /// A row whose `parallelism` is derived from the options the run
    /// actually used — the one place the metadata convention lives.
    fn of(
        name: &'static str,
        options: &GaloisOptions,
        threads: usize,
        totals: SuiteTotals,
    ) -> Self {
        MethodReport {
            name,
            parallelism: options.parallelism.get(),
            threads,
            totals,
            extra: String::new(),
        }
    }

    fn to_json(&self) -> String {
        // Phase keys stay flat (no nested object) so line-oriented drift
        // checks keep matching one brace pair per method row.
        format!(
            "    \"{}\": {{ \"parallelism\": {}, \"threads\": {}, \"virtual_ms\": {}, \
             \"serial_virtual_ms\": {}, \"wall_ms\": {}, \"prompts\": {}, \"cache_hits\": {}, \
             \"list_virtual_ms\": {}, \"filter_virtual_ms\": {}, \"fetch_virtual_ms\": {}, \
             \"queue_ms\": {}{} }}",
            self.name,
            self.parallelism,
            self.threads,
            self.totals.virtual_ms,
            self.totals.serial_virtual_ms,
            self.totals.wall_ms,
            self.totals.prompts,
            self.totals.cache_hits,
            self.totals.list_virtual_ms,
            self.totals.filter_virtual_ms,
            self.totals.fetch_virtual_ms,
            self.totals.queue_ms,
            self.extra,
        )
    }
}

/// The multi-query row: the uniform schema plus the shared-pool fields.
fn multiquery_report(options: &GaloisOptions, concurrent: &ConcurrentSuiteRun) -> MethodReport {
    let mut row = MethodReport::of("galois_multiquery", options, 1, concurrent.totals());
    row.extra = format!(
        ", \"sessions\": {}, \"pool_lanes\": {}, \"p50_latency_ms\": {}, \
         \"p99_latency_ms\": {}, \"lane_utilisation\": {:.3}",
        concurrent.sessions,
        concurrent.pool_lanes,
        concurrent.p50_latency_ms,
        concurrent.p99_latency_ms,
        concurrent.lane_utilisation,
    );
    row
}

fn baseline_totals(run: &BaselineRun, lanes: usize) -> SuiteTotals {
    SuiteTotals {
        prompts: run.outcomes.len(),
        cache_hits: 0,
        serial_virtual_ms: run.outcomes.iter().map(|o| o.virtual_ms).sum(),
        virtual_ms: lane_schedule(run.outcomes.iter().map(|o| o.virtual_ms), lanes),
        // QA baselines answer each question with one prompt: there are no
        // retrieval phases to attribute, and nothing queues.
        list_virtual_ms: 0,
        filter_virtual_ms: 0,
        fetch_virtual_ms: 0,
        wall_ms: run.wall_ms,
        queue_ms: 0,
    }
}

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let out = string_flag("--out").unwrap_or_else(|| "BENCH_e2e.json".to_string());
    let scenario = Scenario::generate(seed);

    let sequential_options = GaloisOptions::default();
    let sequential = run_galois_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        sequential_options.clone(),
        1,
    );
    let scheduled_options = GaloisOptions {
        parallelism: Parallelism::new(lanes),
        ..Default::default()
    };
    let scheduled = run_galois_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        scheduled_options.clone(),
        lanes,
    );
    let cost_planner_options = cost_planned_options(lanes);
    let cost_planned = run_galois_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        cost_planner_options.clone(),
        lanes,
    );
    let batch = parsed_flag::<usize>("--batch").unwrap_or(10).max(1);
    let batched_options = batched_stack(lanes, batch);
    let pipelined_options = pipelined_stack(lanes, batch);
    let batched = run_galois_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        batched_options.clone(),
        lanes,
    );
    let pipelined = run_galois_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        pipelined_options.clone(),
        lanes,
    );
    // The parity pair re-runs both configurations on one harness thread:
    // exactly reproducible totals for CI's equality assertions (the
    // K-thread rows race on the shared sub-entry store across queries).
    let parity_batched = suite_totals(
        &run_galois_suite_parallel(
            &scenario,
            ModelProfile::oracle(),
            batched_options.clone(),
            1,
        ),
        lanes,
    );
    let parity_pipelined = suite_totals(
        &run_galois_suite_parallel(
            &scenario,
            ModelProfile::oracle(),
            pipelined_options.clone(),
            1,
        ),
        lanes,
    );
    // The listcached pair: one session with the key-universe store on,
    // the suite run twice, across the full K harness threads (store
    // totals are thread-count-deterministic since the shared-store PR;
    // the prompt totals can wobble like the other K-thread rows, which is
    // why CI asserts equality on the 1-thread parity pair below).
    let store_options = GaloisOptions {
        list_store: ListStore::On,
        ..pipelined_options.clone()
    };
    let store_profile = ModelProfile::oracle();
    let store_session = Galois::with_options(
        model_for(&scenario, store_profile.clone()),
        scenario.database.clone(),
        store_options.clone(),
    );
    // One harness thread for the cold pass: its row is authoritative and
    // must equal the listcached_parity object exactly (see the module
    // docs for the old K-thread wobble).
    let listcached_cold = run_galois_suite_on(&scenario, &store_session, &store_profile.name, 1);
    let listcached_warm =
        run_galois_suite_on(&scenario, &store_session, &store_profile.name, lanes);
    // The 1-thread listcached parity pair: a fresh store session, both
    // passes exactly reproducible on every field.
    let parity_store_session = Galois::with_options(
        model_for(&scenario, store_profile.clone()),
        scenario.database.clone(),
        store_options.clone(),
    );
    let parity_listcached_cold = suite_totals(
        &run_galois_suite_on(&scenario, &parity_store_session, &store_profile.name, 1),
        lanes,
    );
    let parity_listcached_warm = suite_totals(
        &run_galois_suite_on(&scenario, &parity_store_session, &store_profile.name, 1),
        lanes,
    );
    // The grid-fused row: the listcached-cold configuration with
    // multi-attribute grid prompting. One harness thread keeps it exactly
    // reproducible; the lanes still drive the per-query dataflow.
    let grid_attrs = parsed_flag::<usize>("--grid-attrs").unwrap_or(6).max(1);
    let grid_keys = parsed_flag::<usize>("--grid-keys").unwrap_or(batch).max(1);
    let grid_options = grid_stack_options(lanes, grid_keys, grid_attrs);
    let grid_session = Galois::with_options(
        model_for(&scenario, store_profile.clone()),
        scenario.database.clone(),
        grid_options.clone(),
    );
    let grid_fused = run_galois_suite_on(&scenario, &grid_session, &store_profile.name, 1);

    // The cross-query scheduling row: the grid-fused stack replayed at
    // `--sessions` concurrent closed-loop sessions over one shared
    // `sessions × K`-lane pool, with a finite admission window so
    // queueing delay is exercised. The logical pass runs the suite once
    // in canonical order (answers and prompt accounting tie the serial
    // grid stack), so the row is exactly reproducible.
    let sessions = parsed_flag::<usize>("--sessions").unwrap_or(16).max(1);
    let inflight = parsed_flag::<usize>("--inflight").unwrap_or(14);
    let multiquery_options = GaloisOptions {
        admission: Admission::Fair(AdmissionPolicy {
            max_inflight: inflight,
            ..Default::default()
        }),
        ..grid_stack_options(lanes, grid_keys, grid_attrs)
    };
    let multiquery = run_suite_concurrent(
        &scenario,
        ModelProfile::oracle(),
        multiquery_options.clone(),
        sessions,
    )
    .expect("the grid stack streams, so its traces replay");

    // The LIMIT-aware early-termination pair: the operator suite's LIMIT
    // family over a widened world whose `city` concept spans 120 keys,
    // with 10-key list pages so there is paging to cancel. Both rows run
    // the streaming grid-fused stack on one harness thread; only the
    // early-stop knob (and the LIMIT clause itself) differs.
    let wide = Scenario::generate_with(
        seed,
        galois_dataset::WorldConfig {
            cities: 120,
            ..Default::default()
        },
    );
    let paged_oracle = ModelProfile {
        list_page_size: 10,
        ..ModelProfile::oracle()
    };
    let limit_queries: Vec<galois_dataset::OperatorQuery> =
        galois_dataset::build_operator_suite(&wide.world)
            .into_iter()
            .filter(|q| matches!(q.family, galois_dataset::OperatorFamily::Limit))
            .collect();
    let limit_options = |early_stop| GaloisOptions {
        parallelism: Parallelism::new(lanes),
        pipeline: Pipeline::Streaming,
        prompt_batch: PromptBatch::Grid {
            keys: grid_keys,
            attrs: grid_attrs,
        },
        early_stop,
        ..Default::default()
    };
    let run_limit_family =
        |options: GaloisOptions, sql_of: &dyn Fn(&galois_dataset::OperatorQuery) -> String| {
            let session = Galois::with_options(
                std::sync::Arc::new(galois_llm::SimLlm::new(
                    wide.knowledge.clone(),
                    paged_oracle.clone(),
                )),
                wide.database.clone(),
                options,
            );
            let started = std::time::Instant::now();
            let stats: Vec<_> = limit_queries
                .iter()
                .map(|q| {
                    session
                        .execute(&sql_of(q))
                        .expect("limit bench query")
                        .stats
                })
                .collect();
            SuiteTotals {
                prompts: stats.iter().map(|s| s.total_prompts()).sum(),
                cache_hits: stats.iter().map(|s| s.cache_hits).sum(),
                serial_virtual_ms: stats.iter().map(|s| s.serial_virtual_ms).sum(),
                virtual_ms: lane_schedule(stats.iter().map(|s| s.virtual_ms), 1),
                list_virtual_ms: stats.iter().map(|s| s.list_virtual_ms).sum(),
                filter_virtual_ms: stats.iter().map(|s| s.filter_virtual_ms).sum(),
                fetch_virtual_ms: stats.iter().map(|s| s.fetch_virtual_ms).sum(),
                wall_ms: started.elapsed().as_millis() as u64,
                queue_ms: 0,
            }
        };
    let limit_streaming = run_limit_family(limit_options(galois_core::EarlyStop::Limit), &|q| {
        q.sql.clone()
    });
    let limit_unlimited = run_limit_family(
        limit_options(galois_core::EarlyStop::Off),
        &|q| match &q.check {
            galois_dataset::OperatorCheck::Window { unlimited_sql, .. } => unlimited_sql.clone(),
            galois_dataset::OperatorCheck::Exact => match q.sql.find(" LIMIT ") {
                Some(i) => q.sql[..i].to_string(),
                None => q.sql.clone(),
            },
        },
    );

    // The fault-injected resilience row: the sequential configuration
    // over a deterministically faulty oracle (20 % of prompts fail with
    // marker-detectable faults; truncated answers excluded so every fault
    // is caught by the retry loop rather than parsed), absorbed by the
    // default retry policy. One harness thread; the row must tie the
    // galois_sequential row exactly on prompts and cache hits.
    let faulty_options = GaloisOptions {
        resilience: Resilience::On(RetryPolicy::default()),
        ..Default::default()
    };
    let faulty_session = Galois::with_options(
        std::sync::Arc::new(FaultyLlm::new(
            model_for(&scenario, ModelProfile::oracle()),
            detectable_fault_profile(0.2),
        )),
        scenario.database.clone(),
        faulty_options.clone(),
    );
    let faulty_retry = run_galois_suite_on(&scenario, &faulty_session, &store_profile.name, 1);

    let qa = run_baseline_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        BaselineKind::Plain,
        lanes,
    );
    let cot = run_baseline_suite_parallel(
        &scenario,
        ModelProfile::oracle(),
        BaselineKind::ChainOfThought,
        lanes,
    );

    // Every Galois row derives its `parallelism` from the options the run
    // actually used and names the harness thread count explicitly — one
    // uniform metadata convention (see `crates/bench/README.md`).
    let limit_streaming_options = limit_options(galois_core::EarlyStop::Limit);
    let methods = [
        MethodReport::of(
            "galois_sequential",
            &sequential_options,
            1,
            suite_totals(&sequential, 1),
        ),
        MethodReport::of(
            "galois_scheduled",
            &scheduled_options,
            lanes,
            suite_totals(&scheduled, lanes),
        ),
        MethodReport::of(
            "galois_cost_planner",
            &cost_planner_options,
            lanes,
            suite_totals(&cost_planned, lanes),
        ),
        MethodReport::of(
            "galois_batched",
            &batched_options,
            lanes,
            suite_totals(&batched, lanes),
        ),
        MethodReport::of(
            "galois_pipelined",
            &pipelined_options,
            lanes,
            suite_totals(&pipelined, lanes),
        ),
        MethodReport::of(
            "galois_listcached_cold",
            &store_options,
            1,
            suite_totals(&listcached_cold, lanes),
        ),
        MethodReport::of(
            "galois_listcached_warm",
            &store_options,
            lanes,
            suite_totals(&listcached_warm, lanes),
        ),
        MethodReport::of(
            "galois_grid_fused",
            &grid_options,
            1,
            suite_totals(&grid_fused, lanes),
        ),
        MethodReport::of(
            "galois_limit_streaming",
            &limit_streaming_options,
            1,
            limit_streaming,
        ),
        MethodReport::of(
            "galois_limit_unlimited",
            &limit_streaming_options,
            1,
            limit_unlimited,
        ),
        MethodReport::of(
            "galois_faulty_retry",
            &faulty_options,
            1,
            suite_totals(&faulty_retry, 1),
        ),
        multiquery_report(&multiquery_options, &multiquery),
        MethodReport {
            name: "qa_baseline",
            parallelism: lanes,
            threads: lanes,
            totals: baseline_totals(&qa, lanes),
            extra: String::new(),
        },
        MethodReport {
            name: "qa_cot_baseline",
            parallelism: lanes,
            threads: lanes,
            totals: baseline_totals(&cot, lanes),
            extra: String::new(),
        },
    ];

    let before = methods[0].totals.virtual_ms;
    let after = methods[1].totals.virtual_ms.max(1);
    let speedup = before as f64 / after as f64;
    let planned = methods[2].totals.virtual_ms.max(1);
    let planner_speedup = after as f64 / planned as f64;
    let batched_ms = methods[3].totals.virtual_ms.max(1);
    let batch_speedup = planned as f64 / batched_ms as f64;
    let pipelined_ms = methods[4].totals.virtual_ms.max(1);
    let pipeline_speedup = batched_ms as f64 / pipelined_ms as f64;
    let cold_ms = methods[5].totals.virtual_ms.max(1);
    let warm_ms = methods[6].totals.virtual_ms.max(1);
    let warm_speedup = cold_ms as f64 / warm_ms as f64;
    let grid_ms = methods[7].totals.virtual_ms.max(1);

    let parity_row = |name: &str, t: &SuiteTotals| {
        format!(
            "    \"{name}\": {{ \"threads\": 1, \"prompts\": {}, \"cache_hits\": {}, \
             \"virtual_ms\": {} }}",
            t.prompts, t.cache_hits, t.virtual_ms,
        )
    };
    let rows: Vec<String> = methods.iter().map(MethodReport::to_json).collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"suite\": \"oracle-46\",\n  \"parallelism\": {lanes},\n  \
         \"methods\": {{\n{}\n  }},\n  \"pipeline_parity\": {{\n{},\n{}\n  }},\n  \
         \"listcached_parity\": {{\n{},\n{}\n  }},\n  \
         \"virtual_speedup\": {speedup:.2}\n}}\n",
        rows.join(",\n"),
        parity_row("galois_batched", &parity_batched),
        parity_row("galois_pipelined", &parity_pipelined),
        parity_row("galois_listcached_cold", &parity_listcached_cold),
        parity_row("galois_listcached_warm", &parity_listcached_warm),
    );
    std::fs::write(&out, &json).expect("write report");

    println!("wrote {out}");
    println!(
        "suite virtual time: {} ms sequential -> {} ms scheduled ({speedup:.1}x, {} lanes)",
        before, after, lanes
    );
    println!(
        "cost-based planner: {} ms scheduled-heuristic -> {} ms ({planner_speedup:.2}x)",
        after, planned
    );
    println!(
        "multi-key batching (B={batch}): {} ms cost-planner -> {} ms ({batch_speedup:.2}x)",
        planned, batched_ms
    );
    println!(
        "streaming pipeline: {} ms batched-waves -> {} ms ({pipeline_speedup:.2}x)",
        batched_ms, pipelined_ms
    );
    println!(
        "key-universe store: {} ms cold -> {} ms warm ({warm_speedup:.1}x, \
         list phase {} -> {} ms)",
        cold_ms, warm_ms, methods[5].totals.list_virtual_ms, methods[6].totals.list_virtual_ms
    );
    println!(
        "grid fusion (B={grid_keys} x A={grid_attrs}): {} prompts / {} ms cold -> {} prompts / \
         {grid_ms} ms (fetch phase {} -> {} ms)",
        methods[5].totals.prompts,
        cold_ms,
        methods[7].totals.prompts,
        methods[5].totals.fetch_virtual_ms,
        methods[7].totals.fetch_virtual_ms,
    );
    println!(
        "limit early stop (LIMIT family, 120-key concept): {} prompts unlimited -> {} prompts \
         with LIMIT windows ({} -> {} list prompts' worth of virtual list time)",
        methods[9].totals.prompts,
        methods[8].totals.prompts,
        methods[9].totals.list_virtual_ms,
        methods[8].totals.list_virtual_ms,
    );
    let faulty_retries: usize = faulty_retry.outcomes.iter().map(|o| o.stats.retries).sum();
    println!(
        "fault injection (rate 0.2, default retry policy): {} prompts / {} cache hits \
         (sequential row: {} / {}), {} retries absorbed, virtual time {} -> {} ms",
        methods[10].totals.prompts,
        methods[10].totals.cache_hits,
        methods[0].totals.prompts,
        methods[0].totals.cache_hits,
        faulty_retries,
        methods[0].totals.virtual_ms,
        methods[10].totals.virtual_ms,
    );
    println!(
        "cross-query scheduling ({} sessions, {} shared lanes, in-flight cap {inflight}): suite makespan \
         {} ms vs {grid_ms} ms serial grid suite ({:.1}x), per-query latency p50 {} / p99 {} ms, \
         queue delay {} ms total, pool utilisation {:.0}%",
        multiquery.sessions,
        multiquery.pool_lanes,
        multiquery.makespan_ms,
        grid_ms as f64 / multiquery.makespan_ms.max(1) as f64,
        multiquery.p50_latency_ms,
        multiquery.p99_latency_ms,
        multiquery.total_queue_ms,
        multiquery.lane_utilisation * 100.0,
    );
    for m in &methods {
        println!(
            "  {:<18} prompts {:>5}  cache_hits {:>5}  virtual {:>7} ms  wall {:>5} ms  \
             (list {} / filter {} / fetch {})",
            m.name,
            m.totals.prompts,
            m.totals.cache_hits,
            m.totals.virtual_ms,
            m.totals.wall_ms,
            m.totals.list_virtual_ms,
            m.totals.filter_virtual_ms,
            m.totals.fetch_virtual_ms,
        );
    }
}
