//! §6 "Portability" experiment: "As SQL queries are portable across DB
//! engines, the same SQL script executes on different LLMs. … However,
//! the same prompt does not give equivalent results across LLMs."
//!
//! Runs three representative queries on all four model profiles and
//! reports pairwise Jaccard similarity of the returned key sets — a
//! quantified version of the paper's observation.

use galois_bench::seed_from_args;
use galois_core::Galois;
use galois_dataset::Scenario;
use galois_eval::{model_for, TextTable};
use galois_llm::ModelProfile;
use std::collections::HashSet;

fn key_set(scenario: &Scenario, profile: ModelProfile, sql: &str) -> HashSet<String> {
    let galois = Galois::new(model_for(scenario, profile), scenario.database.clone());
    galois
        .execute(sql)
        .map(|r| {
            r.relation
                .rows
                .iter()
                .map(|row| row[0].render().to_ascii_lowercase())
                .collect()
        })
        .unwrap_or_default()
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    println!("§6 Portability — same SQL, different LLMs (seed {seed})");
    println!("cell = Jaccard similarity of returned key sets (1.0 = identical)\n");

    for (label, sql) in [
        ("unfiltered scan", "SELECT name FROM city"),
        (
            "selection",
            "SELECT name FROM city WHERE population > 1000000",
        ),
        (
            "filtered countries",
            "SELECT name FROM country WHERE gdp > 2.0",
        ),
    ] {
        println!("== {label}: {sql}");
        let profiles = ModelProfile::all();
        let sets: Vec<(String, HashSet<String>)> = profiles
            .iter()
            .map(|p| (p.name.clone(), key_set(&scenario, p.clone(), sql)))
            .collect();
        let mut headers: Vec<&str> = vec!["model"];
        for (name, _) in &sets {
            headers.push(name);
        }
        let mut t = TextTable::new(&headers);
        for (name_a, set_a) in &sets {
            let mut row = vec![name_a.clone()];
            for (_, set_b) in &sets {
                row.push(format!("{:.2}", jaccard(set_a, set_b)));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("(expected: well off the diagonal from 1.0 — SQL is portable,");
    println!(" LLM answers are not)");
}
