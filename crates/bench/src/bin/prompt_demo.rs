//! Reproduces **Figure 4**: the few-shot prompt sent to GPT-style models,
//! plus the operator question lines generated for each physical operator.

use galois_core::prompts::PromptBuilder;
use galois_llm::intent::{CmpOp, Condition, PromptValue, TaskIntent};

/// The `Q:` line of a rendered prompt (the operator question itself).
fn question_line(prompt: &str) -> String {
    format!("Q: {}", galois_llm::intent::question_line(prompt))
}

fn main() {
    println!("Figure 4 — prompt construction\n");
    let builder = PromptBuilder::for_model("gpt3");

    let scan = TaskIntent::ListKeys {
        relation: "city".into(),
        key_attr: "name".into(),
        condition: None,
        exclude: std::sync::Arc::new(vec![]),
    };
    println!("=== base-relation access (key retrieval) ===");
    println!("{}\n", builder.task(&scan));

    let more = TaskIntent::ListKeys {
        relation: "city".into(),
        key_attr: "name".into(),
        condition: None,
        exclude: std::sync::Arc::new(vec!["New York City".into(), "Chicago".into()]),
    };
    println!("=== \"Return more results\" iteration ===");
    println!("{}\n", question_line(&builder.task(&more)));

    let fetch = TaskIntent::FetchAttr {
        relation: "city".into(),
        key_attr: "name".into(),
        key: "Chicago".into(),
        attribute: "mayor".into(),
    };
    println!("=== attribute retrieval (before join/projection) ===");
    println!("{}\n", question_line(&builder.task(&fetch)));

    let filter = TaskIntent::CheckFilter {
        relation: "city".into(),
        key_attr: "name".into(),
        key: "Chicago".into(),
        condition: Condition {
            attribute: "population".into(),
            op: CmpOp::Gt,
            values: vec![PromptValue::Number(1_000_000.0)],
        },
    };
    println!("=== selection operator (paper: \"Has city c.name more than 1M population?\") ===");
    println!("{}", question_line(&builder.task(&filter)));
}
