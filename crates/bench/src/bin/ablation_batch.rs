//! Ablation **A5**: the multi-key prompt batching factor.
//!
//! Runs the 46-query suite with `PromptBatch::Off` and with
//! `PromptBatch::Keys(B)` for `B ∈ {1, 2, 5, 10, 25}` (cost-based planner,
//! `--parallelism` lanes), reporting prompt volume, cache hits and the
//! virtual clocks. On the oracle profile every row returns identical
//! relations — batching only reshapes the prompt schedule — so the
//! accuracy column ties while the cost columns collapse roughly as
//! `ceil(keys / B)` per retrieval cell. `Keys(1)` isolates the multi-key
//! protocol's own overhead (same prompt *count* as Off, longer prompts);
//! large `B` exposes the diminishing returns once the per-prompt fixed
//! cost is amortised and answer volume dominates.
//!
//! Usage: `ablation_batch [--seed 42] [--parallelism 8] [--model oracle]`.

use galois_bench::{cost_planned_options, lanes_from_args, model_from_args, seed_from_args};
use galois_core::{GaloisOptions, PromptBatch};
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite_parallel, suite_totals, TextTable};

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let profile = model_from_args();
    let scenario = Scenario::generate(seed);
    println!(
        "Ablation A5 — multi-key prompt batching ({}, seed {seed}, {lanes} lanes, \
         cost-based planner)\n",
        profile.name
    );

    let mut t = TextTable::new(&[
        "batch",
        "prompts",
        "cache hits",
        "serial ms",
        "virtual ms",
        "content all %",
    ]);
    let variants = [
        ("off", PromptBatch::Off),
        ("B=1", PromptBatch::Keys(1)),
        ("B=2", PromptBatch::Keys(2)),
        ("B=5", PromptBatch::Keys(5)),
        ("B=10", PromptBatch::Keys(10)),
        ("B=25", PromptBatch::Keys(25)),
    ];
    for (label, prompt_batch) in variants {
        let options = GaloisOptions {
            prompt_batch,
            ..cost_planned_options(lanes)
        };
        let run = run_galois_suite_parallel(&scenario, profile.clone(), options, lanes);
        let totals = suite_totals(&run, lanes);
        t.row(vec![
            label.to_string(),
            totals.prompts.to_string(),
            totals.cache_hits.to_string(),
            totals.serial_virtual_ms.to_string(),
            totals.virtual_ms.to_string(),
            format!("{:.0}", run.content_score(None) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(expected: identical content scores; prompts collapse ~ceil(keys/B) per cell; \
         diminishing virtual-ms returns at large B)"
    );
}
