//! Per-query diagnostic breakdown: cardinality diff, content score and
//! prompt counts for every suite query under one model, for Galois and
//! both QA baselines. Useful when calibrating or debugging — the paper's
//! tables are averages of exactly these numbers.
//!
//! Usage: `per_query [--seed N] [--model flan|tk|gpt3|chatgpt|oracle]`

use galois_bench::seed_from_args;
use galois_core::{BaselineKind, GaloisOptions};
use galois_dataset::Scenario;
use galois_eval::{run_baseline_suite, run_galois_suite, TextTable};
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let args: Vec<String> = std::env::args().collect();
    let model = args
        .windows(2)
        .find(|w| w[0] == "--model")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "chatgpt".to_string());
    let profile = if model == "oracle" {
        ModelProfile::oracle()
    } else {
        ModelProfile::by_name(&model).expect("unknown model")
    };

    let scenario = Scenario::generate(seed);
    let run = run_galois_suite(&scenario, profile.clone(), GaloisOptions::default());
    let qa = run_baseline_suite(&scenario, profile.clone(), BaselineKind::Plain);
    let cot = run_baseline_suite(&scenario, profile, BaselineKind::ChainOfThought);

    println!("Per-query breakdown — model {model}, seed {seed}\n");
    let mut t = TextTable::new(&[
        "q", "category", "|R_D|", "|R_M|", "card%", "R_M%", "T_M%", "T_C_M%", "prompts",
    ]);
    for ((g, b), c) in run.outcomes.iter().zip(&qa.outcomes).zip(&cot.outcomes) {
        t.row(vec![
            format!("q{}", g.id),
            g.category.label().to_string(),
            g.truth_rows.to_string(),
            g.result_rows.to_string(),
            format!("{:+.0}", g.cardinality_diff),
            format!("{:.0}", g.matching.score() * 100.0),
            format!("{:.0}", b.matching.score() * 100.0),
            format!("{:.0}", c.matching.score() * 100.0),
            g.stats.total_prompts().to_string(),
        ]);
    }
    println!("{}", t.render());
}
