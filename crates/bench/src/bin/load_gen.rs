//! Closed-loop multi-session load generator over the shared lane pool.
//!
//! Replays the 46-query oracle suite — and a scaled world's suite (see
//! [`Scenario::generate_scaled`]) — at `{2, 4, 8, 16, 32, 64}` concurrent
//! closed-loop sessions through the cross-query scheduler: queries are
//! dealt round-robin onto sessions, every session submits its next query
//! the instant the previous one finishes, and all sessions draw lanes
//! from one shared pool (`sessions × K` lanes) under fair admission.
//! Each sweep point reports the suite **makespan**, p50/p99 per-query
//! virtual latency, total admission-queue delay, prompts per query and
//! lane-pool utilisation.
//!
//! The generator is fully deterministic — the logical pass runs queries
//! in canonical suite order, so answers and prompt totals are identical
//! at every session count (the `prompts/query` column must not move down
//! a sweep); only the clocks change. The `--inflight` cap (0 = unlimited)
//! makes queueing visible: with it set below the session count, the
//! `queue ms` column grows while the makespan degrades gracefully.
//!
//! Usage: `load_gen [--seed 42] [--parallelism 8] [--scale 3]
//! [--inflight 0]`.

use galois_bench::{grid_stack_options, lanes_from_args, parsed_flag, seed_from_args};
use galois_core::{Admission, AdmissionPolicy, GaloisOptions};
use galois_dataset::Scenario;
use galois_eval::{run_suite_concurrent, TextTable};
use galois_llm::ModelProfile;

fn sweep(t: &mut TextTable, world: &str, scenario: &Scenario, options: &GaloisOptions) {
    for sessions in [2usize, 4, 8, 16, 32, 64] {
        let run = run_suite_concurrent(scenario, ModelProfile::oracle(), options.clone(), sessions)
            .expect("the grid stack streams, so its traces replay");
        t.row(vec![
            world.to_string(),
            sessions.to_string(),
            run.pool_lanes.to_string(),
            run.makespan_ms.to_string(),
            run.p50_latency_ms.to_string(),
            run.p99_latency_ms.to_string(),
            run.total_queue_ms.to_string(),
            format!("{:.1}", run.prompts_per_query()),
            format!("{:.0}%", run.lane_utilisation * 100.0),
        ]);
    }
}

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let scale = parsed_flag::<usize>("--scale").unwrap_or(3).max(1);
    let inflight = parsed_flag::<usize>("--inflight").unwrap_or(0);
    let options = GaloisOptions {
        admission: Admission::Fair(AdmissionPolicy {
            max_inflight: inflight,
            ..Default::default()
        }),
        ..grid_stack_options(lanes, 10, 6)
    };
    println!(
        "Closed-loop load sweep — shared lane pool, grid-fused streaming stack (seed {seed}, \
         K={lanes} lanes/session, in-flight cap {})\n",
        if inflight == 0 {
            "unlimited".to_string()
        } else {
            inflight.to_string()
        }
    );

    let oracle46 = Scenario::generate(seed);
    let scaled = Scenario::generate_scaled(seed, scale);
    let mut t = TextTable::new(&[
        "world",
        "sessions",
        "pool lanes",
        "makespan ms",
        "p50 ms",
        "p99 ms",
        "queue ms",
        "prompts/query",
        "pool util",
    ]);
    sweep(&mut t, "oracle-46", &oracle46, &options);
    sweep(&mut t, &format!("scaled-x{scale}"), &scaled, &options);
    println!("{}", t.render());
    println!(
        "(expected: prompts/query constant down each world's sweep — concurrency never changes \
         the logical work — while the makespan falls with the session count until the longest \
         single session chain floors it, and queue ms stays zero unless --inflight binds)"
    );
}
