//! Ablation **A2** (paper §4): "The enforcing of type and domain
//! constraints is a simple but crucial step to limit the incorrect output
//! due to model hallucinations."
//!
//! Runs the suite with the cleaning/normalisation stage enabled vs
//! disabled. Without normalisation, answers like "2.8 million" or
//! "May 8, 1961" fail to type and become NULLs.

use galois_bench::seed_from_args;
use galois_core::{CleaningPolicy, GaloisOptions};
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite, TextTable};
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    println!("Ablation A2 — answer cleaning/normalisation (ChatGPT, seed {seed})\n");

    let mut t = TextTable::new(&[
        "variant",
        "content all %",
        "content sel %",
        "content agg %",
        "card diff %",
    ]);
    for (label, cleaning) in [
        (
            "cleaning on (normalise + domains)",
            CleaningPolicy::default(),
        ),
        (
            "cleaning off (strict formats only)",
            CleaningPolicy::disabled(),
        ),
    ] {
        let options = GaloisOptions {
            cleaning,
            ..Default::default()
        };
        let run = run_galois_suite(&scenario, ModelProfile::chatgpt(), options);
        t.row(vec![
            label.to_string(),
            format!("{:.0}", run.content_score(None) * 100.0),
            format!(
                "{:.0}",
                run.content_score(Some(galois_dataset::QueryCategory::SelectionOnly)) * 100.0
            ),
            format!(
                "{:.0}",
                run.content_score(Some(galois_dataset::QueryCategory::Aggregate)) * 100.0
            ),
            format!("{:+.1}", run.average_cardinality_diff()),
        ]);
    }
    println!("{}", t.render());
    println!("(expected: accuracy drops without normalisation)");
}
