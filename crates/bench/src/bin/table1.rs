//! Reproduces **Table 1**: average difference in the cardinality of
//! Galois's output relations (`R_M`) w.r.t. the ground-truth results
//! `|R_D|` for the 46 queries. Closer to 0 is better.
//!
//! Paper reference values: Flan −47.4, TK −43.7, GPT-3 +1.0,
//! ChatGPT −19.5.
//!
//! `--threads N` fans the suite out over N workers; the table is
//! byte-identical for any thread count.

use galois_bench::{seed_from_args, threads_from_args};
use galois_dataset::Scenario;
use galois_eval::table1_parallel;
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let threads = threads_from_args();
    let scenario = Scenario::generate(seed);
    println!("Table 1 — cardinality difference (seed {seed}, 46 queries)");
    println!("paper:   flan -47.4   tk -43.7   gpt3 +1.0   chatgpt -19.5\n");
    let (table, _) = table1_parallel(&scenario, &ModelProfile::all(), threads);
    println!("{}", table.render());
}
