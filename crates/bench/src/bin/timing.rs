//! Reproduces the §5 timing/prompt-count claim: "On average, GPT-3 takes
//! ∼20 seconds to execute a query (∼110 batched prompts per query).
//! Distributions for these metrics are skewed as they depend on the result
//! sizes."
//!
//! Latency is a virtual clock (see `galois_llm::client`): the shapes and
//! counts are meaningful, wall-clock equivalence is not claimed.

use galois_bench::{seed_from_args, threads_from_args};
use galois_core::GaloisOptions;
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite_parallel, timing_summary, TextTable};
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let threads = threads_from_args();
    let scenario = Scenario::generate(seed);
    println!("Prompt/latency statistics per query (seed {seed}, 46 queries)");
    println!("paper: ~110 batched prompts and ~20 s per query on GPT-3; skewed\n");

    let mut t = TextTable::new(&[
        "model",
        "prompts mean",
        "prompts p50",
        "prompts p90",
        "secs mean",
        "secs p50",
        "secs p90",
    ]);
    for profile in ModelProfile::all() {
        let name = profile.name.clone();
        let run = run_galois_suite_parallel(&scenario, profile, GaloisOptions::default(), threads);
        let s = timing_summary(&run);
        t.row(vec![
            name,
            format!("{:.0}", s.mean_prompts),
            format!("{:.0}", s.median_prompts),
            format!("{:.0}", s.p90_prompts),
            format!("{:.1}", s.mean_seconds),
            format!("{:.1}", s.median_seconds),
            format!("{:.1}", s.p90_seconds),
        ]);
    }
    println!("{}", t.render());
    println!("(mean > median confirms the paper's skew observation)");
}
