//! Ablation **A8**: LIMIT-aware early termination — window size sweep.
//!
//! Runs `SELECT name FROM city LIMIT n` (and a filtered variant) on a wide
//! 120-city world with a paged oracle (`list_page_size: 10`, so listing
//! takes ~12 pages end to end) under the streaming grid-fused stack, once
//! with `EarlyStop::Off` and once with `EarlyStop::Limit`, for `n ∈
//! {3, 10, 25, 60}` plus the unlimited form. With the knob on, the
//! streaming pipeline cancels list paging — and the filter/fetch
//! micro-batches scheduled behind it — as soon as confirmed survivors
//! cover the window, so the prompt bill scales with `n` instead of with
//! the concept's cardinality. Both variants return the same admissible
//! window (the suite's equivalence battery pins this); the table ties on
//! row counts and separates on prompts and the virtual clock. The
//! unlimited row is the control: with no window to cover, the knob must
//! change nothing.
//!
//! Usage: `ablation_limit [--seed 42] [--parallelism 8]`.

use galois_bench::{fresh_session, lanes_from_args, seed_from_args};
use galois_core::{EarlyStop, GaloisOptions, Parallelism, Pipeline, PromptBatch};
use galois_dataset::{Scenario, WorldConfig};
use galois_eval::TextTable;
use galois_llm::ModelProfile;

struct Measure {
    rows: usize,
    prompts: usize,
    list: usize,
    filter: usize,
    fetch: usize,
    virtual_ms: u64,
}

fn measure(
    scenario: &Scenario,
    profile: &ModelProfile,
    lanes: usize,
    early: EarlyStop,
    sql: &str,
) -> Measure {
    let options = GaloisOptions {
        parallelism: Parallelism::new(lanes),
        pipeline: Pipeline::Streaming,
        prompt_batch: PromptBatch::Grid { keys: 10, attrs: 6 },
        early_stop: early,
        ..Default::default()
    };
    let session = fresh_session(scenario, profile, options);
    let result = session.execute(sql).expect("ablation query executes");
    Measure {
        rows: result.relation.len(),
        prompts: result.stats.total_prompts(),
        list: result.stats.list_prompts,
        filter: result.stats.filter_prompts,
        fetch: result.stats.fetch_prompts,
        virtual_ms: result.stats.virtual_ms,
    }
}

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let scenario = Scenario::generate_with(
        seed,
        WorldConfig {
            cities: 120,
            ..Default::default()
        },
    );
    let profile = ModelProfile {
        list_page_size: 10,
        ..ModelProfile::oracle()
    };
    println!(
        "Ablation A8 — LIMIT-aware early termination (paged oracle, {} keys/page, seed {seed}, \
         {lanes} lanes, streaming pipeline, grid fusion B=10 A=6)\n",
        profile.list_page_size
    );

    type SqlShape = fn(Option<usize>) -> String;
    let shapes: [(&str, SqlShape); 2] = [
        ("scan", |n| match n {
            Some(n) => format!("SELECT name FROM city LIMIT {n}"),
            None => "SELECT name FROM city".to_string(),
        }),
        ("filtered", |n| match n {
            Some(n) => {
                format!("SELECT name, population FROM city WHERE elevation < 3000 LIMIT {n}")
            }
            None => "SELECT name, population FROM city WHERE elevation < 3000".to_string(),
        }),
    ];
    let windows = [Some(3usize), Some(10), Some(25), Some(60), None];

    let mut t = TextTable::new(&[
        "query",
        "limit",
        "rows",
        "prompts off",
        "prompts on",
        "list off/on",
        "filter off/on",
        "fetch off/on",
        "virtual ms off/on",
    ]);
    for (label, sql_of) in shapes {
        for n in windows {
            let sql = sql_of(n);
            let off = measure(&scenario, &profile, lanes, EarlyStop::Off, &sql);
            let on = measure(&scenario, &profile, lanes, EarlyStop::Limit, &sql);
            assert_eq!(
                off.rows, on.rows,
                "early stop must not change the window size ({sql})"
            );
            t.row(vec![
                label.to_string(),
                n.map_or_else(|| "none".to_string(), |n| n.to_string()),
                on.rows.to_string(),
                off.prompts.to_string(),
                on.prompts.to_string(),
                format!("{}/{}", off.list, on.list),
                format!("{}/{}", off.filter, on.filter),
                format!("{}/{}", off.fetch, on.fetch),
                format!("{}/{}", off.virtual_ms, on.virtual_ms),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(expected: identical row counts; with the knob on, list pages stop shortly after the \
         window is covered, so prompts grow with n and the unlimited row ties exactly)"
    );
}
