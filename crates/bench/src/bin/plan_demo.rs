//! Reproduces **Figure 3**: the logical plan for the paper's query `q'`
//! with the injected LLM retrieval operators.
//!
//! The paper's q' filters politicians by age and joins them with cities;
//! in our schema the equivalent shape is mayors filtered by election year
//! joined with their cities.

use galois_bench::seed_from_args;
use galois_core::Galois;
use galois_dataset::Scenario;
use galois_eval::model_for;
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    let galois = Galois::new(
        model_for(&scenario, ModelProfile::chatgpt()),
        scenario.database.clone(),
    );

    let sql = "SELECT c.name, m.name FROM city c, cityMayor m \
               WHERE c.mayor = m.name AND m.electionYear >= 2019 \
               AND c.population > 1000000";
    println!("Figure 3 — compiled plan with LLM operators (seed {seed})\n");
    println!("SQL: {sql}\n");
    println!("{}", galois.explain(sql).expect("plan compiles"));

    println!("\nThe same query, relational-only view (DuckDB-equivalent logical plan):\n");
    println!("{}", scenario.database.explain(sql).expect("plan builds"));
}
