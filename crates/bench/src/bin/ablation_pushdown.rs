//! Ablation **A1** (paper §6 "Query optimization"): pushing the selection
//! into the data-access prompt ("get names of cities with > 1M
//! population") removes the per-key filter prompts — but "combining too
//! many prompts leads to complex questions that have lower accuracy than
//! simple ones".
//!
//! This sweep runs the 46 queries with and without prompt pushdown and
//! reports prompt counts vs. content accuracy.

use galois_bench::seed_from_args;
use galois_core::{CompileOptions, GaloisOptions};
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite, timing_summary, TextTable};
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    println!("Ablation A1 — prompt pushdown (ChatGPT, seed {seed})\n");

    let mut t = TextTable::new(&[
        "variant",
        "prompts/query",
        "virtual s/query",
        "content all %",
        "content sel %",
        "card diff %",
    ]);
    for (label, pushdown) in [
        ("per-key filter prompts", false),
        ("pushdown into scan", true),
    ] {
        let options = GaloisOptions {
            compile: CompileOptions {
                pushdown,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = run_galois_suite(&scenario, ModelProfile::chatgpt(), options);
        let s = timing_summary(&run);
        t.row(vec![
            label.to_string(),
            format!("{:.0}", s.mean_prompts),
            format!("{:.1}", s.mean_seconds),
            format!("{:.0}", run.content_score(None) * 100.0),
            format!(
                "{:.0}",
                run.content_score(Some(galois_dataset::QueryCategory::SelectionOnly)) * 100.0
            ),
            format!("{:+.1}", run.average_cardinality_diff()),
        ]);
    }
    println!("{}", t.render());
    println!("(expected: fewer prompts, lower accuracy with pushdown)");
}
