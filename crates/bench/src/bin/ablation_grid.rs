//! Ablation **A7**: the grid fusion factors — keys × attributes per
//! prompt.
//!
//! Runs the 46-query suite on one cold key-universe-store session per
//! variant (cost-based planner, streaming pipeline, `--parallelism` lanes,
//! one harness thread — the `galois_grid_fused` BENCH configuration) with
//! `PromptBatch::Grid { keys: B, attrs: A }` for `B ∈ {1, 5, 10}` ×
//! `A ∈ {1, 2, 4, all}`, reporting prompt volume per phase, cache hits and
//! the virtual clocks. On the oracle profile every variant returns
//! identical relations — grid fusion only reshapes the fetch schedule — so
//! the accuracy column ties while the fetch prompts collapse along two
//! axes: `⌈C/A⌉ × ⌈keys/B⌉` prompts per step, and (the bigger lever on a
//! suite of narrow queries) speculative pad columns that seed the
//! sub-entry store so later queries on the same table fetch at zero
//! prompt cost. `A = 1` is the ablation base case (the key-batched
//! protocol in grid clothing, no spare width to speculate into); `A =
//! all` fuses a step's whole fetch set and pads to the table's full
//! non-key width.
//!
//! Usage: `ablation_grid [--seed 42] [--parallelism 8] [--model oracle]`.

use galois_bench::{
    fresh_session, grid_stack_options, lanes_from_args, model_from_args, seed_from_args,
};
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite_on, suite_totals, TextTable};

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let profile = model_from_args();
    let scenario = Scenario::generate(seed);
    println!(
        "Ablation A7 — grid-fused multi-attribute prompting ({}, seed {seed}, {lanes} lanes, \
         cost-based planner, streaming pipeline, cold key-universe store)\n",
        profile.name
    );

    let mut t = TextTable::new(&[
        "grid",
        "prompts",
        "list",
        "filter",
        "fetch",
        "cache hits",
        "virtual ms",
        "fetch ms",
        "content all %",
    ]);
    // `usize::MAX` exceeds every step's fetch width — the "all attributes
    // in one prompt" extreme.
    let attr_variants: [(&str, usize); 4] = [("1", 1), ("2", 2), ("4", 4), ("all", usize::MAX)];
    for keys in [1usize, 5, 10] {
        for (attr_label, attrs) in attr_variants {
            let session =
                fresh_session(&scenario, &profile, grid_stack_options(lanes, keys, attrs));
            let run = run_galois_suite_on(&scenario, &session, &profile.name, 1);
            let totals = suite_totals(&run, lanes);
            let (list, filter, fetch) = run.outcomes.iter().fold((0, 0, 0), |(l, f, a), o| {
                (
                    l + o.stats.list_prompts,
                    f + o.stats.filter_prompts,
                    a + o.stats.fetch_prompts,
                )
            });
            t.row(vec![
                format!("B={keys} A={attr_label}"),
                totals.prompts.to_string(),
                list.to_string(),
                filter.to_string(),
                fetch.to_string(),
                totals.cache_hits.to_string(),
                totals.virtual_ms.to_string(),
                totals.fetch_virtual_ms.to_string(),
                format!("{:.0}", run.content_score(None) * 100.0),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "(expected: identical content scores; fetch prompts collapse as ceil(C/A) x ceil(keys/B) \
         per step plus cross-query cache hits from speculative pads; A=1 matches the key-batched \
         protocol's counts)"
    );
}
