//! Ablation **A3** (paper §4): the key-retrieval loop "iterate\[s\] with a
//! prompt until we stop getting new results. … The termination condition
//! could be replaced by a user-specified threshold."
//!
//! Sweeps the iteration cap and reports how cardinality recovery and
//! prompt cost trade off.

use galois_bench::seed_from_args;
use galois_core::GaloisOptions;
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite, timing_summary, TextTable};
use galois_llm::ModelProfile;

fn main() {
    let seed = seed_from_args();
    let scenario = Scenario::generate(seed);
    println!("Ablation A3 — \"Return more results\" iteration cap (ChatGPT, seed {seed})\n");

    let mut t = TextTable::new(&[
        "max iterations",
        "card diff %",
        "content all %",
        "prompts/query",
    ]);
    for cap in [1usize, 2, 3, 4, 8, 32] {
        let options = GaloisOptions {
            max_list_iterations: cap,
            ..Default::default()
        };
        let run = run_galois_suite(&scenario, ModelProfile::chatgpt(), options);
        let s = timing_summary(&run);
        t.row(vec![
            cap.to_string(),
            format!("{:+.1}", run.average_cardinality_diff()),
            format!("{:.0}", run.content_score(None) * 100.0),
            format!("{:.0}", s.mean_prompts),
        ]);
    }
    println!("{}", t.render());
    println!("(expected: low caps truncate results; the diff saturates once");
    println!(" the model has nothing new to say)");
}
