//! Ablation **A4** (paper §6 "Query optimization"): the cost-based,
//! prompt-aware planner vs. the fixed heuristic pipeline.
//!
//! Runs the 46-query suite under both [`Planner`] modes, sequentially and
//! at `--parallelism K`, and reports prompt volume, cache hits and the
//! virtual clocks. On the oracle profile the two modes return identical
//! relations (the planner only reshapes the prompt schedule), so every
//! accuracy column should tie while the cost columns separate — the
//! cost-based planner trades per-key filter prompts for pushed-down scan
//! conditions and orders retrieval steps longest-first.
//!
//! Usage: `ablation_planner [--seed 42] [--parallelism 8] [--model oracle]`.

use galois_bench::{cost_planned_options, lanes_from_args, model_from_args, seed_from_args};
use galois_core::{GaloisOptions, Planner};
use galois_dataset::Scenario;
use galois_eval::{run_galois_suite_parallel, suite_totals, TextTable};

fn main() {
    let seed = seed_from_args();
    let lanes = lanes_from_args();
    let profile = model_from_args();
    let scenario = Scenario::generate(seed);
    println!(
        "Ablation A4 — cost-based planner ({}, seed {seed}, {lanes} lanes)\n",
        profile.name
    );

    let mut t = TextTable::new(&[
        "variant",
        "K",
        "prompts",
        "cache hits",
        "serial ms",
        "virtual ms",
        "content all %",
    ]);
    for (label, planner, k) in [
        ("heuristic", Planner::Heuristic, 1),
        ("cost-based", Planner::CostBased, 1),
        ("heuristic", Planner::Heuristic, lanes),
        ("cost-based", Planner::CostBased, lanes),
    ] {
        let options = GaloisOptions {
            planner,
            ..cost_planned_options(k)
        };
        let run = run_galois_suite_parallel(&scenario, profile.clone(), options, k);
        let totals = suite_totals(&run, k);
        t.row(vec![
            label.to_string(),
            k.to_string(),
            totals.prompts.to_string(),
            totals.cache_hits.to_string(),
            totals.serial_virtual_ms.to_string(),
            totals.virtual_ms.to_string(),
            format!("{:.0}", run.content_score(None) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("(expected: same content scores, fewer prompts and lower virtual ms cost-based)");
}
