//! # galois-bench
//!
//! Reproduction harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §4 for the experiment index) plus Criterion microbenchmarks
//! in `benches/`.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — cardinality difference per model |
//! | `table2` | Table 2 — cell-match % per method and query class |
//! | `timing` | §5 prompt-count / latency statistics |
//! | `plan_demo` | Figure 3 — compiled plan with LLM operators |
//! | `prompt_demo` | Figure 4 — few-shot prompt rendering |
//! | `ablation_pushdown` | §6 — prompt pushdown on/off |
//! | `ablation_cleaning` | §4 — cleaning on/off |
//! | `ablation_iteration` | §4 — "more results" iteration cap sweep |
//! | `ablation_planner` | §6 — cost-based planner vs. fixed heuristic |
//! | `ablation_batch` | multi-key prompt batching factor sweep (B ∈ {1, 2, 5, 10, 25}) |
//! | `ablation_grid` | grid fusion factor sweep (keys × attributes per prompt) |
//! | `ablation_limit` | LIMIT-aware early termination — window size sweep on a 120-key concept |
//! | `perf_report` | end-to-end accounting (`BENCH_e2e.json`), incl. the planner and batched rows |
//!
//! Every binary accepts `--seed <u64>` (default 42).

#![warn(missing_docs)]

/// Parses a `--seed N` argument pair from `std::env::args`, defaulting to
/// 42. Shared by all reproduction binaries.
pub fn seed_from_args() -> u64 {
    parsed_flag("--seed").unwrap_or(42)
}

/// Parses a `--threads N` argument pair, defaulting to 1 (the sequential,
/// paper-faithful harness).
pub fn threads_from_args() -> usize {
    parsed_flag("--threads").unwrap_or(1).max(1)
}

/// Parses an arbitrary `<flag> <value>` pair from `std::env::args`.
pub fn parsed_flag<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
}

/// Parses a `<flag> <value>` string pair from `std::env::args`
/// (convenience alias for `parsed_flag::<String>`, whose parse is
/// infallible).
pub fn string_flag(flag: &str) -> Option<String> {
    parsed_flag(flag)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_is_42() {
        // Arguments of the test harness never contain --seed.
        assert_eq!(super::seed_from_args(), 42);
    }

    #[test]
    fn default_threads_is_one() {
        assert_eq!(super::threads_from_args(), 1);
        assert_eq!(super::parsed_flag::<usize>("--no-such-flag"), None);
        assert_eq!(super::string_flag("--no-such-flag"), None);
    }
}
