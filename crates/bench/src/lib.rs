//! # galois-bench
//!
//! Reproduction harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §4 for the experiment index) plus Criterion microbenchmarks
//! in `benches/`.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — cardinality difference per model |
//! | `table2` | Table 2 — cell-match % per method and query class |
//! | `timing` | §5 prompt-count / latency statistics |
//! | `plan_demo` | Figure 3 — compiled plan with LLM operators |
//! | `prompt_demo` | Figure 4 — few-shot prompt rendering |
//! | `ablation_pushdown` | §6 — prompt pushdown on/off |
//! | `ablation_cleaning` | §4 — cleaning on/off |
//! | `ablation_iteration` | §4 — "more results" iteration cap sweep |
//!
//! Every binary accepts `--seed <u64>` (default 42).

#![warn(missing_docs)]

/// Parses a `--seed N` argument pair from `std::env::args`, defaulting to
/// 42. Shared by all reproduction binaries.
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(42)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_is_42() {
        // Arguments of the test harness never contain --seed.
        assert_eq!(super::seed_from_args(), 42);
    }
}
