//! # galois-bench
//!
//! Reproduction harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §4 for the experiment index) plus Criterion microbenchmarks
//! in `benches/`.
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — cardinality difference per model |
//! | `table2` | Table 2 — cell-match % per method and query class |
//! | `timing` | §5 prompt-count / latency statistics |
//! | `plan_demo` | Figure 3 — compiled plan with LLM operators |
//! | `prompt_demo` | Figure 4 — few-shot prompt rendering |
//! | `ablation_pushdown` | §6 — prompt pushdown on/off |
//! | `ablation_cleaning` | §4 — cleaning on/off |
//! | `ablation_iteration` | §4 — "more results" iteration cap sweep |
//! | `ablation_planner` | §6 — cost-based planner vs. fixed heuristic |
//! | `ablation_batch` | multi-key prompt batching factor sweep (B ∈ {1, 2, 5, 10, 25}) |
//! | `ablation_grid` | grid fusion factor sweep (keys × attributes per prompt) |
//! | `ablation_limit` | LIMIT-aware early termination — window size sweep on a 120-key concept |
//! | `load_gen` | closed-loop multi-session load sweep over the shared lane pool |
//! | `perf_report` | end-to-end accounting (`BENCH_e2e.json`), incl. the planner and batched rows |
//!
//! Every binary accepts `--seed <u64>` (default 42). The suite-setup
//! boilerplate the binaries share — flag parsing, the engine option
//! stacks each BENCH row names, fresh-session construction — lives here
//! so a configuration is defined once and every ablation, the load
//! generator and `perf_report` measure the same stack.

#![warn(missing_docs)]

use std::sync::Arc;

use galois_core::{Galois, GaloisOptions, ListStore, Parallelism, Pipeline, Planner, PromptBatch};
use galois_dataset::Scenario;
use galois_llm::{FaultProfile, ModelProfile, SimLlm};

/// Parses a `--seed N` argument pair from `std::env::args`, defaulting to
/// 42. Shared by all reproduction binaries.
pub fn seed_from_args() -> u64 {
    parsed_flag("--seed").unwrap_or(42)
}

/// Parses a `--parallelism K` argument pair (request lanes per session),
/// defaulting to 8 — the BENCH configuration.
pub fn lanes_from_args() -> usize {
    parsed_flag("--parallelism").unwrap_or(8).max(1)
}

/// Parses a `--model NAME` argument pair into a [`ModelProfile`], falling
/// back to the oracle when absent or unknown.
pub fn model_from_args() -> ModelProfile {
    string_flag("--model")
        .and_then(|name| ModelProfile::by_name(&name))
        .unwrap_or_else(ModelProfile::oracle)
}

/// The cost-planned stack: `Planner::CostBased` over `lanes` request
/// lanes (the `galois_cost_planner` BENCH row).
pub fn cost_planned_options(lanes: usize) -> GaloisOptions {
    GaloisOptions {
        parallelism: Parallelism::new(lanes),
        planner: Planner::CostBased,
        ..Default::default()
    }
}

/// The batched stack: cost-planned plus `PromptBatch::Keys(batch)` (the
/// `galois_batched` BENCH row).
pub fn batched_options(lanes: usize, batch: usize) -> GaloisOptions {
    GaloisOptions {
        prompt_batch: PromptBatch::Keys(batch.max(1)),
        ..cost_planned_options(lanes)
    }
}

/// The pipelined stack: batched plus `Pipeline::Streaming` (the
/// `galois_pipelined` BENCH row).
pub fn pipelined_options(lanes: usize, batch: usize) -> GaloisOptions {
    GaloisOptions {
        pipeline: Pipeline::Streaming,
        ..batched_options(lanes, batch)
    }
}

/// The full grid-fused stack: streaming, cost-planned, key-universe store
/// on, `PromptBatch::Grid { keys, attrs }` (the `galois_grid_fused` BENCH
/// row, and the base configuration of the multi-query rows).
pub fn grid_stack_options(lanes: usize, keys: usize, attrs: usize) -> GaloisOptions {
    GaloisOptions {
        list_store: ListStore::On,
        prompt_batch: PromptBatch::Grid {
            keys: keys.max(1),
            attrs: attrs.max(1),
        },
        pipeline: Pipeline::Streaming,
        ..cost_planned_options(lanes)
    }
}

/// A fresh Galois session over the scenario's knowledge under `profile`
/// and `options` — the construction every bin repeats for cold-session
/// measurements.
pub fn fresh_session(
    scenario: &Scenario,
    profile: &ModelProfile,
    options: GaloisOptions,
) -> Galois {
    Galois::with_options(
        Arc::new(SimLlm::new(scenario.knowledge.clone(), profile.clone())),
        scenario.database.clone(),
        options,
    )
}

/// A fault profile whose every fault is marker-detectable (truncated
/// answers excluded): the retry loop catches them all, keeping
/// resilience sweeps' row counts meaningful across policies.
pub fn detectable_fault_profile(rate: f64) -> FaultProfile {
    FaultProfile {
        fault_rate: rate,
        truncated_weight: 0,
        ..FaultProfile::default()
    }
}

/// Parses a `--threads N` argument pair, defaulting to 1 (the sequential,
/// paper-faithful harness).
pub fn threads_from_args() -> usize {
    parsed_flag("--threads").unwrap_or(1).max(1)
}

/// Parses an arbitrary `<flag> <value>` pair from `std::env::args`.
pub fn parsed_flag<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
}

/// Parses a `<flag> <value>` string pair from `std::env::args`
/// (convenience alias for `parsed_flag::<String>`, whose parse is
/// infallible).
pub fn string_flag(flag: &str) -> Option<String> {
    parsed_flag(flag)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_is_42() {
        // Arguments of the test harness never contain --seed.
        assert_eq!(super::seed_from_args(), 42);
    }

    #[test]
    fn default_threads_is_one() {
        assert_eq!(super::threads_from_args(), 1);
        assert_eq!(super::parsed_flag::<usize>("--no-such-flag"), None);
        assert_eq!(super::string_flag("--no-such-flag"), None);
    }

    #[test]
    fn default_lanes_and_model_match_the_bench_configuration() {
        assert_eq!(super::lanes_from_args(), 8);
        assert_eq!(super::model_from_args().name, "oracle");
    }

    #[test]
    fn option_stacks_compose_incrementally() {
        use galois_core::{ListStore, Pipeline, Planner, PromptBatch};
        let cost = super::cost_planned_options(8);
        assert_eq!(cost.planner, Planner::CostBased);
        assert_eq!(cost.parallelism.get(), 8);
        assert_eq!(cost.pipeline, Pipeline::Off);
        let batched = super::batched_options(8, 10);
        assert_eq!(batched.prompt_batch, PromptBatch::Keys(10));
        assert_eq!(batched.pipeline, Pipeline::Off);
        let pipelined = super::pipelined_options(8, 10);
        assert_eq!(pipelined.prompt_batch, PromptBatch::Keys(10));
        assert_eq!(pipelined.pipeline, Pipeline::Streaming);
        let grid = super::grid_stack_options(8, 10, 6);
        assert_eq!(grid.prompt_batch, PromptBatch::Grid { keys: 10, attrs: 6 });
        assert_eq!(grid.pipeline, Pipeline::Streaming);
        assert_eq!(grid.list_store, ListStore::On);
        assert_eq!(grid.planner, Planner::CostBased);
    }

    #[test]
    fn detectable_fault_profile_excludes_truncation() {
        let p = super::detectable_fault_profile(0.2);
        assert_eq!(p.fault_rate, 0.2);
        assert_eq!(p.truncated_weight, 0);
    }
}
