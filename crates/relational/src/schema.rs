//! Schemas: table schemas (stored relations) and plan schemas (operator
//! outputs with binding qualifiers).

use crate::error::{EngineError, Result};
use crate::value::DataType;
use std::fmt;

/// A column of a stored table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// Schema of a stored table: ordered columns plus the designated key
/// attribute (the paper assumes every relation has a single-attribute key —
/// design consideration 1 in §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Index into `columns` of the key attribute.
    pub key: usize,
}

impl TableSchema {
    /// Builds a schema; `key_name` must name one of `columns`.
    pub fn new(columns: Vec<Column>, key_name: &str) -> Result<TableSchema> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(EngineError::Catalog(format!(
                    "duplicate column '{}'",
                    c.name
                )));
            }
        }
        let key = columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(key_name))
            .ok_or_else(|| {
                EngineError::Catalog(format!("key column '{key_name}' not in schema"))
            })?;
        if columns[key].nullable {
            return Err(EngineError::Catalog(format!(
                "key column '{key_name}' must not be nullable"
            )));
        }
        Ok(TableSchema { columns, key })
    }

    /// The key column.
    pub fn key_column(&self) -> &Column {
        &self.columns[self.key]
    }

    /// Finds a column index by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A column as it appears in an operator's output: the stored column name
/// plus the binding (table alias) that introduced it, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanColumn {
    /// Binding (FROM-clause alias or table name); `None` for computed
    /// outputs such as aggregates.
    pub binding: Option<String>,
    /// Output name.
    pub name: String,
    /// Output type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl PlanColumn {
    /// Builds a plan column carried over from a base table.
    pub fn from_base(binding: &str, col: &Column) -> Self {
        PlanColumn {
            binding: Some(binding.to_string()),
            name: col.name.clone(),
            data_type: col.data_type,
            nullable: col.nullable,
        }
    }

    /// Builds a computed output column.
    pub fn computed(name: impl Into<String>, data_type: DataType) -> Self {
        PlanColumn {
            binding: None,
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

impl fmt::Display for PlanColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(b) = &self.binding {
            write!(f, "{b}.")?;
        }
        write!(f, "{}: {}", self.name, self.data_type)
    }
}

/// Ordered list of plan columns — the schema flowing between operators.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanSchema {
    /// Output columns in order.
    pub columns: Vec<PlanColumn>,
}

impl PlanSchema {
    /// Creates a plan schema from columns.
    pub fn new(columns: Vec<PlanColumn>) -> Self {
        PlanSchema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolves a possibly-qualified name to a column index.
    ///
    /// With a qualifier, both binding and name must match. Without one, the
    /// name must match exactly one column, otherwise the reference is
    /// ambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                let name_ok = c.name.eq_ignore_ascii_case(name);
                match qualifier {
                    Some(q) => {
                        name_ok
                            && c.binding
                                .as_deref()
                                .is_some_and(|b| b.eq_ignore_ascii_case(q))
                    }
                    None => name_ok,
                }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(EngineError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            1 => Ok(matches[0]),
            _ => Err(EngineError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn join(&self, right: &PlanSchema) -> PlanSchema {
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        PlanSchema { columns }
    }

    /// Marks every column nullable (right side of a left outer join).
    pub fn as_nullable(&self) -> PlanSchema {
        PlanSchema {
            columns: self
                .columns
                .iter()
                .map(|c| PlanColumn {
                    nullable: true,
                    ..c.clone()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_schema() -> TableSchema {
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("country", DataType::Text),
                Column::nullable("population", DataType::Int),
            ],
            "name",
        )
        .unwrap()
    }

    #[test]
    fn table_schema_key_resolution() {
        let s = city_schema();
        assert_eq!(s.key, 0);
        assert_eq!(s.key_column().name, "name");
        assert_eq!(s.index_of("POPULATION"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            vec![
                Column::new("a", DataType::Int),
                Column::new("A", DataType::Text),
            ],
            "a",
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Catalog(_)));
    }

    #[test]
    fn missing_key_rejected() {
        assert!(TableSchema::new(vec![Column::new("a", DataType::Int)], "b").is_err());
    }

    #[test]
    fn nullable_key_rejected() {
        assert!(TableSchema::new(vec![Column::nullable("a", DataType::Int)], "a").is_err());
    }

    #[test]
    fn plan_schema_resolution() {
        let s = PlanSchema::new(vec![
            PlanColumn::from_base("c", &Column::new("name", DataType::Text)),
            PlanColumn::from_base("m", &Column::new("name", DataType::Text)),
            PlanColumn::from_base("c", &Column::new("population", DataType::Int)),
        ]);
        assert_eq!(s.resolve(Some("c"), "name").unwrap(), 0);
        assert_eq!(s.resolve(Some("m"), "name").unwrap(), 1);
        assert_eq!(s.resolve(None, "population").unwrap(), 2);
        assert!(matches!(
            s.resolve(None, "name"),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            s.resolve(None, "zzz"),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.resolve(Some("x"), "name"),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_concatenates_and_nullable_marks() {
        let a = PlanSchema::new(vec![PlanColumn::from_base(
            "a",
            &Column::new("x", DataType::Int),
        )]);
        let b = PlanSchema::new(vec![PlanColumn::from_base(
            "b",
            &Column::new("y", DataType::Int),
        )]);
        let j = a.join(&b.as_nullable());
        assert_eq!(j.arity(), 2);
        assert!(!j.columns[0].nullable);
        assert!(j.columns[1].nullable);
    }
}
