//! Runtime values, data types and the calendar date type.

use crate::error::{EngineError, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Text,
    /// Calendar date.
    Date,
}

impl DataType {
    /// True for `Int` and `Float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Bool => "BOOL",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
        };
        write!(f, "{s}")
    }
}

/// A proleptic-Gregorian calendar date.
///
/// Stored as year/month/day with validation; ordering compares the ordinal
/// day number so dates sort chronologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating month and day ranges (leap years
    /// included).
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date> {
        if !(1..=12).contains(&month) {
            return Err(EngineError::Evaluation(format!("bad month {month}")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(EngineError::Evaluation(format!(
                "bad day {day} for {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since 0000-03-01 (an arbitrary epoch); used only for ordering
    /// and distance, so the epoch choice is invisible to callers.
    pub fn ordinal(&self) -> i64 {
        // Standard civil-from-days inverse (Howard Hinnant's algorithm).
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (i64::from(self.month) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse_iso(s: &str) -> Result<Date> {
        let mut parts = s.splitn(3, '-');
        let (y, m, d) = (parts.next(), parts.next(), parts.next());
        match (y, m, d) {
            (Some(y), Some(m), Some(d)) => {
                let year: i32 = y
                    .parse()
                    .map_err(|_| EngineError::Evaluation(format!("bad date '{s}'")))?;
                let month: u8 = m
                    .parse()
                    .map_err(|_| EngineError::Evaluation(format!("bad date '{s}'")))?;
                let day: u8 = d
                    .parse()
                    .map_err(|_| EngineError::Evaluation(format!("bad date '{s}'")))?;
                Date::new(year, month, day)
            }
            _ => Err(EngineError::Evaluation(format!("bad date '{s}'"))),
        }
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ordinal().cmp(&other.ordinal())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// A runtime value. `Null` is typeless; every other variant corresponds to
/// one [`DataType`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Text(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 for Int/Float; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrows the text payload if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality: NULL compares as unknown (`None`), otherwise values of
    /// compatible types compare; numeric types compare cross-type.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison used by `<`, `<=` etc. Returns `None` when either
    /// side is NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering for sorting and grouping: NULL sorts first, then by
    /// type, then by value. Unlike [`Value::sql_cmp`], this never fails.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn type_rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2, // same rank: numerics interleave
                Value::Text(_) => 3,
                Value::Date(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match type_rank(self).cmp(&type_rank(other)) {
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }

    /// Renders the value the way result tables print it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Text(s) => s.clone(),
            Value::Date(d) => d.to_string(),
        }
    }

    /// Attempts to cast the value to `ty`, following SQL-ish rules: numeric
    /// widening, text→anything by parsing, date↔text.
    pub fn cast_to(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(v), DataType::Float) => Ok(Value::Float(*v as f64)),
            (Value::Float(v), DataType::Int) => {
                if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 {
                    Ok(Value::Int(*v as i64))
                } else {
                    Err(EngineError::Evaluation(format!(
                        "cannot cast float {v} to INT losslessly"
                    )))
                }
            }
            (Value::Text(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| EngineError::Evaluation(format!("cannot cast '{s}' to INT"))),
            (Value::Text(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| EngineError::Evaluation(format!("cannot cast '{s}' to FLOAT"))),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "no" | "0" => Ok(Value::Bool(false)),
                _ => Err(EngineError::Evaluation(format!(
                    "cannot cast '{s}' to BOOL"
                ))),
            },
            (Value::Text(s), DataType::Date) => Date::parse_iso(s).map(Value::Date),
            (v, DataType::Text) => Ok(Value::Text(v.render())),
            (v, t) => Err(EngineError::Evaluation(format!(
                "cannot cast {} to {t}",
                v.render()
            ))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (NULL == NULL) — used by grouping, DISTINCT
        // and tests. SQL ternary equality lives in `sql_eq`.
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats share a rank in total_cmp, so equal numerics
            // must hash identically: hash via the f64 bit pattern of the
            // canonical numeric value.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                // Normalise -0.0 to 0.0 so they group together.
                let v = if *v == 0.0 { 0.0 } else { *v };
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(2020, 2, 29).is_ok()); // leap year
        assert!(Date::new(2021, 2, 29).is_err());
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-rule leap
        assert!(Date::new(1900, 2, 29).is_err()); // 100-rule non-leap
        assert!(Date::new(2021, 13, 1).is_err());
        assert!(Date::new(2021, 4, 31).is_err());
        assert!(Date::new(2021, 0, 1).is_err());
    }

    #[test]
    fn date_ordering_is_chronological() {
        let a = Date::new(1999, 12, 31).unwrap();
        let b = Date::new(2000, 1, 1).unwrap();
        assert!(a < b);
        assert_eq!(b.ordinal() - a.ordinal(), 1);
    }

    #[test]
    fn date_parse_roundtrip() {
        let d = Date::parse_iso("1961-05-08").unwrap();
        assert_eq!(d.to_string(), "1961-05-08");
        assert!(Date::parse_iso("08/05/1961").is_err());
        assert!(Date::parse_iso("nonsense").is_err());
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incompatible_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn equal_numerics_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(Value::Int(3), Value::Float(3.0));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Text("42".into()).cast_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(42).cast_to(DataType::Float).unwrap(),
            Value::Float(42.0)
        );
        assert_eq!(
            Value::Float(2.0).cast_to(DataType::Int).unwrap(),
            Value::Int(2)
        );
        assert!(Value::Float(2.5).cast_to(DataType::Int).is_err());
        assert!(Value::Text("abc".into()).cast_to(DataType::Int).is_err());
        assert_eq!(
            Value::Text("2020-01-02".into())
                .cast_to(DataType::Date)
                .unwrap(),
            Value::Date(Date::new(2020, 1, 2).unwrap())
        );
        assert!(Value::Null.cast_to(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Float(3.0).render(), "3.0");
        assert_eq!(Value::Float(3.25).render(), "3.25");
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Text("hi".into()).render(), "hi");
    }
}
