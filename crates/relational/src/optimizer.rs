//! Rule-based logical optimizer.
//!
//! Three rewrite rules, applied bottom-up to a fixed point:
//!
//! 1. **Filter merge** — `Filter(Filter(x))` becomes one conjunctive filter.
//! 2. **Predicate pushdown** — conjuncts of a filter above a cross/inner
//!    join move to the side they reference.
//! 3. **Join extraction** — equi conjuncts left above a `CrossJoin` turn it
//!    into a hash `Join` (the paper's comma-join queries rely on this).
//!
//! Pushdown matters twice here: classically for the relational executor,
//! and for Galois because predicates sitting directly above a scan are the
//! candidates for prompt pushdown (paper §6 "Query optimization").

use crate::builder::{split_conjuncts, split_join_condition};
use crate::expr::ScalarExpr;
use crate::plan::LogicalPlan;
use galois_sql::ast::{BinaryOp, JoinType};

/// Optimizes a logical plan.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    // The rule set strictly reduces the number of Filter/CrossJoin nodes,
    // so a small fixed iteration bound suffices.
    for _ in 0..8 {
        let next = rewrite(plan.clone());
        if next == plan {
            return next;
        }
        plan = next;
    }
    plan
}

fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    // Bottom-up: rewrite children first.
    let plan = map_children(plan, rewrite);
    match plan {
        LogicalPlan::Filter { input, predicate } => rewrite_filter(*input, predicate),
        other => other,
    }
}

fn map_children(plan: LogicalPlan, f: impl Fn(LogicalPlan) -> LogicalPlan + Copy) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join_type,
            condition,
            schema,
        },
        LogicalPlan::CrossJoin {
            left,
            right,
            schema,
        } => LogicalPlan::CrossJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Limit { input, n, offset } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
            offset,
        },
    }
}

fn and_all(mut conjuncts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    let first = conjuncts.pop()?;
    Some(
        conjuncts
            .into_iter()
            .rev()
            .fold(first, |acc, c| ScalarExpr::Binary {
                left: Box::new(c),
                op: BinaryOp::And,
                right: Box::new(acc),
            }),
    )
}

fn filter_over(input: LogicalPlan, conjuncts: Vec<ScalarExpr>) -> LogicalPlan {
    match and_all(conjuncts) {
        Some(predicate) => LogicalPlan::Filter {
            input: Box::new(input),
            predicate,
        },
        None => input,
    }
}

fn rewrite_filter(input: LogicalPlan, predicate: ScalarExpr) -> LogicalPlan {
    match input {
        // Rule 1: merge stacked filters.
        LogicalPlan::Filter {
            input: inner,
            predicate: inner_pred,
        } => {
            let mut conjuncts = split_conjuncts(inner_pred);
            conjuncts.extend(split_conjuncts(predicate));
            rewrite(filter_over(*inner, conjuncts))
        }
        // Rules 2+3: push into / convert a cross join.
        LogicalPlan::CrossJoin {
            left,
            right,
            schema,
        } => {
            let left_arity = left.schema().arity();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut across = Vec::new();
            for conj in split_conjuncts(predicate) {
                let refs = conj.referenced_indices();
                if refs.iter().all(|&i| i < left_arity) && !refs.is_empty() {
                    to_left.push(conj);
                } else if refs.iter().all(|&i| i >= left_arity) && !refs.is_empty() {
                    to_right.push(conj.remap_indices(&|i| i - left_arity));
                } else {
                    across.push(conj);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                rewrite(filter_over(*left, to_left))
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                rewrite(filter_over(*right, to_right))
            };

            if across.is_empty() {
                return LogicalPlan::CrossJoin {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    schema,
                };
            }
            // Extract equi conjuncts from the cross-side predicate. If no
            // hash keys emerge the join keeps a residual-only condition and
            // the executor falls back to a nested loop.
            let combined = and_all(across).expect("non-empty");
            let condition = split_join_condition(combined, left_arity);
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                join_type: JoinType::Inner,
                condition,
                schema,
            }
        }
        // Push a filter above an inner join into the join's sides/condition.
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            condition,
            schema,
        } => {
            let left_arity = left.schema().arity();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut across = Vec::new();
            for conj in split_conjuncts(predicate) {
                let refs = conj.referenced_indices();
                if refs.iter().all(|&i| i < left_arity) && !refs.is_empty() {
                    to_left.push(conj);
                } else if refs.iter().all(|&i| i >= left_arity) && !refs.is_empty() {
                    to_right.push(conj.remap_indices(&|i| i - left_arity));
                } else {
                    across.push(conj);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                rewrite(filter_over(*left, to_left))
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                rewrite(filter_over(*right, to_right))
            };
            let mut condition = condition;
            if let Some(extra) = and_all(across) {
                let extra_cond = split_join_condition(extra, left_arity);
                condition.equi.extend(extra_cond.equi);
                condition.residual = match (condition.residual, extra_cond.residual) {
                    (None, r) => r,
                    (l, None) => l,
                    (Some(l), Some(r)) => Some(ScalarExpr::Binary {
                        left: Box::new(l),
                        op: BinaryOp::And,
                        right: Box::new(r),
                    }),
                };
            }
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                join_type: JoinType::Inner,
                condition,
                schema,
            }
        }
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Counts operators of each kind — handy for tests and plan statistics.
pub fn plan_stats(plan: &LogicalPlan) -> PlanStats {
    let mut stats = PlanStats::default();
    fn rec(p: &LogicalPlan, s: &mut PlanStats) {
        match p {
            LogicalPlan::Scan { .. } => s.scans += 1,
            LogicalPlan::Filter { .. } => s.filters += 1,
            LogicalPlan::Project { .. } => s.projects += 1,
            LogicalPlan::Join { .. } => s.joins += 1,
            LogicalPlan::CrossJoin { .. } => s.cross_joins += 1,
            LogicalPlan::Aggregate { .. } => s.aggregates += 1,
            LogicalPlan::Sort { .. } => s.sorts += 1,
            LogicalPlan::Distinct { .. } => s.distincts += 1,
            LogicalPlan::Limit { .. } => s.limits += 1,
        }
        for c in p.children() {
            rec(c, s);
        }
    }
    rec(plan, &mut stats);
    stats
}

/// Operator counts of a plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of `Scan` nodes.
    pub scans: usize,
    /// Number of `Filter` nodes.
    pub filters: usize,
    /// Number of `Project` nodes.
    pub projects: usize,
    /// Number of `Join` nodes.
    pub joins: usize,
    /// Number of `CrossJoin` nodes.
    pub cross_joins: usize,
    /// Number of `Aggregate` nodes.
    pub aggregates: usize,
    /// Number of `Sort` nodes.
    pub sorts: usize,
    /// Number of `Distinct` nodes.
    pub distincts: usize,
    /// Number of `Limit` nodes.
    pub limits: usize,
}
