//! Plan builder: resolves an AST [`SelectStatement`] against a catalog and
//! produces a [`LogicalPlan`].
//!
//! The builder performs name resolution, type checking, aggregate
//! extraction and the SELECT-list/ORDER-BY rewrite. Sorting happens over a
//! projection that may carry *hidden* columns (sort keys not in the SELECT
//! list); a final projection strips them.

use crate::error::{EngineError, Result};
use crate::expr::{ResolvedColumn, ScalarExpr};
use crate::plan::{aggregate_schema, AggCall, AggFunc, JoinCondition, LogicalPlan, SortKey};
use crate::schema::{PlanColumn, PlanSchema};
use crate::table::Catalog;
use galois_sql::ast::{self, Expr as AstExpr, FunctionArgs, JoinType, SelectItem, SelectStatement};

/// Plans a SELECT statement against `catalog`.
pub fn plan_select(stmt: &SelectStatement, catalog: &Catalog) -> Result<LogicalPlan> {
    Builder { catalog }.plan(stmt)
}

struct Builder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Builder<'a> {
    fn plan(&self, stmt: &SelectStatement) -> Result<LogicalPlan> {
        if stmt.from.is_empty() {
            return self.plan_table_less(stmt);
        }

        // FROM: comma-separated relations become cross joins.
        let mut plan = self.scan(&stmt.from[0])?;
        self.check_unique_bindings(stmt)?;
        for t in &stmt.from[1..] {
            let right = self.scan(t)?;
            let schema = plan.schema().join(&right.schema());
            plan = LogicalPlan::CrossJoin {
                left: Box::new(plan),
                right: Box::new(right),
                schema,
            };
        }

        // Explicit JOIN … ON clauses.
        for join in &stmt.joins {
            let right = self.scan(&join.table)?;
            plan = self.build_join(plan, right, join.join_type, &join.on)?;
        }

        // WHERE.
        if let Some(w) = &stmt.where_clause {
            let predicate = compile_expr(w, &plan.schema(), ExprContext::Scalar)?;
            require_boolean(&predicate, "WHERE")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        if stmt.is_aggregate_query() {
            self.plan_aggregate(stmt, plan)
        } else {
            self.plan_projection(stmt, plan)
        }
    }

    /// `SELECT 1 + 2` style statements: a single empty row flows through a
    /// projection. Modelled as a scan-less project.
    fn plan_table_less(&self, stmt: &SelectStatement) -> Result<LogicalPlan> {
        let empty = PlanSchema::default();
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let compiled = compile_expr(expr, &empty, ExprContext::Scalar)?;
                    let name = alias.clone().unwrap_or_else(|| expr.to_string());
                    cols.push(PlanColumn::computed(name.clone(), compiled.data_type()));
                    exprs.push((compiled, name));
                }
                _ => {
                    return Err(EngineError::InvalidQuery(
                        "wildcard without FROM clause".into(),
                    ));
                }
            }
        }
        // A scan with an empty table name is the "dual" relation: the
        // executor produces a single empty row for it.
        Ok(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                table: String::new(),
                binding: String::new(),
                source: None,
                schema: PlanSchema::default(),
                key_index: 0,
            }),
            exprs,
            schema: PlanSchema::new(cols),
        })
    }

    fn check_unique_bindings(&self, stmt: &SelectStatement) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for t in stmt.tables() {
            if !seen.insert(t.binding().to_ascii_lowercase()) {
                return Err(EngineError::InvalidQuery(format!(
                    "duplicate table binding '{}'",
                    t.binding()
                )));
            }
        }
        Ok(())
    }

    fn scan(&self, t: &ast::TableRef) -> Result<LogicalPlan> {
        let table = self.catalog.get(&t.name)?;
        let binding = t.binding().to_string();
        Ok(LogicalPlan::Scan {
            table: table.name.clone(),
            binding: binding.clone(),
            source: t.source,
            schema: table.plan_schema(&binding),
            key_index: table.schema.key,
        })
    }

    fn build_join(
        &self,
        left: LogicalPlan,
        right: LogicalPlan,
        join_type: JoinType,
        on: &AstExpr,
    ) -> Result<LogicalPlan> {
        let left_schema = left.schema();
        let right_schema = right.schema();
        let concat = match join_type {
            JoinType::Inner => left_schema.join(&right_schema),
            JoinType::LeftOuter => left_schema.join(&right_schema.as_nullable()),
        };
        let predicate = compile_expr(on, &concat, ExprContext::Scalar)?;
        require_boolean(&predicate, "JOIN ON")?;
        let condition = split_join_condition(predicate, left_schema.arity());
        Ok(LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            join_type,
            condition,
            schema: concat,
        })
    }

    fn plan_projection(&self, stmt: &SelectStatement, input: LogicalPlan) -> Result<LogicalPlan> {
        let input_schema = input.schema();

        // Expand the SELECT list.
        let mut visible: Vec<(ScalarExpr, String, Option<String>)> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in input_schema.columns.iter().enumerate() {
                        visible.push((column_expr(i, c), c.name.clone(), None));
                    }
                }
                SelectItem::QualifiedWildcard(binding) => {
                    let mut any = false;
                    for (i, c) in input_schema.columns.iter().enumerate() {
                        if c.binding
                            .as_deref()
                            .is_some_and(|b| b.eq_ignore_ascii_case(binding))
                        {
                            visible.push((column_expr(i, c), c.name.clone(), None));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::UnknownTable(binding.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let compiled = compile_expr(expr, &input_schema, ExprContext::Scalar)?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    visible.push((compiled, name, alias.clone()));
                }
            }
        }

        // ORDER BY keys: reuse a visible column when possible, otherwise
        // append a hidden one.
        let mut hidden: Vec<(ScalarExpr, String)> = Vec::new();
        let mut sort_keys = Vec::new();
        for o in &stmt.order_by {
            let compiled = self.resolve_order_key(&o.expr, &visible, &input_schema, None)?;
            let index = match visible.iter().position(|(e, _, _)| *e == compiled) {
                Some(i) => i,
                None => {
                    let idx = visible.len() + hidden.len();
                    hidden.push((compiled, format!("__sort_{}", hidden.len())));
                    idx
                }
            };
            sort_keys.push(SortKey {
                index,
                direction: o.direction,
            });
        }
        if stmt.distinct && !hidden.is_empty() {
            return Err(EngineError::InvalidQuery(
                "for SELECT DISTINCT, ORDER BY expressions must appear in the select list".into(),
            ));
        }

        Ok(assemble(input, visible, hidden, sort_keys, stmt))
    }

    fn plan_aggregate(&self, stmt: &SelectStatement, input: LogicalPlan) -> Result<LogicalPlan> {
        let input_schema = input.schema();

        // Group keys.
        let mut group_by: Vec<(ScalarExpr, String)> = Vec::new();
        let mut group_asts: Vec<AstExpr> = Vec::new();
        for g in &stmt.group_by {
            if g.contains_aggregate() {
                return Err(EngineError::InvalidQuery(
                    "aggregate function in GROUP BY".into(),
                ));
            }
            let compiled = compile_expr(g, &input_schema, ExprContext::Scalar)?;
            group_by.push((compiled, default_name(g)));
            group_asts.push(g.clone());
        }

        // Aggregate calls from SELECT, HAVING and ORDER BY.
        let mut calls: Vec<(String, AggCall)> = Vec::new();
        let mut collect =
            |e: &AstExpr| -> Result<()> { collect_aggregates(e, &input_schema, &mut calls) };
        for item in &stmt.items {
            match item {
                SelectItem::Expr { expr, .. } => collect(expr)?,
                _ => {
                    return Err(EngineError::InvalidQuery(
                        "wildcard in aggregate query".into(),
                    ));
                }
            }
        }
        if let Some(h) = &stmt.having {
            collect(h)?;
        }
        for o in &stmt.order_by {
            collect(&o.expr)?;
        }

        let aggregates: Vec<AggCall> = calls.iter().map(|(_, c)| c.clone()).collect();
        let agg_keys: Vec<String> = calls.into_iter().map(|(k, _)| k).collect();
        let schema = aggregate_schema(&group_by, &aggregates);
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: group_by.clone(),
            aggregates,
            schema: schema.clone(),
        };

        let rewriter = PostAggRewriter {
            input_schema: &input_schema,
            group_by: &group_by,
            group_asts: &group_asts,
            agg_keys: &agg_keys,
            agg_schema: &schema,
        };

        // HAVING.
        if let Some(h) = &stmt.having {
            let predicate = rewriter.rewrite(h)?;
            require_boolean(&predicate, "HAVING")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // SELECT list over the aggregate output.
        let mut visible: Vec<(ScalarExpr, String, Option<String>)> = Vec::new();
        for item in &stmt.items {
            if let SelectItem::Expr { expr, alias } = item {
                let compiled = rewriter.rewrite(expr)?;
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                visible.push((compiled, name, alias.clone()));
            }
        }

        // ORDER BY.
        let mut hidden: Vec<(ScalarExpr, String)> = Vec::new();
        let mut sort_keys = Vec::new();
        for o in &stmt.order_by {
            let compiled = self.resolve_order_key(&o.expr, &visible, &schema, Some(&rewriter))?;
            let index = match visible.iter().position(|(e, _, _)| *e == compiled) {
                Some(i) => i,
                None => {
                    let idx = visible.len() + hidden.len();
                    hidden.push((compiled, format!("__sort_{}", hidden.len())));
                    idx
                }
            };
            sort_keys.push(SortKey {
                index,
                direction: o.direction,
            });
        }
        if stmt.distinct && !hidden.is_empty() {
            return Err(EngineError::InvalidQuery(
                "for SELECT DISTINCT, ORDER BY expressions must appear in the select list".into(),
            ));
        }

        Ok(assemble(plan, visible, hidden, sort_keys, stmt))
    }

    /// Resolves an ORDER BY expression: an alias of a visible column wins,
    /// then ordinary compilation (post-aggregate rewrite in agg queries).
    fn resolve_order_key(
        &self,
        expr: &AstExpr,
        visible: &[(ScalarExpr, String, Option<String>)],
        schema: &PlanSchema,
        rewriter: Option<&PostAggRewriter<'_>>,
    ) -> Result<ScalarExpr> {
        if let AstExpr::Column(c) = expr {
            if c.table.is_none() {
                if let Some((e, _, _)) = visible.iter().find(|(_, _, alias)| {
                    alias
                        .as_deref()
                        .is_some_and(|a| a.eq_ignore_ascii_case(&c.column))
                }) {
                    return Ok(e.clone());
                }
            }
        }
        match rewriter {
            Some(r) => r.rewrite(expr),
            None => compile_expr(expr, schema, ExprContext::Scalar),
        }
    }
}

/// Shared tail: Project(visible ++ hidden) → Distinct? → Sort? → Limit? →
/// strip-Project (drop hidden columns).
fn assemble(
    input: LogicalPlan,
    visible: Vec<(ScalarExpr, String, Option<String>)>,
    hidden: Vec<(ScalarExpr, String)>,
    sort_keys: Vec<SortKey>,
    stmt: &SelectStatement,
) -> LogicalPlan {
    let visible_len = visible.len();
    let mut exprs: Vec<(ScalarExpr, String)> =
        visible.into_iter().map(|(e, n, _)| (e, n)).collect();
    exprs.extend(hidden);

    let cols: Vec<PlanColumn> = exprs
        .iter()
        .map(|(e, n)| {
            let binding = match e {
                ScalarExpr::Column(c) => c.binding.clone(),
                _ => None,
            };
            PlanColumn {
                binding,
                name: n.clone(),
                data_type: e.data_type(),
                nullable: true,
            }
        })
        .collect();
    let full_schema = PlanSchema::new(cols);
    let stripped_schema = PlanSchema::new(full_schema.columns[..visible_len].to_vec());
    let had_hidden = exprs.len() > visible_len;

    let mut plan = LogicalPlan::Project {
        input: Box::new(input),
        exprs,
        schema: full_schema.clone(),
    };
    if stmt.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    if !sort_keys.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: sort_keys,
        };
    }
    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
            offset: stmt.offset.unwrap_or(0),
        };
    }
    if had_hidden {
        let strip: Vec<(ScalarExpr, String)> = full_schema.columns[..visible_len]
            .iter()
            .enumerate()
            .map(|(i, c)| (column_expr(i, c), c.name.clone()))
            .collect();
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: strip,
            schema: stripped_schema,
        };
    }
    plan
}

fn column_expr(index: usize, c: &PlanColumn) -> ScalarExpr {
    ScalarExpr::Column(ResolvedColumn {
        index,
        binding: c.binding.clone(),
        name: c.name.clone(),
        data_type: c.data_type,
    })
}

fn default_name(expr: &AstExpr) -> String {
    match expr {
        AstExpr::Column(c) => c.column.clone(),
        other => other.to_string(),
    }
}

fn require_boolean(expr: &ScalarExpr, clause: &str) -> Result<()> {
    if expr.data_type() == crate::value::DataType::Bool {
        Ok(())
    } else {
        Err(EngineError::TypeMismatch(format!(
            "{clause} must be a boolean expression"
        )))
    }
}

/// What kind of expression is being compiled (controls aggregate rejection).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum ExprContext {
    /// Plain scalar context — aggregates are rejected.
    Scalar,
}

/// Compiles an AST expression against a schema (no aggregates allowed).
pub fn compile_expr(expr: &AstExpr, schema: &PlanSchema, _ctx: ExprContext) -> Result<ScalarExpr> {
    match expr {
        AstExpr::Column(c) => {
            let idx = schema.resolve(c.table.as_deref(), &c.column)?;
            Ok(column_expr(idx, &schema.columns[idx]))
        }
        AstExpr::Literal(l) => Ok(ScalarExpr::Literal(literal_value(l))),
        AstExpr::Unary { op, expr } => Ok(ScalarExpr::Unary {
            op: *op,
            expr: Box::new(compile_expr(expr, schema, _ctx)?),
        }),
        AstExpr::Binary { left, op, right } => {
            let l = compile_expr(left, schema, _ctx)?;
            let r = compile_expr(right, schema, _ctx)?;
            check_binary_types(&l, *op, &r)?;
            Ok(ScalarExpr::Binary {
                left: Box::new(l),
                op: *op,
                right: Box::new(r),
            })
        }
        AstExpr::Function { name, .. } => {
            if ast::is_aggregate_name(name) {
                Err(EngineError::InvalidQuery(format!(
                    "aggregate {name} not allowed here"
                )))
            } else {
                Err(EngineError::InvalidQuery(format!(
                    "unknown function {name}"
                )))
            }
        }
        AstExpr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
            expr: Box::new(compile_expr(expr, schema, _ctx)?),
            negated: *negated,
        }),
        AstExpr::InList {
            expr,
            list,
            negated,
        } => Ok(ScalarExpr::InList {
            expr: Box::new(compile_expr(expr, schema, _ctx)?),
            list: list
                .iter()
                .map(|e| compile_expr(e, schema, _ctx))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(ScalarExpr::Between {
            expr: Box::new(compile_expr(expr, schema, _ctx)?),
            low: Box::new(compile_expr(low, schema, _ctx)?),
            high: Box::new(compile_expr(high, schema, _ctx)?),
            negated: *negated,
        }),
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(ScalarExpr::Like {
            expr: Box::new(compile_expr(expr, schema, _ctx)?),
            pattern: Box::new(compile_expr(pattern, schema, _ctx)?),
            negated: *negated,
        }),
    }
}

fn literal_value(l: &ast::Literal) -> crate::value::Value {
    use crate::value::Value;
    match l {
        ast::Literal::Integer(v) => Value::Int(*v),
        ast::Literal::Float(v) => Value::Float(*v),
        ast::Literal::String(s) => Value::Text(s.clone()),
        ast::Literal::Boolean(b) => Value::Bool(*b),
        ast::Literal::Null => Value::Null,
    }
}

fn check_binary_types(l: &ScalarExpr, op: galois_sql::ast::BinaryOp, r: &ScalarExpr) -> Result<()> {
    use crate::value::DataType::*;
    use galois_sql::ast::BinaryOp as B;
    let lt = l.data_type();
    let rt = r.data_type();
    // NULL literals type as Text by default; skip static checks when either
    // side is a bare NULL literal.
    let null_involved = matches!(l, ScalarExpr::Literal(v) if v.is_null())
        || matches!(r, ScalarExpr::Literal(v) if v.is_null());
    if null_involved {
        return Ok(());
    }
    let ok = match op {
        B::And | B::Or => lt == Bool && rt == Bool,
        B::Add | B::Sub | B::Mul | B::Div => lt.is_numeric() && rt.is_numeric(),
        B::Mod => lt == Int && rt == Int,
        _ if op.is_comparison() => lt == rt || (lt.is_numeric() && rt.is_numeric()),
        _ => true,
    };
    if ok {
        Ok(())
    } else {
        Err(EngineError::TypeMismatch(format!(
            "operator {op} cannot combine {lt} and {rt}"
        )))
    }
}

/// Splits a join predicate (over the concatenated schema) into equi pairs
/// and a residual, with each equi side remapped to its own input.
pub fn split_join_condition(predicate: ScalarExpr, left_arity: usize) -> JoinCondition {
    let mut equi = Vec::new();
    let mut residual: Option<ScalarExpr> = None;
    for conj in split_conjuncts(predicate) {
        match try_equi(&conj, left_arity) {
            Some(pair) => equi.push(pair),
            None => {
                residual = Some(match residual {
                    None => conj,
                    Some(prev) => ScalarExpr::Binary {
                        left: Box::new(prev),
                        op: galois_sql::ast::BinaryOp::And,
                        right: Box::new(conj),
                    },
                });
            }
        }
    }
    JoinCondition { equi, residual }
}

/// Flattens nested ANDs into a conjunct list.
pub fn split_conjuncts(expr: ScalarExpr) -> Vec<ScalarExpr> {
    match expr {
        ScalarExpr::Binary {
            left,
            op: galois_sql::ast::BinaryOp::And,
            right,
        } => {
            let mut v = split_conjuncts(*left);
            v.extend(split_conjuncts(*right));
            v
        }
        other => vec![other],
    }
}

fn try_equi(conj: &ScalarExpr, left_arity: usize) -> Option<(ScalarExpr, ScalarExpr)> {
    let ScalarExpr::Binary {
        left,
        op: galois_sql::ast::BinaryOp::Eq,
        right,
    } = conj
    else {
        return None;
    };
    let l_refs = left.referenced_indices();
    let r_refs = right.referenced_indices();
    if l_refs.is_empty() || r_refs.is_empty() {
        return None;
    }
    let all_left = |v: &[usize]| v.iter().all(|&i| i < left_arity);
    let all_right = |v: &[usize]| v.iter().all(|&i| i >= left_arity);
    if all_left(&l_refs) && all_right(&r_refs) {
        Some(((**left).clone(), right.remap_indices(&|i| i - left_arity)))
    } else if all_right(&l_refs) && all_left(&r_refs) {
        Some(((**right).clone(), left.remap_indices(&|i| i - left_arity)))
    } else {
        None
    }
}

fn collect_aggregates(
    expr: &AstExpr,
    input_schema: &PlanSchema,
    out: &mut Vec<(String, AggCall)>,
) -> Result<()> {
    match expr {
        AstExpr::Function {
            name,
            distinct,
            args,
        } if ast::is_aggregate_name(name) => {
            let func = AggFunc::from_name(name).expect("checked by is_aggregate_name");
            let key = expr.to_string();
            if out.iter().any(|(k, _)| k == &key) {
                return Ok(());
            }
            let arg = match args {
                FunctionArgs::Star => {
                    if func != AggFunc::Count {
                        return Err(EngineError::InvalidQuery(format!("{name}(*) is not valid")));
                    }
                    None
                }
                FunctionArgs::Exprs(exprs) => {
                    if exprs.len() != 1 {
                        return Err(EngineError::InvalidQuery(format!(
                            "{name} takes exactly one argument"
                        )));
                    }
                    if exprs[0].contains_aggregate() {
                        return Err(EngineError::InvalidQuery(
                            "nested aggregate functions".into(),
                        ));
                    }
                    Some(compile_expr(&exprs[0], input_schema, ExprContext::Scalar)?)
                }
            };
            if let Some(a) = &arg {
                let at = a.data_type();
                if matches!(func, AggFunc::Sum | AggFunc::Avg) && !at.is_numeric() {
                    return Err(EngineError::TypeMismatch(format!(
                        "{name} expects a numeric argument, got {at}"
                    )));
                }
            }
            out.push((
                key.clone(),
                AggCall {
                    func,
                    arg,
                    distinct: *distinct,
                    output_name: key,
                },
            ));
            Ok(())
        }
        _ => {
            // Recurse into children looking for aggregates.
            let mut result = Ok(());
            expr.walk(&mut |e| {
                if result.is_err() || std::ptr::eq(e, expr) {
                    return;
                }
                if let AstExpr::Function { name, .. } = e {
                    if ast::is_aggregate_name(name) {
                        result = collect_aggregates(e, input_schema, out);
                    }
                }
            });
            result
        }
    }
}

/// Rewrites post-aggregation expressions (SELECT list, HAVING, ORDER BY of
/// an aggregate query) against the aggregate's output schema.
struct PostAggRewriter<'a> {
    input_schema: &'a PlanSchema,
    group_by: &'a [(ScalarExpr, String)],
    group_asts: &'a [AstExpr],
    agg_keys: &'a [String],
    agg_schema: &'a PlanSchema,
}

impl PostAggRewriter<'_> {
    fn rewrite(&self, expr: &AstExpr) -> Result<ScalarExpr> {
        // 1. A whole expression that matches a GROUP BY key becomes a
        //    column reference into the aggregate output.
        if let Some(i) = self.match_group_key(expr)? {
            return Ok(column_expr(i, &self.agg_schema.columns[i]));
        }
        // 2. An aggregate call resolves to its output column.
        if let AstExpr::Function { name, .. } = expr {
            if ast::is_aggregate_name(name) {
                let key = expr.to_string();
                let pos = self
                    .agg_keys
                    .iter()
                    .position(|k| k == &key)
                    .expect("collected beforehand");
                let i = self.group_by.len() + pos;
                return Ok(column_expr(i, &self.agg_schema.columns[i]));
            }
        }
        // 3. Otherwise recurse structurally.
        match expr {
            AstExpr::Column(c) => Err(EngineError::InvalidQuery(format!(
                "column '{}' must appear in GROUP BY or inside an aggregate",
                c
            ))),
            AstExpr::Literal(l) => Ok(ScalarExpr::Literal(literal_value(l))),
            AstExpr::Unary { op, expr } => Ok(ScalarExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite(expr)?),
            }),
            AstExpr::Binary { left, op, right } => {
                let l = self.rewrite(left)?;
                let r = self.rewrite(right)?;
                check_binary_types(&l, *op, &r)?;
                Ok(ScalarExpr::Binary {
                    left: Box::new(l),
                    op: *op,
                    right: Box::new(r),
                })
            }
            AstExpr::Function { .. } => unreachable!("aggregates handled above"),
            AstExpr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.rewrite(expr)?),
                negated: *negated,
            }),
            AstExpr::InList {
                expr,
                list,
                negated,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list
                    .iter()
                    .map(|e| self.rewrite(e))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(ScalarExpr::Between {
                expr: Box::new(self.rewrite(expr)?),
                low: Box::new(self.rewrite(low)?),
                high: Box::new(self.rewrite(high)?),
                negated: *negated,
            }),
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.rewrite(expr)?),
                pattern: Box::new(self.rewrite(pattern)?),
                negated: *negated,
            }),
        }
    }

    /// Does `expr` denote one of the GROUP BY keys? Compared by compiling
    /// against the *input* schema, so `country` and `c.country` unify.
    fn match_group_key(&self, expr: &AstExpr) -> Result<Option<usize>> {
        // Cheap syntactic check first.
        for (i, g) in self.group_asts.iter().enumerate() {
            if g == expr {
                return Ok(Some(i));
            }
        }
        if expr.contains_aggregate() {
            return Ok(None);
        }
        let Ok(compiled) = compile_expr(expr, self.input_schema, ExprContext::Scalar) else {
            return Ok(None);
        };
        for (i, (g, _)) in self.group_by.iter().enumerate() {
            if *g == compiled {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }
}
