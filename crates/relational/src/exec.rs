//! Physical execution of logical plans over the in-memory catalog.
//!
//! Execution is operator-at-a-time with materialised intermediates: each
//! node consumes its children's [`Relation`]s and produces one. Joins hash
//! on equi keys when available and fall back to nested loops; aggregation
//! is hash-based with optional per-group DISTINCT sets.

use crate::error::{EngineError, Result};
use crate::expr::ScalarExpr;
use crate::plan::{AggCall, AggFunc, JoinCondition, LogicalPlan, SortKey};
use crate::schema::PlanSchema;
use crate::table::{Catalog, Row};
use crate::value::Value;
use galois_sql::ast::{JoinType, SortDirection};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A materialised query result: schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output schema.
    pub schema: PlanSchema,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: PlanSchema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.schema.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Renders an ASCII table (for examples and demos).
    pub fn to_table_string(&self) -> String {
        let headers = self.column_names();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = sep(&widths);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep(&widths));
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep(&widths));
        out.push_str(&format!(
            "{} row{}\n",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" }
        ));
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string())
    }
}

/// Executes `plan` against `catalog`.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan { table, schema, .. } => {
            if table.is_empty() {
                // "dual": one empty row feeding table-less SELECTs.
                return Ok(Relation {
                    schema: schema.clone(),
                    rows: vec![Vec::new()],
                });
            }
            let t = catalog.get(table)?;
            Ok(Relation {
                schema: schema.clone(),
                rows: t.rows().to_vec(),
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let rel = execute(input, catalog)?;
            let mut rows = Vec::with_capacity(rel.rows.len() / 2);
            for row in rel.rows {
                if predicate.eval_predicate(&row)? {
                    rows.push(row);
                }
            }
            Ok(Relation {
                schema: rel.schema,
                rows,
            })
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let rel = execute(input, catalog)?;
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in &rel.rows {
                let mut out = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    out.push(e.eval(row)?);
                }
                rows.push(out);
            }
            Ok(Relation {
                schema: schema.clone(),
                rows,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
            schema,
        } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            join(&l, &r, *join_type, condition, schema)
        }
        LogicalPlan::CrossJoin {
            left,
            right,
            schema,
        } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            let mut rows = Vec::with_capacity(l.rows.len() * r.rows.len());
            for lr in &l.rows {
                for rr in &r.rows {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    rows.push(row);
                }
            }
            Ok(Relation {
                schema: schema.clone(),
                rows,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            schema,
        } => {
            let rel = execute(input, catalog)?;
            aggregate(&rel, group_by, aggregates, schema)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rel = execute(input, catalog)?;
            sort_rows(&mut rel.rows, keys);
            Ok(rel)
        }
        LogicalPlan::Distinct { input } => {
            let rel = execute(input, catalog)?;
            let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(rel.rows.len());
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in rel.rows {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            Ok(Relation {
                schema: rel.schema,
                rows,
            })
        }
        LogicalPlan::Limit { input, n, offset } => {
            let mut rel = execute(input, catalog)?;
            if *offset > 0 {
                rel.rows.drain(..(*offset as usize).min(rel.rows.len()));
            }
            rel.rows.truncate(*n as usize);
            Ok(rel)
        }
    }
}

/// Sorts rows in place by the given keys (stable, NULLs first).
pub fn sort_rows(rows: &mut [Row], keys: &[SortKey]) {
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a[k.index].total_cmp(&b[k.index]);
            let ord = if k.direction == SortDirection::Desc {
                ord.reverse()
            } else {
                ord
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn join(
    l: &Relation,
    r: &Relation,
    join_type: JoinType,
    condition: &JoinCondition,
    schema: &PlanSchema,
) -> Result<Relation> {
    let mut rows = Vec::new();
    if condition.equi.is_empty() {
        // Nested loop with the residual predicate.
        for lr in &l.rows {
            let mut matched = false;
            for rr in &r.rows {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                let ok = match &condition.residual {
                    Some(p) => p.eval_predicate(&row)?,
                    None => true,
                };
                if ok {
                    matched = true;
                    rows.push(row);
                }
            }
            if !matched && join_type == JoinType::LeftOuter {
                let mut row = lr.clone();
                row.extend(std::iter::repeat_n(Value::Null, r.schema.arity()));
                rows.push(row);
            }
        }
    } else {
        // Hash join: build on the right, probe from the left.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.rows.len());
        for (i, rr) in r.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(condition.equi.len());
            let mut has_null = false;
            for (_, rk) in &condition.equi {
                let v = rk.eval(rr)?;
                has_null |= v.is_null();
                key.push(v);
            }
            if !has_null {
                table.entry(key).or_default().push(i);
            }
        }
        for lr in &l.rows {
            let mut key = Vec::with_capacity(condition.equi.len());
            let mut has_null = false;
            for (lk, _) in &condition.equi {
                let v = lk.eval(lr)?;
                has_null |= v.is_null();
                key.push(v);
            }
            let mut matched = false;
            if !has_null {
                if let Some(candidates) = table.get(&key) {
                    for &i in candidates {
                        let mut row = lr.clone();
                        row.extend(r.rows[i].iter().cloned());
                        let ok = match &condition.residual {
                            Some(p) => p.eval_predicate(&row)?,
                            None => true,
                        };
                        if ok {
                            matched = true;
                            rows.push(row);
                        }
                    }
                }
            }
            if !matched && join_type == JoinType::LeftOuter {
                let mut row = lr.clone();
                row.extend(std::iter::repeat_n(Value::Null, r.schema.arity()));
                rows.push(row);
            }
        }
    }
    Ok(Relation {
        schema: schema.clone(),
        rows,
    })
}

/// Accumulator for one aggregate call in one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(Option<i64>),
    SumFloat(Option<f64>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        match call.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match call.output_type() {
                crate::value::DataType::Float => AggState::SumFloat(None),
                _ => AggState::SumInt(None),
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc) => {
                let Value::Int(i) = v else {
                    return Err(EngineError::TypeMismatch(format!(
                        "SUM expected INT, got {}",
                        v.render()
                    )));
                };
                let cur = acc.unwrap_or(0);
                *acc = Some(
                    cur.checked_add(*i)
                        .ok_or_else(|| EngineError::Evaluation("SUM overflow".into()))?,
                );
            }
            AggState::SumFloat(acc) => {
                let f = v.as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("SUM expected number, got {}", v.render()))
                })?;
                *acc = Some(acc.unwrap_or(0.0) + f);
            }
            AggState::Avg { sum, n } => {
                let f = v.as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("AVG expected number, got {}", v.render()))
                })?;
                *sum += f;
                *n += 1;
            }
            AggState::Min(acc) => {
                let better = match acc {
                    None => true,
                    Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                };
                if better {
                    *acc = Some(v.clone());
                }
            }
            AggState::Max(acc) => {
                let better = match acc {
                    None => true,
                    Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                };
                if better {
                    *acc = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(acc) => acc.map(Value::Int).unwrap_or(Value::Null),
            AggState::SumFloat(acc) => acc.map(Value::Float).unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(acc) | AggState::Max(acc) => acc.unwrap_or(Value::Null),
        }
    }
}

struct GroupAcc {
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<Value>>>,
}

fn aggregate(
    rel: &Relation,
    group_by: &[(ScalarExpr, String)],
    aggregates: &[AggCall],
    schema: &PlanSchema,
) -> Result<Relation> {
    let new_group = || GroupAcc {
        states: aggregates.iter().map(AggState::new).collect(),
        distinct_seen: aggregates
            .iter()
            .map(|a| {
                if a.distinct {
                    Some(HashSet::new())
                } else {
                    None
                }
            })
            .collect(),
    };

    // Keyed accumulation; insertion order preserved for stable output.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, GroupAcc> = HashMap::new();

    for row in &rel.rows {
        let mut key = Vec::with_capacity(group_by.len());
        for (g, _) in group_by {
            key.push(g.eval(row)?);
        }
        let acc = match groups.get_mut(&key) {
            Some(acc) => acc,
            None => {
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(new_group)
            }
        };
        for (i, call) in aggregates.iter().enumerate() {
            let v = match &call.arg {
                Some(e) => e.eval(row)?,
                None => Value::Int(1), // COUNT(*): any non-null marker
            };
            if let Some(seen) = &mut acc.distinct_seen[i] {
                if v.is_null() || !seen.insert(v.clone()) {
                    continue;
                }
            }
            acc.states[i].update(&v)?;
        }
    }

    // A global aggregate (no GROUP BY) over empty input yields one row.
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), new_group());
    }

    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let acc = groups.remove(&key).expect("group recorded");
        let mut row = key;
        for st in acc.states {
            row.push(st.finish());
        }
        rows.push(row);
    }
    Ok(Relation {
        schema: schema.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ResolvedColumn;
    use crate::schema::PlanColumn;
    use crate::value::DataType;

    fn rel(names: &[&str], rows: Vec<Row>) -> Relation {
        Relation {
            schema: PlanSchema::new(
                names
                    .iter()
                    .map(|n| PlanColumn::computed(*n, DataType::Int))
                    .collect(),
            ),
            rows,
        }
    }

    fn colx(i: usize) -> ScalarExpr {
        ScalarExpr::Column(ResolvedColumn {
            index: i,
            binding: None,
            name: format!("c{i}"),
            data_type: DataType::Int,
        })
    }

    #[test]
    fn hash_join_drops_null_keys() {
        let l = rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Null]]);
        let r = rel(&["b"], vec![vec![Value::Int(1)], vec![Value::Null]]);
        let cond = JoinCondition {
            equi: vec![(colx(0), colx(0))],
            residual: None,
        };
        let schema = l.schema.join(&r.schema);
        let out = join(&l, &r, JoinType::Inner, &cond, &schema).unwrap();
        // NULL = NULL is unknown, so only the (1,1) pair joins.
        assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Int(1)]]);
    }

    #[test]
    fn left_outer_join_pads_with_nulls() {
        let l = rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let r = rel(&["b"], vec![vec![Value::Int(1)]]);
        let cond = JoinCondition {
            equi: vec![(colx(0), colx(0))],
            residual: None,
        };
        let schema = l.schema.join(&r.schema.as_nullable());
        let out = join(&l, &r, JoinType::LeftOuter, &cond, &schema).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out
            .rows
            .iter()
            .any(|r| r == &vec![Value::Int(2), Value::Null]));
    }

    #[test]
    fn nested_loop_join_with_residual() {
        let l = rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(5)]]);
        let r = rel(&["b"], vec![vec![Value::Int(3)]]);
        // ON a < b — no equi component.
        let cond = JoinCondition {
            equi: vec![],
            residual: Some(ScalarExpr::Binary {
                left: Box::new(colx(0)),
                op: galois_sql::ast::BinaryOp::Lt,
                right: Box::new(colx(1)),
            }),
        };
        let schema = l.schema.join(&r.schema);
        let out = join(&l, &r, JoinType::Inner, &cond, &schema).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Int(3)]]);
    }

    #[test]
    fn sort_rows_null_first_and_desc() {
        let mut rows = vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(1)]];
        sort_rows(
            &mut rows,
            &[SortKey {
                index: 0,
                direction: SortDirection::Desc,
            }],
        );
        assert_eq!(
            rows,
            vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Null]]
        );
    }

    #[test]
    fn table_renders() {
        let r = rel(&["a"], vec![vec![Value::Int(1)]]);
        let s = r.to_table_string();
        assert!(s.contains("| a |"));
        assert!(s.contains("| 1 |"));
        assert!(s.contains("1 row"));
    }
}
