//! Error type shared by planning and execution.

use std::fmt;

/// Anything that can go wrong while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A SQL front-end error (lexing/parsing).
    Sql(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column cannot be resolved.
    UnknownColumn(String),
    /// A column name matches more than one input column.
    AmbiguousColumn(String),
    /// The query is structurally invalid (e.g. a non-aggregated column
    /// outside GROUP BY).
    InvalidQuery(String),
    /// Two operand types cannot be combined by an operator.
    TypeMismatch(String),
    /// A runtime evaluation failure (overflow, division by zero, bad cast).
    Evaluation(String),
    /// Attempt to insert a malformed row into a table.
    BadRow(String),
    /// Catalog manipulation error (duplicate table, bad schema).
    Catalog(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column '{c}'"),
            EngineError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::Evaluation(m) => write!(f, "evaluation error: {m}"),
            EngineError::BadRow(m) => write!(f, "bad row: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<galois_sql::SqlError> for EngineError {
    fn from(e: galois_sql::SqlError) -> Self {
        EngineError::Sql(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::UnknownTable("t".into())
            .to_string()
            .contains("'t'"));
        assert!(EngineError::TypeMismatch("int vs text".into())
            .to_string()
            .contains("int vs text"));
    }

    #[test]
    fn sql_error_converts() {
        let e = galois_sql::parse("not sql").unwrap_err();
        let ee: EngineError = e.into();
        assert!(matches!(ee, EngineError::Sql(_)));
    }
}
