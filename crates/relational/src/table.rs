//! Stored tables and the catalog.

use crate::error::{EngineError, Result};
use crate::schema::{PlanColumn, PlanSchema, TableSchema};
use crate::value::Value;
use std::collections::HashMap;

/// A row of values; arity always matches the owning schema.
pub type Row = Vec<Value>;

/// An in-memory stored table with schema validation on insert.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Schema, including the key attribute.
    pub schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Inserts a row after validating arity, types, nullability and key
    /// uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(EngineError::BadRow(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            match v.data_type() {
                None => {
                    if !c.nullable {
                        return Err(EngineError::BadRow(format!(
                            "NULL in non-nullable column '{}'",
                            c.name
                        )));
                    }
                }
                Some(t) if t == c.data_type => {}
                Some(t) => {
                    return Err(EngineError::BadRow(format!(
                        "column '{}' expects {}, got {t}",
                        c.name, c.data_type
                    )));
                }
            }
        }
        let key = &row[self.schema.key];
        if self.rows.iter().any(|r| &r[self.schema.key] == key) {
            return Err(EngineError::BadRow(format!(
                "duplicate key {} in table '{}'",
                key.render(),
                self.name
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by its key value.
    pub fn find_by_key(&self, key: &Value) -> Option<&Row> {
        self.rows.iter().find(|r| &r[self.schema.key] == key)
    }

    /// The plan schema this table produces when scanned under `binding`.
    pub fn plan_schema(&self, binding: &str) -> PlanSchema {
        PlanSchema::new(
            self.schema
                .columns
                .iter()
                .map(|c| PlanColumn::from_base(binding, c))
                .collect(),
        )
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table; the name must be unused.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let key = table.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::Catalog(format!(
                "table '{}' already exists",
                table.name
            )));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Mutable case-insensitive lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn city_table() -> Table {
        Table::new(
            "city",
            TableSchema::new(
                vec![
                    Column::new("name", DataType::Text),
                    Column::nullable("population", DataType::Int),
                ],
                "name",
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_valid_row() {
        let mut t = city_table();
        t.insert(vec!["Rome".into(), Value::Int(2_800_000)])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.find_by_key(&"Rome".into()).is_some());
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = city_table();
        assert!(matches!(
            t.insert(vec!["Rome".into()]),
            Err(EngineError::BadRow(_))
        ));
    }

    #[test]
    fn insert_rejects_wrong_type() {
        let mut t = city_table();
        assert!(t.insert(vec!["Rome".into(), "big".into()]).is_err());
    }

    #[test]
    fn insert_rejects_null_in_non_nullable() {
        let mut t = city_table();
        assert!(t.insert(vec![Value::Null, Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_allows_null_in_nullable() {
        let mut t = city_table();
        t.insert(vec!["Rome".into(), Value::Null]).unwrap();
    }

    #[test]
    fn insert_rejects_duplicate_key() {
        let mut t = city_table();
        t.insert(vec!["Rome".into(), Value::Int(1)]).unwrap();
        assert!(t.insert(vec!["Rome".into(), Value::Int(2)]).is_err());
    }

    #[test]
    fn catalog_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(city_table()).unwrap();
        assert!(c.get("CITY").is_ok());
        assert!(c.get("town").is_err());
        assert!(c.add_table(city_table()).is_err());
        assert_eq!(c.table_names(), vec!["city".to_string()]);
    }

    #[test]
    fn plan_schema_uses_binding() {
        let t = city_table();
        let ps = t.plan_schema("c");
        assert_eq!(ps.columns[0].binding.as_deref(), Some("c"));
        assert_eq!(ps.arity(), 2);
    }
}
