//! Cardinality and selectivity estimation over logical plans (paper §6
//! "Query optimization").
//!
//! For Galois the logical plan *is* the chain-of-thought, so plan choice
//! directly determines how many prompts a query costs. This module supplies
//! the relational half of that decision: textbook selectivity factors per
//! predicate shape and a recursive row estimator that reads base-table
//! cardinalities from the catalog (the planner's statistics, exactly like a
//! classical optimizer's table stats). The prompt-aware half — turning row
//! estimates into prompt counts, cache-hit expectations and virtual
//! latency — lives in `galois-core`'s `plan_choice` module, which consumes
//! these numbers.
//!
//! Estimates are deliberately simple and fully deterministic: the planner
//! needs a *ranking* of candidate plans, not ground truth.
//!
//! ```
//! use galois_relational::{cost, Column, Database, DataType, Table, TableSchema, Value};
//!
//! let mut db = Database::new();
//! let mut t = Table::new(
//!     "city",
//!     TableSchema::new(
//!         vec![
//!             Column::new("name", DataType::Text),
//!             Column::new("population", DataType::Int),
//!         ],
//!         "name",
//!     )
//!     .unwrap(),
//! );
//! for (name, pop) in [("Rome", 2_800_000), ("Lyon", 500_000)] {
//!     t.insert(vec![name.into(), Value::Int(pop)]).unwrap();
//! }
//! db.add_table(t).unwrap();
//!
//! let plan = db.plan("SELECT name FROM city WHERE population > 1000000").unwrap();
//! let rows = cost::estimate_rows(&plan, db.catalog());
//! assert!(rows > 0.0 && rows <= 2.0);
//! assert!(cost::explain_with_rows(&plan, db.catalog()).contains("rows≈"));
//! ```

use crate::exec::Relation;
use crate::expr::ScalarExpr;
use crate::plan::LogicalPlan;
use crate::schema::{PlanColumn, PlanSchema};
use crate::table::Catalog;
use crate::value::{DataType, Value};
use galois_sql::ast::BinaryOp;

/// Selectivity assumed for an equality comparison against a literal.
pub const SEL_EQ: f64 = 0.15;
/// Selectivity assumed for a range comparison (`<`, `<=`, `>`, `>=`).
pub const SEL_RANGE: f64 = 0.35;
/// Selectivity assumed for `BETWEEN`.
pub const SEL_BETWEEN: f64 = 0.30;
/// Selectivity assumed for `LIKE`.
pub const SEL_LIKE: f64 = 0.25;
/// Selectivity assumed for `IS NULL`.
pub const SEL_IS_NULL: f64 = 0.10;
/// Selectivity assumed per `IN`-list member.
pub const SEL_IN_PER_ITEM: f64 = 0.15;
/// Fallback selectivity for predicates with no recognisable shape.
pub const SEL_DEFAULT: f64 = 0.50;
/// Fallback cardinality for scans of tables the catalog does not know
/// (e.g. not-yet-materialised temporaries in a compiled residual plan).
pub const DEFAULT_SCAN_ROWS: f64 = 100.0;
/// Fraction of input rows assumed to survive as distinct groups in a
/// grouped aggregation.
pub const GROUP_FRACTION: f64 = 0.25;

/// Cardinality of an LLM scan whose key universe is already materialised
/// in a warm key-universe store: the stored key count is the *exact*
/// output of the listing phase, so the estimator uses it directly instead
/// of shrinking a catalog row count (or [`DEFAULT_SCAN_ROWS`]) by
/// shape-derived selectivities. A trivial projection today, but it is the
/// single point where observed universes would be blended with synthetic
/// statistics (e.g. discounting a partial frontier) if that ever becomes
/// necessary.
pub fn warm_list_rows(keys: usize) -> f64 {
    keys as f64
}

/// Expected number of prompts needed to cover `items` retrieval tasks when
/// up to `batch_keys` of them fuse into one multi-key prompt. With a batch
/// factor of 1 (batching off) this is the identity — the estimate stays
/// bit-compatible with the unbatched cost model — and otherwise it is the
/// `⌈items / B⌉` the batched retrieval phases actually issue.
pub fn batched_prompt_count(items: f64, batch_keys: f64) -> f64 {
    if batch_keys > 1.0 {
        (items.max(0.0) / batch_keys).ceil()
    } else {
        items.max(0.0)
    }
}

/// Virtual latency of a pipelined (streaming) execution: the longer of
/// the dataflow's dependency chain and the busy-time bound.
///
/// A wave execution sums its phases — every phase barrier adds its full
/// wave time. A pipelined execution is instead bounded below by two
/// quantities: the **critical path** (`chain_ms`, the sequential head the
/// pipeline cannot overlap — e.g. the key-listing iteration chain — plus
/// `tail_ms`, the last item's journey through the remaining stages) and
/// the **busy bound** (`busy_ms` of total lane work spread across `lanes`
/// — with one lane a pipeline degenerates to executing everything back to
/// back). The estimate is the max of the two, the classical pipelined
/// makespan approximation.
pub fn critical_path_ms(chain_ms: f64, tail_ms: f64, busy_ms: f64, lanes: f64) -> f64 {
    (chain_ms + tail_ms).max(busy_ms / lanes.max(1.0))
}

/// Estimated fraction of input rows satisfying a predicate, derived purely
/// from the predicate's shape (System-R style constants — the classical
/// default in the absence of histograms).
pub fn predicate_selectivity(expr: &ScalarExpr) -> f64 {
    let sel = match expr {
        ScalarExpr::Literal(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        ScalarExpr::Binary { left, op, right } => match op {
            BinaryOp::And => predicate_selectivity(left) * predicate_selectivity(right),
            BinaryOp::Or => {
                let (a, b) = (predicate_selectivity(left), predicate_selectivity(right));
                a + b - a * b
            }
            BinaryOp::Eq => SEL_EQ,
            BinaryOp::NotEq => 1.0 - SEL_EQ,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => SEL_RANGE,
            _ => SEL_DEFAULT,
        },
        ScalarExpr::Unary { op, expr } => match op {
            galois_sql::ast::UnaryOp::Not => 1.0 - predicate_selectivity(expr),
            galois_sql::ast::UnaryOp::Neg => SEL_DEFAULT,
        },
        ScalarExpr::Between { negated, .. } => {
            if *negated {
                1.0 - SEL_BETWEEN
            } else {
                SEL_BETWEEN
            }
        }
        ScalarExpr::InList { list, negated, .. } => {
            let s = (SEL_IN_PER_ITEM * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        ScalarExpr::Like { negated, .. } => {
            if *negated {
                1.0 - SEL_LIKE
            } else {
                SEL_LIKE
            }
        }
        ScalarExpr::IsNull { negated, .. } => {
            if *negated {
                1.0 - SEL_IS_NULL
            } else {
                SEL_IS_NULL
            }
        }
        _ => SEL_DEFAULT,
    };
    sel.clamp(0.0, 1.0)
}

/// Estimated output cardinality of a plan, reading base-table row counts
/// from the catalog as the planner's statistics.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    estimate_rows_with(plan, catalog, &std::collections::HashMap::new())
}

/// [`estimate_rows`] with per-table cardinality overrides (case-insensitive
/// table names). The Galois planner uses this to annotate a compiled
/// residual plan whose scans reference not-yet-materialised `__llm_*`
/// temporaries: it knows how many keys it expects each retrieval to
/// produce, and the catalog does not.
pub fn estimate_rows_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    overrides: &std::collections::HashMap<String, f64>,
) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => overrides
            .get(&table.to_ascii_lowercase())
            .copied()
            .or_else(|| catalog.get(table).ok().map(|t| t.len() as f64))
            .unwrap_or(DEFAULT_SCAN_ROWS),
        LogicalPlan::Filter { input, predicate } => {
            estimate_rows_with(input, catalog, overrides) * predicate_selectivity(predicate)
        }
        LogicalPlan::Project { input, .. } => estimate_rows_with(input, catalog, overrides),
        LogicalPlan::Join {
            left,
            right,
            condition,
            ..
        } => {
            let l = estimate_rows_with(left, catalog, overrides);
            let r = estimate_rows_with(right, catalog, overrides);
            // Classic equi-join estimate: |L|·|R| / max(|L|, |R|) assumes
            // the join key is (close to) a key of the larger side — the
            // shape of every suite join. A residual shrinks it further.
            let mut rows = if condition.equi.is_empty() {
                l * r
            } else {
                l * r / l.max(r).max(1.0)
            };
            if let Some(resid) = &condition.residual {
                rows *= predicate_selectivity(resid);
            }
            rows
        }
        LogicalPlan::CrossJoin { left, right, .. } => {
            estimate_rows_with(left, catalog, overrides)
                * estimate_rows_with(right, catalog, overrides)
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                (estimate_rows_with(input, catalog, overrides) * GROUP_FRACTION).max(1.0)
            }
        }
        LogicalPlan::Sort { input, .. } | LogicalPlan::Distinct { input } => {
            estimate_rows_with(input, catalog, overrides)
        }
        LogicalPlan::Limit { input, n, .. } => {
            estimate_rows_with(input, catalog, overrides).min(*n as f64)
        }
    }
}

/// Renders the plan tree with a `(rows≈N)` estimate appended to every
/// operator line — the relational half of the `EXPLAIN` output.
pub fn explain_with_rows(plan: &LogicalPlan, catalog: &Catalog) -> String {
    explain_with_rows_overridden(plan, catalog, &std::collections::HashMap::new())
}

/// [`explain_with_rows`] with the cardinality overrides of
/// [`estimate_rows_with`].
pub fn explain_with_rows_overridden(
    plan: &LogicalPlan,
    catalog: &Catalog,
    overrides: &std::collections::HashMap<String, f64>,
) -> String {
    plan.explain_annotated(&|node| {
        format!(
            "  (rows≈{})",
            estimate_rows_with(node, catalog, overrides).round()
        )
    })
}

/// Packages explain text as a one-column relation (`QUERY PLAN`, one row
/// per line), the way interactive databases surface `EXPLAIN` output
/// through the ordinary result channel.
pub fn explain_relation(text: &str) -> Relation {
    let schema = PlanSchema::new(vec![PlanColumn::computed("QUERY PLAN", DataType::Text)]);
    Relation {
        schema,
        rows: text
            .lines()
            .map(|line| vec![Value::Text(line.to_string())])
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::schema::{Column, TableSchema};
    use crate::table::Table;

    fn db_with_city(rows: usize) -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            "city",
            TableSchema::new(
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("country", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
                "name",
            )
            .unwrap(),
        );
        for i in 0..rows {
            t.insert(vec![
                Value::Text(format!("c{i}")),
                Value::Text(format!("k{}", i % 3)),
                Value::Int(i as i64 * 1000),
            ])
            .unwrap();
        }
        db.add_table(t).unwrap();
        db
    }

    #[test]
    fn batched_prompt_count_is_identity_at_one_and_ceil_above() {
        assert_eq!(batched_prompt_count(17.3, 1.0), 17.3);
        assert_eq!(batched_prompt_count(17.3, 10.0), 2.0);
        assert_eq!(batched_prompt_count(20.0, 10.0), 2.0);
        assert_eq!(batched_prompt_count(21.0, 10.0), 3.0);
        assert_eq!(batched_prompt_count(0.0, 10.0), 0.0);
        assert_eq!(batched_prompt_count(-1.0, 10.0), 0.0);
    }

    #[test]
    fn critical_path_takes_the_binding_bound() {
        // Chain-bound: plenty of lanes, the dependency chain dominates.
        assert_eq!(critical_path_ms(500.0, 250.0, 1000.0, 8.0), 750.0);
        // Busy-bound: one lane, total work dominates.
        assert_eq!(critical_path_ms(500.0, 250.0, 3000.0, 1.0), 3000.0);
        // Lanes clamp to one.
        assert_eq!(critical_path_ms(0.0, 0.0, 100.0, 0.0), 100.0);
    }

    #[test]
    fn scan_estimate_reads_catalog_stats() {
        let db = db_with_city(40);
        let plan = db.plan("SELECT name FROM city").unwrap();
        assert_eq!(estimate_rows(&plan, db.catalog()), 40.0);
    }

    #[test]
    fn filters_shrink_estimates_monotonically() {
        let db = db_with_city(40);
        let all = db.plan("SELECT name FROM city").unwrap();
        let one = db
            .plan("SELECT name FROM city WHERE population > 5")
            .unwrap();
        let two = db
            .plan("SELECT name FROM city WHERE population > 5 AND country = 'k0'")
            .unwrap();
        let r0 = estimate_rows(&all, db.catalog());
        let r1 = estimate_rows(&one, db.catalog());
        let r2 = estimate_rows(&two, db.catalog());
        assert!(r0 > r1 && r1 > r2, "{r0} {r1} {r2}");
        assert!(r2 > 0.0);
    }

    #[test]
    fn selectivity_shapes_are_ordered_sanely() {
        // OR combines as s1 + s2 − s1·s2 (less selective than either AND'd).
        let db = db_with_city(10);
        let plan = db
            .plan("SELECT name FROM city WHERE population > 5 OR country = 'k0'")
            .unwrap();
        let LogicalPlan::Project { input, .. } = &plan else {
            panic!("{}", plan.explain())
        };
        let LogicalPlan::Filter { predicate, .. } = input.as_ref() else {
            panic!("{}", plan.explain())
        };
        let s_or = predicate_selectivity(predicate);
        assert!((s_or - (SEL_RANGE + SEL_EQ - SEL_RANGE * SEL_EQ)).abs() < 1e-12);
    }

    #[test]
    fn unknown_scan_falls_back() {
        let db = db_with_city(5);
        let plan = db.plan("SELECT name FROM city").unwrap();
        // Re-point the scan at a name the catalog does not know.
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Scan {
            binding,
            schema,
            key_index,
            source,
            ..
        } = *input
        else {
            panic!()
        };
        let orphan = LogicalPlan::Scan {
            table: "__llm_missing".into(),
            binding,
            schema,
            key_index,
            source,
        };
        assert_eq!(estimate_rows(&orphan, db.catalog()), DEFAULT_SCAN_ROWS);
    }

    #[test]
    fn aggregate_and_limit_estimates() {
        let db = db_with_city(40);
        let global = db.plan("SELECT COUNT(*) FROM city").unwrap();
        assert_eq!(estimate_rows(&global, db.catalog()), 1.0);
        let grouped = db
            .plan("SELECT country, COUNT(*) FROM city GROUP BY country")
            .unwrap();
        let g = estimate_rows(&grouped, db.catalog());
        assert!((1.0..=40.0).contains(&g));
        let limited = db.plan("SELECT name FROM city LIMIT 3").unwrap();
        assert_eq!(estimate_rows(&limited, db.catalog()), 3.0);
    }

    #[test]
    fn join_estimate_is_bounded_by_cross_product() {
        let mut db = db_with_city(12);
        let mut country = Table::new(
            "country",
            TableSchema::new(vec![Column::new("name", DataType::Text)], "name").unwrap(),
        );
        for i in 0..3 {
            country.insert(vec![Value::Text(format!("k{i}"))]).unwrap();
        }
        db.add_table(country).unwrap();
        let plan = db
            .plan("SELECT c.name FROM city c, country k WHERE c.country = k.name")
            .unwrap();
        let rows = estimate_rows(&plan, db.catalog());
        assert!((1.0..=36.0).contains(&rows), "{rows}");
    }

    #[test]
    fn explain_with_rows_annotates_every_operator() {
        let db = db_with_city(40);
        let plan = db
            .plan("SELECT name FROM city WHERE population > 5")
            .unwrap();
        let text = explain_with_rows(&plan, db.catalog());
        for line in text.lines() {
            assert!(line.contains("(rows≈"), "unannotated line: {line}");
        }
        // Plain explain stays annotation-free.
        assert!(!plan.explain().contains("rows≈"));
    }

    #[test]
    fn explain_relation_is_one_text_column() {
        let rel = explain_relation("a\nb\nc");
        assert_eq!(rel.schema.arity(), 1);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.rows[1][0].render(), "b");
    }
}
