//! End-to-end SQL execution: the `Database` façade.

use crate::builder::plan_select;
use crate::error::Result;
use crate::exec::{execute, Relation};
use crate::optimizer::optimize;
use crate::plan::LogicalPlan;
use crate::table::{Catalog, Table};
use galois_sql::parse;

/// An in-memory database: a catalog plus parse→plan→optimize→execute glue.
///
/// This is the component that produces the paper's ground-truth result
/// `R_D`, and whose planner Galois reuses for its chain-of-prompt
/// decomposition (the paper used DuckDB for the same purpose).
#[derive(Debug, Default, Clone)]
pub struct Database {
    catalog: Catalog,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a table.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        self.catalog.add_table(table)
    }

    /// Shared catalog access.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Plans an already-parsed SELECT: name resolution plus the optimizer
    /// pass. The single entry every SQL-text path (here and in the Galois
    /// session) funnels through.
    pub fn plan_statement(&self, select: &galois_sql::SelectStatement) -> Result<LogicalPlan> {
        Ok(optimize(plan_select(select, &self.catalog)?))
    }

    /// Parses and plans a query without executing it. For an `EXPLAIN`
    /// statement this plans the explained query.
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        self.plan_statement(parse(sql)?.select())
    }

    /// Plans without the optimizer pass (used by tests and by ablations).
    pub fn plan_unoptimized(&self, sql: &str) -> Result<LogicalPlan> {
        let stmt = parse(sql)?;
        plan_select(stmt.select(), &self.catalog)
    }

    /// Runs a query end to end. An `EXPLAIN <query>` statement is not
    /// executed; it returns the cost-annotated plan as a one-column
    /// `QUERY PLAN` relation, the way interactive databases do.
    pub fn execute(&self, sql: &str) -> Result<Relation> {
        let stmt = parse(sql)?;
        let plan = self.plan_statement(stmt.select())?;
        if stmt.is_explain() {
            return Ok(crate::cost::explain_relation(
                &crate::cost::explain_with_rows(&plan, &self.catalog),
            ));
        }
        execute(&plan, &self.catalog)
    }

    /// Runs an already-built plan.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<Relation> {
        execute(plan, &self.catalog)
    }

    /// Returns the optimized plan rendered as an indented tree, with a
    /// `(rows≈N)` cardinality estimate per operator (see [`crate::cost`]).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        Ok(crate::cost::explain_with_rows(&plan, &self.catalog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::{DataType, Value};

    fn sample_db() -> Database {
        let mut db = Database::new();
        let mut city = Table::new(
            "city",
            TableSchema::new(
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("country", DataType::Text),
                    Column::nullable("population", DataType::Int),
                ],
                "name",
            )
            .unwrap(),
        );
        for (n, c, p) in [
            ("Rome", "Italy", Some(2_800_000)),
            ("Milan", "Italy", Some(1_400_000)),
            ("Paris", "France", Some(2_100_000)),
            ("Lyon", "France", Some(500_000)),
            ("Berlin", "Germany", None),
        ] {
            city.insert(vec![
                n.into(),
                c.into(),
                p.map(Value::Int).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        db.add_table(city).unwrap();

        let mut country = Table::new(
            "country",
            TableSchema::new(
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("gdp", DataType::Float),
                ],
                "name",
            )
            .unwrap(),
        );
        for (n, g) in [("Italy", 2.1), ("France", 2.9), ("Spain", 1.4)] {
            country.insert(vec![n.into(), Value::Float(g)]).unwrap();
        }
        db.add_table(country).unwrap();
        db
    }

    #[test]
    fn select_filter_project() {
        let db = sample_db();
        let r = db
            .execute("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert_eq!(names, vec!["Rome", "Milan", "Paris"]);
    }

    #[test]
    fn limit_offset_windows_the_result() {
        let db = sample_db();
        let r = db
            .execute("SELECT name FROM city ORDER BY name LIMIT 2 OFFSET 1")
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert_eq!(names, vec!["Lyon", "Milan"]);
        // An offset past the end yields nothing rather than erroring.
        let r = db
            .execute("SELECT name FROM city LIMIT 3 OFFSET 10")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn comma_join_becomes_hash_join() {
        let db = sample_db();
        let plan = db
            .plan("SELECT c.name FROM city c, country k WHERE c.country = k.name")
            .unwrap();
        let stats = crate::optimizer::plan_stats(&plan);
        assert_eq!(stats.cross_joins, 0, "plan: {}", plan.explain());
        assert_eq!(stats.joins, 1);
        let r = db
            .execute("SELECT c.name FROM city c, country k WHERE c.country = k.name")
            .unwrap();
        assert_eq!(r.len(), 4); // Berlin's Germany not in country table
    }

    #[test]
    fn filter_pushdown_below_join() {
        let db = sample_db();
        let plan = db
            .plan(
                "SELECT c.name FROM city c, country k \
                 WHERE c.country = k.name AND k.gdp > 2.5 AND c.population > 1000000",
            )
            .unwrap();
        // Both single-table conjuncts must sit below the join.
        let text = plan.explain();
        let join_pos = text.find("JOIN").unwrap();
        let gdp_pos = text.find("gdp").unwrap();
        let pop_pos = text.find("population").unwrap();
        assert!(gdp_pos > join_pos && pop_pos > join_pos, "{text}");
        let r = db
            .execute(
                "SELECT c.name FROM city c, country k \
                 WHERE c.country = k.name AND k.gdp > 2.5 AND c.population > 1000000",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0].render(), "Paris");
    }

    #[test]
    fn group_by_having_order() {
        let db = sample_db();
        let r = db
            .execute(
                "SELECT country, COUNT(*), AVG(population) FROM city \
                 GROUP BY country HAVING COUNT(*) >= 2 ORDER BY country",
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0].render(), "France");
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(1_300_000.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = sample_db();
        let r = db
            .execute("SELECT COUNT(*), SUM(population) FROM city WHERE name = 'Nowhere'")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let db = sample_db();
        let r = db
            .execute("SELECT COUNT(*), COUNT(population) FROM city")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert_eq!(r.rows[0][1], Value::Int(4));
    }

    #[test]
    fn count_distinct() {
        let db = sample_db();
        let r = db
            .execute("SELECT COUNT(DISTINCT country) FROM city")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn order_by_hidden_column() {
        let db = sample_db();
        let r = db
            .execute("SELECT name FROM city WHERE population IS NOT NULL ORDER BY population DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.schema.arity(), 1);
        let names: Vec<String> = r.rows.iter().map(|x| x[0].render()).collect();
        assert_eq!(names, vec!["Rome", "Paris"]);
    }

    #[test]
    fn order_by_alias() {
        let db = sample_db();
        let r = db
            .execute("SELECT name, population AS pop FROM city WHERE population IS NOT NULL ORDER BY pop")
            .unwrap();
        assert_eq!(r.rows[0][0].render(), "Lyon");
    }

    #[test]
    fn distinct_rows() {
        let db = sample_db();
        let r = db.execute("SELECT DISTINCT country FROM city").unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn distinct_with_hidden_sort_is_rejected() {
        let db = sample_db();
        assert!(db
            .execute("SELECT DISTINCT country FROM city ORDER BY population")
            .is_err());
    }

    #[test]
    fn explicit_join_syntax() {
        let db = sample_db();
        let r = db
            .execute(
                "SELECT c.name, k.gdp FROM city c JOIN country k ON c.country = k.name \
                 WHERE k.gdp > 2.0 ORDER BY c.name",
            )
            .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let db = sample_db();
        let r = db
            .execute("SELECT c.name, k.gdp FROM city c LEFT JOIN country k ON c.country = k.name")
            .unwrap();
        assert_eq!(r.len(), 5);
        let berlin = r
            .rows
            .iter()
            .find(|row| row[0].render() == "Berlin")
            .unwrap();
        assert!(berlin[1].is_null());
    }

    #[test]
    fn table_less_select() {
        let db = Database::new();
        let r = db.execute("SELECT 1 + 2 AS three, 'x'").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][1].render(), "x");
    }

    #[test]
    fn non_grouped_column_is_rejected() {
        let db = sample_db();
        let err = db
            .execute("SELECT name, COUNT(*) FROM city GROUP BY country")
            .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn qualified_and_bare_group_key_unify() {
        let db = sample_db();
        let r = db
            .execute("SELECT c.country FROM city c GROUP BY country ORDER BY c.country")
            .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unknown_column_and_table_errors() {
        let db = sample_db();
        assert!(db.execute("SELECT missing FROM city").is_err());
        assert!(db.execute("SELECT name FROM nowhere").is_err());
        assert!(db.execute("SELECT x.name FROM city c").is_err());
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = sample_db();
        assert!(db.execute("SELECT c.name FROM city c, country c").is_err());
    }

    #[test]
    fn where_type_error() {
        let db = sample_db();
        assert!(db
            .execute("SELECT name FROM city WHERE population")
            .is_err());
        assert!(db
            .execute("SELECT name FROM city WHERE name > population")
            .is_err());
    }

    #[test]
    fn explain_has_scan_and_filter() {
        let db = sample_db();
        let text = db
            .explain("SELECT name FROM city WHERE population > 5")
            .unwrap();
        assert!(text.contains("Scan city"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Project"));
        assert!(text.contains("rows≈"));
    }

    #[test]
    fn explain_statement_returns_plan_relation() {
        let db = sample_db();
        let r = db
            .execute("EXPLAIN SELECT name FROM city WHERE population > 5")
            .unwrap();
        assert_eq!(r.schema.arity(), 1);
        assert_eq!(r.schema.columns[0].name, "QUERY PLAN");
        let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert!(text.iter().any(|l| l.contains("Scan city")));
        assert!(text.iter().any(|l| l.contains("rows≈")));
        // Same query without EXPLAIN executes normally.
        assert_eq!(
            db.execute("SELECT name FROM city WHERE population > 5")
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn limit_zero() {
        let db = sample_db();
        let r = db.execute("SELECT name FROM city LIMIT 0").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let db = sample_db();
        assert!(db
            .execute("SELECT name FROM city WHERE COUNT(*) > 1")
            .is_err());
    }

    #[test]
    fn in_and_like_and_between() {
        let db = sample_db();
        let r = db
            .execute(
                "SELECT name FROM city WHERE country IN ('Italy', 'France') \
                 AND name LIKE '%o%' AND population BETWEEN 400000 AND 3000000 ORDER BY name",
            )
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|x| x[0].render()).collect();
        assert_eq!(names, vec!["Lyon", "Rome"]);
    }

    #[test]
    fn arithmetic_in_projection() {
        let db = sample_db();
        let r = db
            .execute("SELECT name, population / 1000000 FROM city WHERE name = 'Rome'")
            .unwrap();
        assert_eq!(r.rows[0][1], Value::Float(2.8));
    }

    #[test]
    fn min_max_on_text_and_dates() {
        let db = sample_db();
        let r = db.execute("SELECT MIN(name), MAX(name) FROM city").unwrap();
        assert_eq!(r.rows[0][0].render(), "Berlin");
        assert_eq!(r.rows[0][1].render(), "Rome");
    }

    #[test]
    fn sum_avg_reject_text() {
        let db = sample_db();
        assert!(db.execute("SELECT SUM(name) FROM city").is_err());
        assert!(db.execute("SELECT AVG(name) FROM city").is_err());
    }

    #[test]
    fn order_by_aggregate_not_in_select() {
        let db = sample_db();
        let r = db
            .execute("SELECT country FROM city GROUP BY country ORDER BY COUNT(*) DESC, country")
            .unwrap();
        assert_eq!(r.schema.arity(), 1);
        assert_eq!(r.rows[0][0].render(), "France");
    }
}
