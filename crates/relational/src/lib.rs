//! # galois-relational
//!
//! An in-memory SPJA relational engine built for the Galois reproduction
//! (["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472),
//! EDBT 2024). It plays two roles from the paper's setup:
//!
//! * it executes the evaluation queries over stored (Spider-substitute)
//!   tables to produce the ground-truth result `R_D`, and
//! * its *named* logical plans are what Galois compiles into chains of LLM
//!   prompts — the paper obtained these plans from DuckDB; here the planner
//!   is part of the reproduction.
//!
//! ```
//! use galois_relational::{Column, Database, DataType, Table, TableSchema, Value};
//!
//! let mut db = Database::new();
//! let mut t = Table::new(
//!     "city",
//!     TableSchema::new(
//!         vec![
//!             Column::new("name", DataType::Text),
//!             Column::new("population", DataType::Int),
//!         ],
//!         "name",
//!     ).unwrap(),
//! );
//! t.insert(vec!["Rome".into(), Value::Int(2_800_000)]).unwrap();
//! db.add_table(t).unwrap();
//!
//! let result = db.execute("SELECT name FROM city WHERE population > 1000000").unwrap();
//! assert_eq!(result.rows[0][0].render(), "Rome");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cost;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod plan;
pub mod schema;
pub mod table;
pub mod value;

pub use cost::{estimate_rows, explain_with_rows, predicate_selectivity};
pub use engine::Database;
pub use error::{EngineError, Result};
pub use exec::{execute, Relation};
pub use expr::{like_match, ResolvedColumn, ScalarExpr};
pub use optimizer::{optimize, plan_stats, PlanStats};
pub use plan::{AggCall, AggFunc, JoinCondition, LogicalPlan, SortKey};
pub use schema::{Column, PlanColumn, PlanSchema, TableSchema};
pub use table::{Catalog, Row, Table};
pub use value::{DataType, Date, Value};
