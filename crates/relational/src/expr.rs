//! Resolved scalar expressions and their evaluation.
//!
//! A [`ScalarExpr`] is an AST expression after name resolution: column
//! references carry both their input index (for evaluation) and their
//! binding/name (so the Galois prompt generator can still speak about
//! attributes by name). Evaluation follows SQL three-valued logic.

use crate::error::{EngineError, Result};
use crate::table::Row;
use crate::value::{DataType, Value};
use galois_sql::ast::{BinaryOp, UnaryOp};
use std::fmt;

/// A column reference resolved against an input schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedColumn {
    /// Index into the input row.
    pub index: usize,
    /// Binding (table alias) the column came from, if any.
    pub binding: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl fmt::Display for ResolvedColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(b) = &self.binding {
            write!(f, "{b}.")?;
        }
        write!(f, "{}", self.name)
    }
}

/// A resolved, executable scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Input column.
    Column(ResolvedColumn),
    /// Constant.
    Literal(Value),
    /// Unary op.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
    /// Binary op.
    Binary {
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<ScalarExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// `[NOT] IN (…)`.
    InList {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Candidates.
        list: Vec<ScalarExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// `[NOT] BETWEEN … AND …`.
    Between {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Lower bound.
        low: Box<ScalarExpr>,
        /// Upper bound.
        high: Box<ScalarExpr>,
        /// Negation flag.
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Pattern.
        pattern: Box<ScalarExpr>,
        /// Negation flag.
        negated: bool,
    },
}

impl ScalarExpr {
    /// The static result type of this expression.
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarExpr::Column(c) => c.data_type,
            ScalarExpr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Neg => expr.data_type(),
                UnaryOp::Not => DataType::Bool,
            },
            ScalarExpr::Binary { left, op, right } => match op {
                BinaryOp::And | BinaryOp::Or => DataType::Bool,
                op if op.is_comparison() => DataType::Bool,
                BinaryOp::Div => DataType::Float,
                _ => {
                    if left.data_type() == DataType::Float || right.data_type() == DataType::Float {
                        DataType::Float
                    } else {
                        left.data_type()
                    }
                }
            },
            ScalarExpr::IsNull { .. }
            | ScalarExpr::InList { .. }
            | ScalarExpr::Between { .. }
            | ScalarExpr::Like { .. } => DataType::Bool,
        }
    }

    /// Walks the tree pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Unary { expr, .. } => expr.walk(f),
            ScalarExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            ScalarExpr::IsNull { expr, .. } => expr.walk(f),
            ScalarExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            ScalarExpr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
        }
    }

    /// Indices of all referenced input columns.
    pub fn referenced_indices(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Column(c) = e {
                v.push(c.index);
            }
        });
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Rewrites every column index through `map` (used when an input's
    /// column order changes, e.g. below a join).
    pub fn remap_indices(&self, map: &impl Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => ScalarExpr::Column(ResolvedColumn {
                index: map(c.index),
                ..c.clone()
            }),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_indices(map)),
            },
            ScalarExpr::Binary { left, op, right } => ScalarExpr::Binary {
                left: Box::new(left.remap_indices(map)),
                op: *op,
                right: Box::new(right.remap_indices(map)),
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.remap_indices(map)),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.remap_indices(map)),
                list: list.iter().map(|e| e.remap_indices(map)).collect(),
                negated: *negated,
            },
            ScalarExpr::Between {
                expr,
                low,
                high,
                negated,
            } => ScalarExpr::Between {
                expr: Box::new(expr.remap_indices(map)),
                low: Box::new(low.remap_indices(map)),
                high: Box::new(high.remap_indices(map)),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.remap_indices(map)),
                pattern: Box::new(pattern.remap_indices(map)),
                negated: *negated,
            },
        }
    }

    /// Evaluates against a row, returning a value (possibly NULL).
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            ScalarExpr::Column(c) => row
                .get(c.index)
                .cloned()
                .ok_or_else(|| EngineError::Evaluation(format!("row too short for {c}"))),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnaryOp::Neg, Value::Int(i)) => i
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| EngineError::Evaluation("integer overflow".into())),
                    (UnaryOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnaryOp::Neg, other) => Err(EngineError::TypeMismatch(format!(
                        "cannot negate {}",
                        other.render()
                    ))),
                    (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnaryOp::Not, other) => Err(EngineError::TypeMismatch(format!(
                        "NOT expects a boolean, got {}",
                        other.render()
                    ))),
                }
            }
            ScalarExpr::Binary { left, op, right } => eval_binary(left, *op, right, row),
            ScalarExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let cand = item.eval(row)?;
                    match v.sql_eq(&cand) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            ScalarExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                let ge = match v.sql_cmp(&lo) {
                    Some(o) => o != std::cmp::Ordering::Less,
                    None => return Ok(Value::Null),
                };
                let le = match v.sql_cmp(&hi) {
                    Some(o) => o != std::cmp::Ordering::Greater,
                    None => return Ok(Value::Null),
                };
                Ok(Value::Bool((ge && le) != *negated))
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(pat)) => {
                        Ok(Value::Bool(like_match(&s, &pat) != *negated))
                    }
                    (a, b) => Err(EngineError::TypeMismatch(format!(
                        "LIKE expects text operands, got {} and {}",
                        a.render(),
                        b.render()
                    ))),
                }
            }
        }
    }

    /// Evaluates as a predicate: true only if the result is boolean TRUE
    /// (NULL counts as false, per SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EngineError::TypeMismatch(format!(
                "predicate evaluated to non-boolean {}",
                other.render()
            ))),
        }
    }
}

fn eval_binary(left: &ScalarExpr, op: BinaryOp, right: &ScalarExpr, row: &Row) -> Result<Value> {
    // AND/OR use Kleene logic and must not eagerly error on the other side.
    match op {
        BinaryOp::And => {
            let l = left.eval(row)?;
            if l == Value::Bool(false) {
                return Ok(Value::Bool(false));
            }
            let r = right.eval(row)?;
            return kleene_and(l, r);
        }
        BinaryOp::Or => {
            let l = left.eval(row)?;
            if l == Value::Bool(true) {
                return Ok(Value::Bool(true));
            }
            let r = right.eval(row)?;
            return kleene_or(l, r);
        }
        _ => {}
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(&r).ok_or_else(|| {
            EngineError::TypeMismatch(format!("cannot compare {} with {}", l.render(), r.render()))
        })?;
        use std::cmp::Ordering::*;
        let b = match op {
            BinaryOp::Eq => ord == Equal,
            BinaryOp::NotEq => ord != Equal,
            BinaryOp::Lt => ord == Less,
            BinaryOp::LtEq => ord != Greater,
            BinaryOp::Gt => ord == Greater,
            BinaryOp::GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }

    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => arith(l, r, op),
        BinaryOp::Div => {
            let (a, b) = both_f64(&l, &r)?;
            if b == 0.0 {
                Err(EngineError::Evaluation("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinaryOp::Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(EngineError::Evaluation("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => Err(EngineError::TypeMismatch(
                "% expects integer operands".into(),
            )),
        },
        _ => unreachable!("handled above"),
    }
}

fn kleene_and(l: Value, r: Value) -> Result<Value> {
    match (bool3(&l)?, bool3(&r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
        (Some(true), Some(true)) => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

fn kleene_or(l: Value, r: Value) -> Result<Value> {
    match (bool3(&l)?, bool3(&r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
        (Some(false), Some(false)) => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

fn bool3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeMismatch(format!(
            "expected boolean, got {}",
            other.render()
        ))),
    }
}

fn both_f64(l: &Value, r: &Value) -> Result<(f64, f64)> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(EngineError::TypeMismatch(format!(
            "arithmetic expects numbers, got {} and {}",
            l.render(),
            r.render()
        ))),
    }
}

fn arith(l: Value, r: Value, op: BinaryOp) -> Result<Value> {
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let res = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                _ => unreachable!(),
            };
            res.map(Value::Int)
                .ok_or_else(|| EngineError::Evaluation("integer overflow".into()))
        }
        _ => {
            let (a, b) = both_f64(&l, &r)?;
            let res = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                _ => unreachable!(),
            };
            Ok(Value::Float(res))
        }
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (single char) wildcards.
/// Case-sensitive, iterative two-pointer algorithm (no backtracking blowup).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_s) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{}", other.render()),
            },
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-({expr})"),
                UnaryOp::Not => write!(f, "NOT ({expr})"),
            },
            ScalarExpr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize, ty: DataType) -> ScalarExpr {
        ScalarExpr::Column(ResolvedColumn {
            index: i,
            binding: Some("t".into()),
            name: format!("c{i}"),
            data_type: ty,
        })
    }

    fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    fn bin(l: ScalarExpr, op: BinaryOp, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_int_and_float() {
        let row = vec![Value::Int(6), Value::Float(1.5)];
        let e = bin(
            col(0, DataType::Int),
            BinaryOp::Add,
            col(1, DataType::Float),
        );
        assert_eq!(e.eval(&row).unwrap(), Value::Float(7.5));
        let e = bin(col(0, DataType::Int), BinaryOp::Mul, lit(2i64));
        assert_eq!(e.eval(&row).unwrap(), Value::Int(12));
    }

    #[test]
    fn division_always_float_and_checks_zero() {
        let row = vec![Value::Int(7), Value::Int(2)];
        let e = bin(col(0, DataType::Int), BinaryOp::Div, col(1, DataType::Int));
        assert_eq!(e.eval(&row).unwrap(), Value::Float(3.5));
        let z = bin(col(0, DataType::Int), BinaryOp::Div, lit(0i64));
        assert!(z.eval(&row).is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let row = vec![Value::Int(i64::MAX)];
        let e = bin(col(0, DataType::Int), BinaryOp::Add, lit(1i64));
        assert!(matches!(e.eval(&row), Err(EngineError::Evaluation(_))));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let row = vec![Value::Null];
        let e = bin(col(0, DataType::Int), BinaryOp::Add, lit(1i64));
        assert!(e.eval(&row).unwrap().is_null());
        let c = bin(col(0, DataType::Int), BinaryOp::Eq, lit(1i64));
        assert!(c.eval(&row).unwrap().is_null());
    }

    #[test]
    fn kleene_logic() {
        let row = vec![Value::Null, Value::Bool(true), Value::Bool(false)];
        let and = |a, b| {
            bin(
                col(a, DataType::Bool),
                BinaryOp::And,
                col(b, DataType::Bool),
            )
        };
        let or = |a, b| bin(col(a, DataType::Bool), BinaryOp::Or, col(b, DataType::Bool));
        // false AND null = false; true AND null = null
        assert_eq!(and(2, 0).eval(&row).unwrap(), Value::Bool(false));
        assert!(and(1, 0).eval(&row).unwrap().is_null());
        // true OR null = true; false OR null = null
        assert_eq!(or(1, 0).eval(&row).unwrap(), Value::Bool(true));
        assert!(or(2, 0).eval(&row).unwrap().is_null());
        // null AND false = false (no short-circuit asymmetry)
        assert_eq!(and(0, 2).eval(&row).unwrap(), Value::Bool(false));
    }

    #[test]
    fn predicate_treats_null_as_false() {
        let row = vec![Value::Null];
        let c = bin(col(0, DataType::Int), BinaryOp::Gt, lit(1i64));
        assert!(!c.eval_predicate(&row).unwrap());
    }

    #[test]
    fn in_list_three_valued() {
        let row = vec![Value::Int(5), Value::Null];
        let e = ScalarExpr::InList {
            expr: Box::new(col(0, DataType::Int)),
            list: vec![lit(1i64), lit(5i64)],
            negated: false,
        };
        assert_eq!(e.eval(&row).unwrap(), Value::Bool(true));
        // 5 NOT IN (1, NULL) → NULL (unknown), not true/false
        let e2 = ScalarExpr::InList {
            expr: Box::new(col(0, DataType::Int)),
            list: vec![lit(1i64), col(1, DataType::Int)],
            negated: true,
        };
        assert!(e2.eval(&row).unwrap().is_null());
    }

    #[test]
    fn between_inclusive() {
        let row = vec![Value::Int(10)];
        let e = ScalarExpr::Between {
            expr: Box::new(col(0, DataType::Int)),
            low: Box::new(lit(10i64)),
            high: Box::new(lit(20i64)),
            negated: false,
        };
        assert_eq!(e.eval(&row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Rome", "R%"));
        assert!(like_match("Rome", "_ome"));
        assert!(like_match("Rome", "%"));
        assert!(like_match("Rome", "Rome"));
        assert!(!like_match("Rome", "r%")); // case sensitive
        assert!(like_match("abcbc", "a%bc"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(!like_match("xay", "a%"));
        assert!(like_match("banana", "%na%"));
    }

    #[test]
    fn is_null_never_null() {
        let row = vec![Value::Null, Value::Int(1)];
        let e = ScalarExpr::IsNull {
            expr: Box::new(col(0, DataType::Int)),
            negated: false,
        };
        assert_eq!(e.eval(&row).unwrap(), Value::Bool(true));
        let e2 = ScalarExpr::IsNull {
            expr: Box::new(col(1, DataType::Int)),
            negated: true,
        };
        assert_eq!(e2.eval(&row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn remap_indices_rewrites_columns() {
        let e = bin(col(0, DataType::Int), BinaryOp::Add, col(2, DataType::Int));
        let shifted = e.remap_indices(&|i| i + 10);
        assert_eq!(shifted.referenced_indices(), vec![10, 12]);
    }

    #[test]
    fn type_inference() {
        let e = bin(col(0, DataType::Int), BinaryOp::Div, lit(2i64));
        assert_eq!(e.data_type(), DataType::Float);
        let c = bin(col(0, DataType::Int), BinaryOp::Lt, lit(2i64));
        assert_eq!(c.data_type(), DataType::Bool);
    }
}
