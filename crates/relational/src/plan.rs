//! Logical query plans.
//!
//! The plan is deliberately *named*: scans keep their table name and
//! binding, and resolved expressions keep attribute names. Galois depends on
//! this — the same plan that the relational executor runs is compiled into
//! chain-of-thought prompts, so the plan must be able to talk about
//! relations and attributes the way the SQL text did (paper §4).

use crate::expr::ScalarExpr;
use crate::schema::{PlanColumn, PlanSchema};
use crate::value::DataType;
use galois_sql::ast::{JoinType, SortDirection, SourceQualifier};
use std::fmt;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parses an (uppercased) function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Result type given the argument type (`None` for `COUNT(*)`).
    pub fn output_type(&self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => match arg {
                Some(DataType::Float) => DataType::Float,
                _ => DataType::Int,
            },
            AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Text),
        }
    }
}

/// One aggregate computation inside an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument (`None` only for `COUNT(*)`).
    pub arg: Option<ScalarExpr>,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
    /// Output column name, e.g. `COUNT(*)`.
    pub output_name: String,
}

impl AggCall {
    /// Result type of this call.
    pub fn output_type(&self) -> DataType {
        self.func
            .output_type(self.arg.as_ref().map(|a| a.data_type()))
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.name())?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.arg {
            Some(a) => write!(f, "{a}")?,
            None => write!(f, "*")?,
        }
        write!(f, ")")
    }
}

/// The equi + residual decomposition of a join condition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinCondition {
    /// Pairs of (left-side expr, right-side expr) that must be equal; each
    /// side is resolved against its own input schema.
    pub equi: Vec<(ScalarExpr, ScalarExpr)>,
    /// Any remaining predicate, resolved against the concatenated schema.
    pub residual: Option<ScalarExpr>,
}

/// A sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Index into the input row.
    pub index: usize,
    /// Direction.
    pub direction: SortDirection,
}

/// A logical relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table access.
    Scan {
        /// Stored table name.
        table: String,
        /// Binding (alias) used by the query.
        binding: String,
        /// `LLM.` / `DB.` qualifier if written.
        source: Option<SourceQualifier>,
        /// Output schema.
        schema: PlanSchema,
        /// Index of the table's key attribute within `schema`.
        key_index: usize,
    },
    /// σ — keep rows satisfying the predicate.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// π — compute output expressions.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Output expressions with names.
        exprs: Vec<(ScalarExpr, String)>,
        /// Output schema.
        schema: PlanSchema,
    },
    /// ⋈ — join with an equi/residual condition.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join flavour.
        join_type: JoinType,
        /// Condition decomposition.
        condition: JoinCondition,
        /// Output schema (left ++ right).
        schema: PlanSchema,
    },
    /// × — cross product (no condition; the optimizer tries to turn
    /// `Filter(CrossJoin)` into `Join`).
    CrossJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Output schema (left ++ right).
        schema: PlanSchema,
    },
    /// γ — grouped aggregation.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Group-by expressions over the input.
        group_by: Vec<(ScalarExpr, String)>,
        /// Aggregate calls.
        aggregates: Vec<AggCall>,
        /// Output schema: group keys then aggregates.
        schema: PlanSchema,
    },
    /// Sort by key columns of the input.
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Keys, highest priority first.
        keys: Vec<SortKey>,
    },
    /// Duplicate elimination over whole rows (order-preserving).
    Distinct {
        /// Input operator.
        input: Box<LogicalPlan>,
    },
    /// Skip the first `offset` rows, then keep the next `n`.
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: u64,
        /// Rows skipped before the budget applies (0 for a plain LIMIT).
        offset: u64,
    },
}

impl LogicalPlan {
    /// The operator's output schema.
    pub fn schema(&self) -> PlanSchema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::CrossJoin { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::CrossJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// All scans in the plan, left to right.
    pub fn scans(&self) -> Vec<&LogicalPlan> {
        let mut out = Vec::new();
        fn rec<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a LogicalPlan>) {
            if matches!(p, LogicalPlan::Scan { .. }) {
                out.push(p);
            }
            for c in p.children() {
                rec(c, out);
            }
        }
        rec(self, &mut out);
        out
    }

    /// Renders the plan as an indented tree — the paper's Figure 3 style
    /// explanation (`EXPLAIN` output).
    pub fn explain(&self) -> String {
        self.explain_annotated(&|_| String::new())
    }

    /// [`LogicalPlan::explain`] with a per-operator suffix supplied by the
    /// caller — e.g. the cost estimator appending `(rows≈N)` to every line
    /// (see [`crate::cost::explain_with_rows`]).
    pub fn explain_annotated(&self, annotate: &dyn Fn(&LogicalPlan) -> String) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0, annotate);
        s
    }

    fn explain_into(
        &self,
        out: &mut String,
        depth: usize,
        annotate: &dyn Fn(&LogicalPlan) -> String,
    ) {
        let pad = "  ".repeat(depth);
        let line = |out: &mut String, body: String| {
            out.push_str(&pad);
            out.push_str(&body);
            out.push_str(&annotate(self));
            out.push('\n');
        };
        match self {
            LogicalPlan::Scan {
                table,
                binding,
                source,
                ..
            } => {
                let src = match source {
                    Some(SourceQualifier::Llm) => "LLM.",
                    Some(SourceQualifier::Db) => "DB.",
                    None => "",
                };
                line(out, format!("Scan {src}{table} AS {binding}"));
            }
            LogicalPlan::Filter { input, predicate } => {
                line(out, format!("Filter {predicate}"));
                input.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                line(out, format!("Project {}", cols.join(", ")));
                input.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
                ..
            } => {
                let eq: Vec<String> = condition
                    .equi
                    .iter()
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                let res = condition
                    .residual
                    .as_ref()
                    .map(|r| format!(" AND {r}"))
                    .unwrap_or_default();
                line(
                    out,
                    format!(
                        "{join_type} ON {}{res}",
                        if eq.is_empty() {
                            "TRUE".to_string()
                        } else {
                            eq.join(" AND ")
                        }
                    ),
                );
                left.explain_into(out, depth + 1, annotate);
                right.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::CrossJoin { left, right, .. } => {
                line(out, "CrossJoin".to_string());
                left.explain_into(out, depth + 1, annotate);
                right.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
                ..
            } => {
                let keys: Vec<String> = group_by.iter().map(|(e, _)| e.to_string()).collect();
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                line(
                    out,
                    format!(
                        "Aggregate group=[{}] aggs=[{}]",
                        keys.join(", "),
                        aggs.join(", ")
                    ),
                );
                input.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "#{}{}",
                            k.index,
                            if k.direction == SortDirection::Desc {
                                " DESC"
                            } else {
                                ""
                            }
                        )
                    })
                    .collect();
                line(out, format!("Sort {}", ks.join(", ")));
                input.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Distinct { input } => {
                line(out, "Distinct".to_string());
                input.explain_into(out, depth + 1, annotate);
            }
            LogicalPlan::Limit { input, n, offset } => {
                if *offset > 0 {
                    line(out, format!("Limit {n} OFFSET {offset}"));
                } else {
                    line(out, format!("Limit {n}"));
                }
                input.explain_into(out, depth + 1, annotate);
            }
        }
    }
}

/// Builds the output schema of an aggregate node.
pub fn aggregate_schema(group_by: &[(ScalarExpr, String)], aggregates: &[AggCall]) -> PlanSchema {
    let mut cols = Vec::with_capacity(group_by.len() + aggregates.len());
    for (expr, name) in group_by {
        let (binding, nullable) = match expr {
            ScalarExpr::Column(c) => (c.binding.clone(), true),
            _ => (None, true),
        };
        cols.push(PlanColumn {
            binding,
            name: name.clone(),
            data_type: expr.data_type(),
            nullable,
        });
    }
    for agg in aggregates {
        cols.push(PlanColumn::computed(
            agg.output_name.clone(),
            agg.output_type(),
        ));
    }
    PlanSchema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ResolvedColumn;

    #[test]
    fn agg_func_names_and_types() {
        assert_eq!(AggFunc::from_name("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("LOWER"), None);
        assert_eq!(AggFunc::Count.output_type(None), DataType::Int);
        assert_eq!(
            AggFunc::Sum.output_type(Some(DataType::Float)),
            DataType::Float
        );
        assert_eq!(AggFunc::Sum.output_type(Some(DataType::Int)), DataType::Int);
        assert_eq!(
            AggFunc::Avg.output_type(Some(DataType::Int)),
            DataType::Float
        );
        assert_eq!(
            AggFunc::Max.output_type(Some(DataType::Date)),
            DataType::Date
        );
    }

    #[test]
    fn aggregate_schema_layout() {
        let key = ScalarExpr::Column(ResolvedColumn {
            index: 0,
            binding: Some("c".into()),
            name: "country".into(),
            data_type: DataType::Text,
        });
        let agg = AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            output_name: "COUNT(*)".into(),
        };
        let schema = aggregate_schema(&[(key, "country".into())], &[agg]);
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.columns[0].binding.as_deref(), Some("c"));
        assert_eq!(schema.columns[1].name, "COUNT(*)");
        assert_eq!(schema.columns[1].data_type, DataType::Int);
    }

    #[test]
    fn explain_renders_tree() {
        let scan = LogicalPlan::Scan {
            table: "city".into(),
            binding: "c".into(),
            source: None,
            schema: PlanSchema::default(),
            key_index: 0,
        };
        let plan = LogicalPlan::Limit {
            input: Box::new(scan),
            n: 3,
            offset: 0,
        };
        let text = plan.explain();
        assert!(text.starts_with("Limit 3\n"));
        assert!(text.contains("  Scan city AS c"));
    }
}
