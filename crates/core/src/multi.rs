//! Cross-query scheduling: many in-flight queries over one shared lane
//! pool.
//!
//! The single-query engine runs each statement to completion on its own
//! private `K`-lane [`EventClock`](galois_llm::EventClock); a suite clock
//! is therefore a *sum* of per-query makespans, and each query's
//! list-bound tail leaves most lanes idle. This module lifts the lanes
//! into a shared [`LanePool`] and replays the
//! queries' micro-batch task traces against it, so one query's waits are
//! overlapped by another's filter/fetch work.
//!
//! ## Two-level design
//!
//! Determinism (and bit-exact answers) come from splitting *what runs*
//! from *when it runs*:
//!
//! 1. **Logical pass** — queries execute serially, in canonical workload
//!    order, through the ordinary streaming engine
//!    (`Galois::execute_traced`). Prompts, cache hits, result relations
//!    and per-phase accounting are therefore identical to running the
//!    suite back-to-back, whatever the session assignment. Each query
//!    yields its dataflow's task trace: every micro-batch the private
//!    clock scheduled, with its private release/duration/completion.
//! 2. **Global replay** — a discrete-event simulation packs the traced
//!    tasks onto the shared pool under the
//!    [`AdmissionPolicy`]: closed-loop sessions,
//!    FIFO admission with a `max_inflight` cap (the wait is
//!    [`QueryStats::queue_ms`](crate::QueryStats::queue_ms)), per-session
//!    in-flight task quotas, and
//!    [`FairShare`] arbitration between sessions
//!    with ready tasks at the same instant.
//!
//! A task may start once every earlier task of the same query that
//! *preceded it* in the private schedule (private completion ≤ the
//! task's private release) has completed in the replay — the trace's
//! happens-before edges, nothing more. With one session, an unlimited
//! quota and the derived `sessions × K` pool, the replay reproduces the
//! private schedule bit-exactly, which is what the determinism battery
//! asserts.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use galois_llm::{FairShare, LanePool};

use crate::error::Result;
use crate::session::{AdmissionPolicy, Galois, GaloisResult, TracedTask};

/// One query's outcome under cross-query scheduling.
#[derive(Debug, Clone)]
pub struct MultiQueryOutcome {
    /// The query's result — identical relation and prompt accounting to a
    /// serial run; only the clock fields (`virtual_ms`, `queue_ms`)
    /// reflect the shared pool.
    pub result: GaloisResult,
    /// Session (tenant) the query belonged to.
    pub session: usize,
    /// Virtual instant the query arrived (closed-loop: when the session's
    /// previous query finished; `0` for each session's first).
    pub arrival_ms: u64,
    /// Virtual instant the admission controller let it start.
    pub admitted_ms: u64,
    /// Virtual instant its last task completed.
    pub finished_ms: u64,
}

impl MultiQueryOutcome {
    /// End-to-end virtual latency the session observed: queueing delay
    /// plus execution (`finished − arrival`).
    pub fn latency_ms(&self) -> u64 {
        self.finished_ms.saturating_sub(self.arrival_ms)
    }
}

/// Report of one [`run_multi_query`] replay.
#[derive(Debug, Clone)]
pub struct MultiQueryReport {
    /// Per-query outcomes, in the canonical input order.
    pub outcomes: Vec<MultiQueryOutcome>,
    /// Virtual instant the last query finished.
    pub makespan_ms: u64,
    /// Lanes in the shared pool the replay ran on.
    pub pool_lanes: usize,
    /// Closed-loop sessions the queries were spread across.
    pub sessions: usize,
    /// Fraction of the `pool_lanes × makespan` budget spent doing work.
    pub lane_utilisation: f64,
    /// Total queueing delay across all queries.
    pub total_queue_ms: u64,
}

impl MultiQueryReport {
    /// The `p`-th percentile (0.0–1.0) of per-query virtual latency
    /// (`finished − arrival`), by nearest rank over the sorted latencies.
    pub fn latency_percentile_ms(&self, p: f64) -> u64 {
        if self.outcomes.is_empty() {
            return 0;
        }
        let mut lat: Vec<u64> = self.outcomes.iter().map(|o| o.latency_ms()).collect();
        lat.sort_unstable();
        let idx = ((lat.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        lat[idx]
    }

    /// Median per-query virtual latency.
    pub fn p50_latency_ms(&self) -> u64 {
        self.latency_percentile_ms(0.50)
    }

    /// 99th-percentile per-query virtual latency.
    pub fn p99_latency_ms(&self) -> u64 {
        self.latency_percentile_ms(0.99)
    }
}

/// A query mid-replay: its trace, dependency pointer and clock marks.
struct ReplayQuery {
    session: usize,
    trace: Vec<TracedTask>,
    /// Replay completion instant per task (`None` while pending/running).
    done_at: Vec<Option<u64>>,
    /// Next trace index to submit (tasks submit strictly in fire order).
    next: usize,
    /// Tasks submitted but not yet completed.
    running: usize,
    arrival: Option<u64>,
    admitted: Option<u64>,
    finished: Option<u64>,
}

impl ReplayQuery {
    /// True when the next task's happens-before edges are all satisfied:
    /// no in-flight earlier task finished (privately) at or before the
    /// next task's private release.
    fn next_ready(&self) -> bool {
        if self.next >= self.trace.len() {
            return false;
        }
        let release = self.trace[self.next].release;
        (0..self.next).all(|j| self.done_at[j].is_some() || self.trace[j].completion > release)
    }

    fn all_done(&self) -> bool {
        self.next >= self.trace.len() && self.running == 0
    }
}

/// Runs `queries` through the session's engine once (canonical order),
/// then replays their task traces over a shared lane pool under `policy`,
/// with `session_of[i]` naming each query's closed-loop session.
///
/// Answers are those of a serial run by construction; the replay decides
/// only the clocks. Each outcome's
/// [`stats.virtual_ms`](crate::QueryStats::virtual_ms) is overridden to
/// `finished − admitted` and
/// [`stats.queue_ms`](crate::QueryStats::queue_ms) to
/// `admitted − arrival`.
///
/// Requires [`Pipeline::Streaming`](crate::Pipeline::Streaming) (the wave
/// engine has no task trace to replay) and
/// `session_of.len() == queries.len()`.
pub fn run_multi_query(
    galois: &Galois,
    queries: &[&str],
    session_of: &[usize],
    policy: &AdmissionPolicy,
) -> Result<MultiQueryReport> {
    assert_eq!(
        queries.len(),
        session_of.len(),
        "session_of must assign every query a session"
    );
    let sessions = session_of.iter().map(|s| s + 1).max().unwrap_or(1);
    let k = galois.options().parallelism.get();
    let pool_lanes = policy.pool_lanes_for(sessions, k);

    // Logical pass: canonical order, shared caches warm in workload order
    // exactly as a serial suite would — the session assignment cannot
    // change any answer or prompt count.
    let mut results = Vec::with_capacity(queries.len());
    let mut replay: Vec<ReplayQuery> = Vec::with_capacity(queries.len());
    for (i, sql) in queries.iter().enumerate() {
        let (result, trace) = galois.execute_traced(sql)?;
        results.push(result);
        replay.push(ReplayQuery {
            session: session_of[i],
            done_at: vec![None; trace.len()],
            trace,
            next: 0,
            running: 0,
            arrival: None,
            admitted: None,
            finished: None,
        });
    }

    // Closed-loop session chains: each session issues its queries in
    // canonical order, the next arriving the instant the previous
    // finishes.
    let mut chain: Vec<Vec<usize>> = vec![Vec::new(); sessions];
    for (i, &s) in session_of.iter().enumerate() {
        chain[s].push(i);
    }
    let mut chain_pos: Vec<usize> = vec![0; sessions];

    let mut pool = LanePool::new(pool_lanes, sessions);
    // FIFO admission queue, ordered by (arrival, canonical index).
    let mut waiting: BTreeSet<(u64, usize)> = BTreeSet::new();
    // Completion events: (time, submission seq, query index, task index).
    let mut events: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut inflight_queries: usize = 0;
    let mut session_tasks: Vec<usize> = vec![0; sessions];
    let mut rr_cursor: usize = 0;
    let mut makespan: u64 = 0;
    let mut total_queue: u64 = 0;

    // Arrive each session's first query at t = 0.
    for s in 0..sessions {
        if let Some(&q) = chain[s].first() {
            chain_pos[s] = 1;
            replay[q].arrival = Some(0);
            waiting.insert((0, q));
        }
    }

    // One instant of admission: drain the FIFO queue into the in-flight
    // set while the cap allows. Empty-trace queries (EXPLAIN, pure-DB
    // plans) finish the instant they are admitted, so their closed-loop
    // successor arrives — and may itself be admitted — within the loop.
    macro_rules! admit_and_finish {
        ($t:expr) => {{
            let t = $t;
            loop {
                let Some(&(arr, q)) = waiting.iter().next() else {
                    break;
                };
                debug_assert!(arr <= t);
                if policy.max_inflight > 0 && inflight_queries >= policy.max_inflight {
                    break;
                }
                waiting.remove(&(arr, q));
                replay[q].admitted = Some(t);
                total_queue += t - arr;
                if replay[q].trace.is_empty() {
                    replay[q].finished = Some(t);
                    makespan = makespan.max(t);
                    let s = replay[q].session;
                    if let Some(&next_q) = chain[s].get(chain_pos[s]) {
                        chain_pos[s] += 1;
                        replay[next_q].arrival = Some(t);
                        waiting.insert((t, next_q));
                    }
                } else {
                    inflight_queries += 1;
                }
            }
        }};
    }

    // One instant of submission: while some admitted query has a ready
    // task and its session is under quota, pick the fair-share winner and
    // schedule its next task on the pool (release = now). Recomputed
    // after every pick — `served_ms` moves under deficit fairness.
    macro_rules! submit_ready {
        ($t:expr) => {{
            let t = $t;
            loop {
                let candidate_sessions: Vec<usize> = (0..sessions)
                    .filter(|&s| {
                        policy.session_quota == 0 || session_tasks[s] < policy.session_quota
                    })
                    .filter(|&s| {
                        (0..replay.len()).any(|q| {
                            replay[q].session == s
                                && replay[q].admitted.is_some()
                                && replay[q].next_ready()
                        })
                    })
                    .collect();
                if candidate_sessions.is_empty() {
                    break;
                }
                let winner_session = match policy.share {
                    FairShare::DeficitMs => *candidate_sessions
                        .iter()
                        .min_by_key(|&&s| (pool.served_ms(s), s))
                        .expect("non-empty candidates"),
                    FairShare::RoundRobin => {
                        let mut pick = candidate_sessions[0];
                        for off in 0..sessions {
                            let s = (rr_cursor + off) % sessions;
                            if candidate_sessions.contains(&s) {
                                pick = s;
                                break;
                            }
                        }
                        rr_cursor = (pick + 1) % sessions;
                        pick
                    }
                };
                let q = (0..replay.len())
                    .find(|&q| {
                        replay[q].session == winner_session
                            && replay[q].admitted.is_some()
                            && replay[q].next_ready()
                    })
                    .expect("winner session has a ready query");
                let idx = replay[q].next;
                let duration = replay[q].trace[idx].duration;
                let done = pool.schedule(winner_session, t, duration);
                replay[q].next = idx + 1;
                replay[q].running += 1;
                session_tasks[winner_session] += 1;
                events.push(Reverse((done, seq, q, idx)));
                seq += 1;
            }
        }};
    }

    admit_and_finish!(0);
    submit_ready!(0);

    while let Some(&Reverse((t, _, _, _))) = events.peek() {
        // Drain every completion at this instant, finishing queries and
        // arriving their closed-loop successors.
        while let Some(&Reverse((et, _, _, _))) = events.peek() {
            if et != t {
                break;
            }
            let Reverse((_, _, q, idx)) = events.pop().expect("peeked event");
            replay[q].done_at[idx] = Some(t);
            replay[q].running -= 1;
            let s = replay[q].session;
            session_tasks[s] -= 1;
            if replay[q].all_done() {
                replay[q].finished = Some(t);
                makespan = makespan.max(t);
                inflight_queries -= 1;
                if let Some(&next_q) = chain[s].get(chain_pos[s]) {
                    chain_pos[s] += 1;
                    replay[next_q].arrival = Some(t);
                    waiting.insert((t, next_q));
                }
            }
        }
        admit_and_finish!(t);
        submit_ready!(t);
    }

    debug_assert!(waiting.is_empty() && inflight_queries == 0);

    let mut outcomes = Vec::with_capacity(results.len());
    for (result, rq) in results.into_iter().zip(replay) {
        let arrival = rq.arrival.expect("every query arrived");
        let admitted = rq.admitted.expect("every query was admitted");
        let finished = rq.finished.expect("every query finished");
        let mut result = result;
        result.stats.virtual_ms = finished - admitted;
        result.stats.queue_ms = admitted - arrival;
        outcomes.push(MultiQueryOutcome {
            result,
            session: rq.session,
            arrival_ms: arrival,
            admitted_ms: admitted,
            finished_ms: finished,
        });
    }
    Ok(MultiQueryReport {
        outcomes,
        makespan_ms: makespan,
        pool_lanes,
        sessions,
        lane_utilisation: pool.utilisation(),
        total_queue_ms: total_queue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use galois_dataset::Scenario;
    use galois_llm::{ModelProfile, Parallelism, SimLlm};

    use crate::session::{GaloisOptions, Pipeline, PromptBatch};

    const SUITE: [&str; 4] = [
        "SELECT name, population FROM city WHERE elevation < 100",
        "SELECT name FROM city WHERE population > 1000000",
        "SELECT name, elevation FROM city WHERE population > 500000",
        "SELECT name FROM city WHERE elevation < 500",
    ];

    fn streaming_session(lanes: usize) -> Galois {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                pipeline: Pipeline::Streaming,
                prompt_batch: PromptBatch::Keys(10),
                parallelism: Parallelism::new(lanes),
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_session_replay_is_bit_exact_with_serial_runs() {
        let serial = streaming_session(8);
        let reference: Vec<GaloisResult> = SUITE
            .iter()
            .map(|sql| serial.execute(sql).unwrap())
            .collect();

        let galois = streaming_session(8);
        let report =
            run_multi_query(&galois, &SUITE, &[0, 0, 0, 0], &AdmissionPolicy::default()).unwrap();

        assert_eq!(report.sessions, 1);
        assert_eq!(report.pool_lanes, 8);
        assert_eq!(report.total_queue_ms, 0);
        let mut clock = 0;
        for (out, want) in report.outcomes.iter().zip(&reference) {
            assert_eq!(out.result.relation.rows, want.relation.rows);
            // The full stats struct matches the serial run bit for bit:
            // queue_ms stays zero and virtual_ms replays identically.
            let mut replayed = out.result.stats;
            replayed.wall_ms = want.stats.wall_ms;
            assert_eq!(replayed, want.stats);
            // Closed loop: each query arrives the instant its predecessor
            // finishes, so the suite clock is the serial sum.
            assert_eq!(out.arrival_ms, clock);
            assert_eq!(out.admitted_ms, clock);
            clock += want.stats.virtual_ms;
            assert_eq!(out.finished_ms, clock);
        }
        assert_eq!(report.makespan_ms, clock);
    }

    #[test]
    fn concurrent_sessions_beat_the_serial_suite_clock() {
        let serial = streaming_session(8);
        let serial_sum: u64 = SUITE
            .iter()
            .map(|sql| serial.execute(sql).unwrap().stats.virtual_ms)
            .sum();

        let galois = streaming_session(8);
        let report =
            run_multi_query(&galois, &SUITE, &[0, 1, 2, 3], &AdmissionPolicy::default()).unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.pool_lanes, 32);
        assert!(
            report.makespan_ms < serial_sum,
            "overlapped replay {} ms should beat the serial suite {} ms",
            report.makespan_ms,
            serial_sum
        );
        assert!(report.lane_utilisation > 0.0 && report.lane_utilisation <= 1.0);
    }

    #[test]
    fn session_assignment_never_changes_answers_or_prompts() {
        let galois = streaming_session(8);
        let spread =
            run_multi_query(&galois, &SUITE, &[0, 1, 0, 1], &AdmissionPolicy::default()).unwrap();
        let galois = streaming_session(8);
        let packed =
            run_multi_query(&galois, &SUITE, &[0, 0, 0, 0], &AdmissionPolicy::default()).unwrap();
        for (a, b) in spread.outcomes.iter().zip(&packed.outcomes) {
            assert_eq!(a.result.relation.rows, b.result.relation.rows);
            assert_eq!(
                a.result.stats.total_prompts(),
                b.result.stats.total_prompts()
            );
            assert_eq!(a.result.stats.cache_hits, b.result.stats.cache_hits);
        }
    }

    #[test]
    fn inflight_cap_tallies_queue_delay() {
        let galois = streaming_session(8);
        let policy = AdmissionPolicy {
            max_inflight: 1,
            ..Default::default()
        };
        let report = run_multi_query(&galois, &SUITE, &[0, 1, 2, 3], &policy).unwrap();
        assert!(report.total_queue_ms > 0);
        let stats_queue: u64 = report
            .outcomes
            .iter()
            .map(|o| o.result.stats.queue_ms)
            .sum();
        assert_eq!(stats_queue, report.total_queue_ms);
        for o in &report.outcomes {
            assert_eq!(o.admitted_ms - o.arrival_ms, o.result.stats.queue_ms);
            assert_eq!(o.finished_ms - o.admitted_ms, o.result.stats.virtual_ms);
        }
        // A 1-at-a-time cap serialises the suite: makespan equals the sum
        // of the per-query clocks.
        let run_sum: u64 = report
            .outcomes
            .iter()
            .map(|o| o.result.stats.virtual_ms)
            .sum();
        assert_eq!(report.makespan_ms, run_sum);
    }

    #[test]
    fn round_robin_share_matches_deficit_answers() {
        let galois = streaming_session(4);
        let rr = run_multi_query(
            &galois,
            &SUITE,
            &[0, 1, 0, 1],
            &AdmissionPolicy {
                share: FairShare::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        let galois = streaming_session(4);
        let deficit =
            run_multi_query(&galois, &SUITE, &[0, 1, 0, 1], &AdmissionPolicy::default()).unwrap();
        for (a, b) in rr.outcomes.iter().zip(&deficit.outcomes) {
            assert_eq!(a.result.relation.rows, b.result.relation.rows);
            assert_eq!(
                a.result.stats.total_prompts(),
                b.result.stats.total_prompts()
            );
        }
    }

    #[test]
    fn session_quota_bounds_inflight_tasks_without_changing_answers() {
        let galois = streaming_session(8);
        let quota = run_multi_query(
            &galois,
            &SUITE,
            &[0, 1, 0, 1],
            &AdmissionPolicy {
                session_quota: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let galois = streaming_session(8);
        let free =
            run_multi_query(&galois, &SUITE, &[0, 1, 0, 1], &AdmissionPolicy::default()).unwrap();
        for (a, b) in quota.outcomes.iter().zip(&free.outcomes) {
            assert_eq!(a.result.relation.rows, b.result.relation.rows);
        }
        // Throttling task issue can only lengthen the replay clock.
        assert!(quota.makespan_ms >= free.makespan_ms);
    }

    #[test]
    fn explain_and_wave_edge_cases() {
        // EXPLAIN produces an empty trace: the query finishes the instant
        // it is admitted and its closed-loop successor still runs.
        let galois = streaming_session(8);
        let report = run_multi_query(
            &galois,
            &[
                "EXPLAIN SELECT name FROM city WHERE population > 1000000",
                "SELECT name FROM city WHERE population > 1000000",
            ],
            &[0, 0],
            &AdmissionPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes[0].finished_ms, 0);
        assert!(report.outcomes[1].finished_ms > 0);

        // The wave engine has no trace to replay.
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let wave = Galois::new(model, s.database.clone());
        let err = run_multi_query(
            &wave,
            &["SELECT name FROM city WHERE population > 1000000"],
            &[0],
            &AdmissionPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, crate::GaloisError::Unsupported(_)));
    }
}
