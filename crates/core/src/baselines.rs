//! The paper's comparison methods (§5 "Setup"):
//!
//! * `T_M` — ask the NL paraphrase `t` of the query as a plain question
//!   and post-process the text into records;
//! * `T_C_M` — the same with an engineered chain-of-thought prompt whose
//!   fixed exemplar mirrors a logical-plan execution.
//!
//! The paper post-processed QA answers *manually* ("we split
//! comma-separated values, remove repeated values and punctuation");
//! [`crate::parse::extract_records`] mechanises exactly those steps so the
//! baselines run unattended.

use crate::parse::extract_records;
use crate::prompts::PromptBuilder;
use galois_llm::{LanguageModel, LlmClient};
use std::sync::Arc;

/// Which baseline flavour to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Plain NL question (`T_M`).
    Plain,
    /// Chain-of-thought prompt (`T_C_M`).
    ChainOfThought,
}

/// Result of a QA baseline run: the raw answer text and the extracted
/// records.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Raw completion text (the paper's `T_M` / `T_C_M` artifacts are
    /// text, not relations).
    pub text: String,
    /// Records extracted by the mechanised post-processing.
    pub records: Vec<Vec<String>>,
    /// Prompt tokens used.
    pub prompt_tokens: usize,
    /// Completion tokens used.
    pub completion_tokens: usize,
    /// Virtual milliseconds.
    pub virtual_ms: u64,
}

/// A QA baseline runner over one model.
pub struct QaBaseline {
    client: LlmClient,
    prompt_builder: PromptBuilder,
}

impl QaBaseline {
    /// Creates a runner for the model.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        let prompt_builder = PromptBuilder::for_model(model.name());
        QaBaseline {
            client: LlmClient::new(model),
            prompt_builder,
        }
    }

    /// Asks the question and extracts records.
    ///
    /// Accounting comes from the call's own [`galois_llm::BatchOutcome`]
    /// rather than global counter deltas, so concurrent `ask`s (the
    /// multi-threaded harness) attribute tokens and virtual time to the
    /// right question.
    pub fn ask(&self, question: &str, kind: BaselineKind) -> BaselineResult {
        let prompt = match kind {
            BaselineKind::Plain => self.prompt_builder.question(question),
            BaselineKind::ChainOfThought => self.prompt_builder.question_cot(question),
        };
        let outcome = self.client.complete_outcome(&prompt);
        let text = outcome
            .completions
            .into_iter()
            .next()
            .expect("one completion per prompt")
            .text;
        BaselineResult {
            records: extract_records(&text),
            text,
            prompt_tokens: outcome.prompt_tokens,
            completion_tokens: outcome.completion_tokens,
            virtual_ms: outcome.virtual_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_dataset::Scenario;
    use galois_llm::{ModelProfile, SimLlm};

    fn baseline(profile: ModelProfile) -> (Scenario, QaBaseline) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), profile));
        let b = QaBaseline::new(model);
        (s, b)
    }

    #[test]
    fn oracle_plain_question_lists_cities() {
        let (s, b) = baseline(ModelProfile::oracle());
        let q = s.suite.iter().find(|q| q.id == 1).unwrap();
        let r = b.ask(&q.question(), BaselineKind::Plain);
        assert!(!r.records.is_empty(), "{}", r.text);
        // Every extracted record is a single key cell.
        assert!(r.records.iter().all(|rec| rec.len() == 1));
    }

    #[test]
    fn oracle_count_question_is_numeric() {
        let (s, b) = baseline(ModelProfile::oracle());
        let q = s.suite.iter().find(|q| q.id == 21).unwrap(); // COUNT(*) city
        let r = b.ask(&q.question(), BaselineKind::Plain);
        assert_eq!(r.records.len(), 1, "{}", r.text);
        let truth = s.database.execute(&q.to_sql()).unwrap();
        assert_eq!(r.records[0][0], truth.rows[0][0].render());
    }

    #[test]
    fn cot_prompt_differs_from_plain() {
        let (s, b) = baseline(ModelProfile::chatgpt());
        let q = s.suite.iter().find(|q| q.id == 23).unwrap(); // AVG population
        let plain = b.ask(&q.question(), BaselineKind::Plain);
        let cot = b.ask(&q.question(), BaselineKind::ChainOfThought);
        // Different prompts → independently noisy answers; both non-empty.
        assert!(!plain.text.is_empty());
        assert!(!cot.text.is_empty());
    }

    #[test]
    fn baseline_tracks_usage() {
        let (s, b) = baseline(ModelProfile::oracle());
        let r = b.ask(&s.suite[0].question(), BaselineKind::Plain);
        assert!(r.prompt_tokens > 0);
        assert!(r.virtual_ms > 0);
    }
}
