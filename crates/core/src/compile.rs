//! Compiling a logical plan into LLM retrieval steps plus a residual
//! relational plan (paper §4 "Operators").
//!
//! The plan *is* the chain-of-thought: every LLM-sourced base relation
//! becomes one [`LlmScanStep`] — key retrieval, optional per-key filter
//! checks, and per-key attribute fetches for every attribute the rest of
//! the plan touches. The remaining operators (joins, aggregates, sorts)
//! stay relational and run unchanged over the retrieved tuples ("the
//! operators that manipulate data fill up the limitations of LLMs").

use crate::error::{GaloisError, Result};
use galois_llm::intent::{CmpOp, Condition, PromptValue};
use galois_relational::{Catalog, LogicalPlan, ScalarExpr, Value};
use galois_sql::ast::{BinaryOp, SourceQualifier};
use std::collections::{BTreeSet, HashMap};

/// Where unqualified tables come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultSource {
    /// Unqualified relations are retrieved from the LLM (the paper's main
    /// experiments run queries entirely against the model).
    Llm,
    /// Unqualified relations come from the relational store; only
    /// `LLM.`-qualified ones hit the model.
    Db,
}

/// How Galois executes selections over LLM relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// One boolean prompt per key (the paper's operator: "Has city c.name
    /// more than 1M population?").
    LlmBoolean,
    /// Fetch the attribute, then compare in the engine (cleaner, used as
    /// an ablation).
    FetchCompare,
}

/// One LLM base-relation retrieval.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmScanStep {
    /// Relation name as written in the query.
    pub table: String,
    /// Binding in the query scope.
    pub binding: String,
    /// Name of the temporary materialised table.
    pub temp_name: String,
    /// Key attribute label.
    pub key_attr: String,
    /// Index of the key column.
    pub key_index: usize,
    /// Full column list of the relation (order preserved so plan indexes
    /// stay valid).
    pub columns: Vec<galois_relational::Column>,
    /// Attributes (by column index) that must be fetched per key.
    pub fetch: Vec<usize>,
    /// Condition pushed into the key-listing prompt (prompt-pushdown
    /// optimization, §6).
    pub scan_condition: Option<Condition>,
    /// Conditions checked with one boolean prompt per key.
    pub filter_conditions: Vec<Condition>,
}

impl LlmScanStep {
    /// The step's key-universe identity: two scans share a stored
    /// universe exactly when they would render the same key-listing
    /// prompt chain — same relation, key attribute, and pushed-down scan
    /// condition. Filter conditions and fetched attributes are
    /// deliberately excluded: they shape later phases, not the universe.
    ///
    /// Fields are joined with the ASCII unit separator so concatenation
    /// cannot alias two different steps.
    pub fn concept_signature(&self) -> String {
        concept_signature_for(
            &self.table,
            &self.key_attr,
            &self
                .scan_condition
                .as_ref()
                .map(|c| c.render())
                .unwrap_or_default(),
        )
    }
}

/// Builds a key-universe concept signature from raw parts — the same
/// string [`LlmScanStep::concept_signature`] produces. Exposed so tests
/// and tooling can look up a stored universe from a parsed `ListKeys`
/// prompt (relation, key attribute, rendered condition) without
/// compiling a query first.
pub fn concept_signature_for(table: &str, key_attr: &str, rendered_condition: &str) -> String {
    format!("list\u{1f}{table}\u{1f}{key_attr}\u{1f}{rendered_condition}")
}

/// A compiled query: retrieval steps plus the residual plan referencing
/// temporary tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// LLM retrievals, in leaf order.
    pub steps: Vec<LlmScanStep>,
    /// The plan to run after materialisation.
    pub plan: LogicalPlan,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Source for unqualified tables.
    pub default_source: DefaultSource,
    /// Selection strategy.
    pub filter_mode: FilterMode,
    /// Push single simple conditions into the key-listing prompt.
    pub pushdown: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            default_source: DefaultSource::Llm,
            filter_mode: FilterMode::LlmBoolean,
            pushdown: false,
        }
    }
}

/// Compiles an (optimized) logical plan against the catalog.
pub fn compile(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<CompiledQuery> {
    // Pass 1: which attributes does the plan need per binding?
    let mut needed: HashMap<String, BTreeSet<String>> = HashMap::new();
    collect_needed(plan, &mut needed);

    // Pass 2: rewrite LLM scans (and their filters) into steps.
    let mut steps = Vec::new();
    let plan = rewrite(plan, catalog, options, &needed, &mut steps)?;
    Ok(CompiledQuery { steps, plan })
}

fn is_llm_scan(source: Option<SourceQualifier>, options: &CompileOptions) -> bool {
    match source {
        Some(SourceQualifier::Llm) => true,
        Some(SourceQualifier::Db) => false,
        None => options.default_source == DefaultSource::Llm,
    }
}

fn collect_needed(plan: &LogicalPlan, needed: &mut HashMap<String, BTreeSet<String>>) {
    let mut note_expr = |e: &ScalarExpr| {
        e.walk(&mut |n| {
            if let ScalarExpr::Column(c) = n {
                if let Some(b) = &c.binding {
                    needed.entry(b.clone()).or_default().insert(c.name.clone());
                }
            }
        });
    };
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Filter { input, predicate } => {
            note_expr(predicate);
            collect_needed(input, needed);
        }
        LogicalPlan::Project { input, exprs, .. } => {
            for (e, _) in exprs {
                note_expr(e);
            }
            collect_needed(input, needed);
        }
        LogicalPlan::Join {
            left,
            right,
            condition,
            ..
        } => {
            for (l, r) in &condition.equi {
                note_expr(l);
                note_expr(r);
            }
            if let Some(r) = &condition.residual {
                note_expr(r);
            }
            collect_needed(left, needed);
            collect_needed(right, needed);
        }
        LogicalPlan::CrossJoin { left, right, .. } => {
            collect_needed(left, needed);
            collect_needed(right, needed);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            ..
        } => {
            for (e, _) in group_by {
                note_expr(e);
            }
            for a in aggregates {
                if let Some(arg) = &a.arg {
                    note_expr(arg);
                }
            }
            collect_needed(input, needed);
        }
        LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => collect_needed(input, needed),
    }
}

fn rewrite(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: &CompileOptions,
    needed: &HashMap<String, BTreeSet<String>>,
    steps: &mut Vec<LlmScanStep>,
) -> Result<LogicalPlan> {
    match plan {
        // A filter directly above an LLM scan: translate conjuncts into
        // prompt conditions where possible.
        LogicalPlan::Filter { input, predicate } => {
            if let LogicalPlan::Scan {
                table,
                binding,
                source,
                schema,
                key_index,
            } = input.as_ref()
            {
                if is_llm_scan(*source, options) {
                    let mut conditions = Vec::new();
                    let mut residual: Vec<ScalarExpr> = Vec::new();
                    for conj in galois_relational::builder::split_conjuncts(predicate.clone()) {
                        match (options.filter_mode, expr_to_condition(&conj, binding)) {
                            (FilterMode::LlmBoolean, Some(cond)) => conditions.push(cond),
                            _ => residual.push(conj),
                        }
                    }
                    let scan = make_step(
                        table, binding, *key_index, schema, catalog, options, needed, conditions,
                        steps,
                    )?;
                    return Ok(match and_all(residual) {
                        Some(p) => LogicalPlan::Filter {
                            input: Box::new(scan),
                            predicate: p,
                        },
                        None => scan,
                    });
                }
            }
            Ok(LogicalPlan::Filter {
                input: Box::new(rewrite(input, catalog, options, needed, steps)?),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::Scan {
            table,
            binding,
            source,
            schema,
            key_index,
        } => {
            if is_llm_scan(*source, options) {
                make_step(
                    table,
                    binding,
                    *key_index,
                    schema,
                    catalog,
                    options,
                    needed,
                    Vec::new(),
                    steps,
                )
            } else {
                Ok(plan.clone())
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => Ok(LogicalPlan::Project {
            input: Box::new(rewrite(input, catalog, options, needed, steps)?),
            exprs: exprs.clone(),
            schema: schema.clone(),
        }),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
            schema,
        } => Ok(LogicalPlan::Join {
            left: Box::new(rewrite(left, catalog, options, needed, steps)?),
            right: Box::new(rewrite(right, catalog, options, needed, steps)?),
            join_type: *join_type,
            condition: condition.clone(),
            schema: schema.clone(),
        }),
        LogicalPlan::CrossJoin {
            left,
            right,
            schema,
        } => Ok(LogicalPlan::CrossJoin {
            left: Box::new(rewrite(left, catalog, options, needed, steps)?),
            right: Box::new(rewrite(right, catalog, options, needed, steps)?),
            schema: schema.clone(),
        }),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            schema,
        } => Ok(LogicalPlan::Aggregate {
            input: Box::new(rewrite(input, catalog, options, needed, steps)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
            schema: schema.clone(),
        }),
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(rewrite(input, catalog, options, needed, steps)?),
            keys: keys.clone(),
        }),
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(rewrite(input, catalog, options, needed, steps)?),
        }),
        LogicalPlan::Limit { input, n, offset } => Ok(LogicalPlan::Limit {
            input: Box::new(rewrite(input, catalog, options, needed, steps)?),
            n: *n,
            offset: *offset,
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn make_step(
    table: &str,
    binding: &str,
    key_index: usize,
    schema: &galois_relational::PlanSchema,
    catalog: &Catalog,
    options: &CompileOptions,
    needed: &HashMap<String, BTreeSet<String>>,
    mut filter_conditions: Vec<Condition>,
    steps: &mut Vec<LlmScanStep>,
) -> Result<LogicalPlan> {
    let stored = catalog.get(table).map_err(GaloisError::from)?;
    let columns = stored.schema.columns.clone();
    let key_attr = columns[key_index].name.clone();

    // Attributes the plan touches for this binding, as column indexes;
    // the key is retrieved by the scan itself and never fetched.
    let mut fetch = Vec::new();
    if let Some(names) = needed.get(binding) {
        for name in names {
            if name.eq_ignore_ascii_case(&key_attr) {
                continue;
            }
            if let Some(idx) = stored.schema.index_of(name) {
                fetch.push(idx);
            }
        }
    }

    // Prompt pushdown: fold a single prompt-expressible condition into the
    // key-listing prompt.
    let scan_condition = if options.pushdown && filter_conditions.len() == 1 {
        let cond = filter_conditions.remove(0);
        // The pushed attribute no longer needs a per-key filter prompt,
        // but the plan may still project it; keep any fetch entries.
        Some(cond)
    } else {
        None
    };

    let temp_name = format!("__llm_{}", binding.to_ascii_lowercase());
    let step = LlmScanStep {
        table: table.to_string(),
        binding: binding.to_string(),
        temp_name: temp_name.clone(),
        key_attr,
        key_index,
        columns,
        fetch,
        scan_condition,
        filter_conditions,
    };
    steps.push(step);

    Ok(LogicalPlan::Scan {
        table: temp_name,
        binding: binding.to_string(),
        source: None,
        schema: schema.clone(),
        key_index,
    })
}

fn and_all(mut conjuncts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    let first = conjuncts.pop()?;
    Some(
        conjuncts
            .into_iter()
            .rev()
            .fold(first, |acc, c| ScalarExpr::Binary {
                left: Box::new(c),
                op: BinaryOp::And,
                right: Box::new(acc),
            }),
    )
}

/// Translates a resolved conjunct over one binding into a prompt-protocol
/// condition, when its shape allows (column vs literal(s)).
pub fn expr_to_condition(expr: &ScalarExpr, binding: &str) -> Option<Condition> {
    let col_of = |e: &ScalarExpr| -> Option<String> {
        match e {
            ScalarExpr::Column(c)
                if c.binding
                    .as_deref()
                    .is_some_and(|b| b.eq_ignore_ascii_case(binding)) =>
            {
                Some(c.name.clone())
            }
            _ => None,
        }
    };
    let lit_of = |e: &ScalarExpr| -> Option<PromptValue> {
        match e {
            ScalarExpr::Literal(Value::Int(v)) => Some(PromptValue::Number(*v as f64)),
            ScalarExpr::Literal(Value::Float(v)) => Some(PromptValue::Number(*v)),
            ScalarExpr::Literal(Value::Text(s)) => Some(PromptValue::Text(s.clone())),
            _ => None,
        }
    };

    match expr {
        ScalarExpr::Binary { left, op, right } if op.is_comparison() => {
            // column OP literal (or mirrored).
            let (attr, value, op) = if let (Some(a), Some(v)) = (col_of(left), lit_of(right)) {
                (a, v, *op)
            } else if let (Some(a), Some(v)) = (col_of(right), lit_of(left)) {
                (a, v, mirror(*op))
            } else {
                return None;
            };
            let cmp = match op {
                BinaryOp::Eq => CmpOp::Eq,
                BinaryOp::NotEq => CmpOp::NotEq,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::GtEq => CmpOp::GtEq,
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::LtEq => CmpOp::LtEq,
                _ => return None,
            };
            Some(Condition {
                attribute: attr,
                op: cmp,
                values: vec![value],
            })
        }
        ScalarExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let attr = col_of(expr)?;
            Some(Condition {
                attribute: attr,
                op: CmpOp::Between,
                values: vec![lit_of(low)?, lit_of(high)?],
            })
        }
        ScalarExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            let attr = col_of(expr)?;
            let values: Option<Vec<PromptValue>> = list.iter().map(lit_of).collect();
            Some(Condition {
                attribute: attr,
                op: CmpOp::In,
                values: values?,
            })
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated: false,
        } => {
            let attr = col_of(expr)?;
            Some(Condition {
                attribute: attr,
                op: CmpOp::Like,
                values: vec![lit_of(pattern)?],
            })
        }
        ScalarExpr::IsNull { expr, negated } => {
            let attr = col_of(expr)?;
            Some(Condition {
                attribute: attr,
                op: if *negated {
                    CmpOp::IsNotNull
                } else {
                    CmpOp::IsNull
                },
                values: vec![],
            })
        }
        _ => None,
    }
}

fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// The number of leading survivor keys that bound the query's result,
/// when the residual plan's shape lets the streaming engine stop
/// retrieval early: a `Limit` reached from the root through row-wise
/// `Project`s, whose input chains through further `Project`s down to the
/// sole LLM step's temp scan. The hint is `n + offset` — the rows the
/// window can ever surface. Any other operator on that spine (a sort,
/// join, aggregate, distinct or residual filter) consumes the full key
/// universe, so the hint is `None` and retrieval runs to exhaustion.
pub fn limit_hint(compiled: &CompiledQuery) -> Option<usize> {
    if compiled.steps.len() != 1 {
        return None;
    }
    // Walk root → Limit through the strip-Project the builder may add
    // above the limit.
    let mut node = &compiled.plan;
    let (input, needed) = loop {
        match node {
            LogicalPlan::Project { input, .. } => node = input.as_ref(),
            LogicalPlan::Limit { input, n, offset } => {
                break (
                    input.as_ref(),
                    (*n as usize).saturating_add(*offset as usize),
                )
            }
            _ => return None,
        }
    };
    // Walk Limit → the step's temp scan through row-wise projections.
    let mut node = input;
    loop {
        match node {
            LogicalPlan::Project { input, .. } => node = input.as_ref(),
            LogicalPlan::Scan { table, .. } if *table == compiled.steps[0].temp_name => {
                return Some(needed);
            }
            _ => return None,
        }
    }
}

/// Renders one retrieval step's header and prompt protocol (the Figure-3
/// step block, shared by [`explain_compiled`] and the planner's
/// [`crate::plan_choice::PlannedQuery::render`]).
pub fn render_step_into(step: &LlmScanStep, index: usize, out: &mut String) {
    out.push_str(&format!(
        "[LLM step {}] scan {} AS {} (key: {})\n",
        index + 1,
        step.table,
        step.binding,
        step.key_attr
    ));
    if let Some(c) = &step.scan_condition {
        out.push_str(&format!("    pushed-down condition: {}\n", c.render()));
    }
    for f in &step.filter_conditions {
        out.push_str(&format!("    filter prompt per key: {}\n", f.render()));
    }
    for idx in &step.fetch {
        out.push_str(&format!(
            "    fetch prompt per key: {}\n",
            step.columns[*idx].name
        ));
    }
}

/// Renders the compiled query in Figure-3 style: retrieval steps plus the
/// residual plan.
pub fn explain_compiled(c: &CompiledQuery) -> String {
    let mut out = String::new();
    for (i, s) in c.steps.iter().enumerate() {
        render_step_into(s, i, &mut out);
    }
    out.push_str("[relational plan]\n");
    out.push_str(&c.plan.explain());
    out
}

/// True if the residual plan still contains a cross join (diagnostic).
pub fn has_cross_join(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::CrossJoin { .. } => true,
        _ => plan.children().iter().any(|c| has_cross_join(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_dataset::Scenario;

    fn compiled(sql: &str, options: CompileOptions) -> CompiledQuery {
        let s = Scenario::generate(42);
        let plan = s.database.plan(sql).unwrap();
        compile(&plan, s.database.catalog(), &options).unwrap()
    }

    #[test]
    fn simple_scan_becomes_one_step() {
        let c = compiled("SELECT name FROM city", CompileOptions::default());
        assert_eq!(c.steps.len(), 1);
        let s = &c.steps[0];
        assert_eq!(s.table, "city");
        assert_eq!(s.key_attr, "name");
        assert!(s.fetch.is_empty(), "only the key is needed");
        assert!(s.filter_conditions.is_empty());
    }

    #[test]
    fn filter_becomes_boolean_prompts() {
        let c = compiled(
            "SELECT name FROM city WHERE population > 1000000",
            CompileOptions::default(),
        );
        let s = &c.steps[0];
        assert_eq!(s.filter_conditions.len(), 1);
        assert_eq!(s.filter_conditions[0].attribute, "population");
        // The filter was consumed: the residual plan has no Filter node.
        assert!(!c.plan.explain().contains("Filter"), "{}", c.plan.explain());
    }

    #[test]
    fn fetch_compare_keeps_filter_in_plan() {
        let c = compiled(
            "SELECT name FROM city WHERE population > 1000000",
            CompileOptions {
                filter_mode: FilterMode::FetchCompare,
                ..Default::default()
            },
        );
        let s = &c.steps[0];
        assert!(s.filter_conditions.is_empty());
        assert!(s.fetch.iter().any(|i| s.columns[*i].name == "population"));
        assert!(c.plan.explain().contains("Filter"));
    }

    #[test]
    fn pushdown_moves_condition_into_scan() {
        let c = compiled(
            "SELECT name FROM city WHERE population > 1000000",
            CompileOptions {
                pushdown: true,
                ..Default::default()
            },
        );
        let s = &c.steps[0];
        assert!(s.scan_condition.is_some());
        assert!(s.filter_conditions.is_empty());
    }

    #[test]
    fn join_query_compiles_to_two_steps_with_fetches() {
        let c = compiled(
            "SELECT p.name, r.birthDate FROM city p, cityMayor r WHERE p.mayor = r.name",
            CompileOptions::default(),
        );
        assert_eq!(c.steps.len(), 2);
        let city = c.steps.iter().find(|s| s.table == "city").unwrap();
        assert!(city.fetch.iter().any(|i| city.columns[*i].name == "mayor"));
        let mayor = c.steps.iter().find(|s| s.table == "cityMayor").unwrap();
        assert!(mayor
            .fetch
            .iter()
            .any(|i| mayor.columns[*i].name == "birthDate"));
        // The join stays relational.
        assert!(c.plan.explain().contains("JOIN"));
    }

    #[test]
    fn hybrid_query_keeps_db_scan() {
        let c = compiled(
            "SELECT e.countryCode, AVG(e.salary) FROM DB.employees e GROUP BY e.countryCode",
            CompileOptions::default(),
        );
        assert!(c.steps.is_empty(), "DB relations are not retrieved");
        assert!(c.plan.explain().contains("Scan DB.employees"));
    }

    #[test]
    fn db_default_only_fetches_llm_qualified() {
        let c = compiled(
            "SELECT c.name FROM LLM.city c, country k WHERE c.country = k.name",
            CompileOptions {
                default_source: DefaultSource::Db,
                ..Default::default()
            },
        );
        assert_eq!(c.steps.len(), 1);
        assert_eq!(c.steps[0].table, "city");
    }

    #[test]
    fn complex_conjunct_stays_in_plan() {
        // population * 2 > 100 cannot become a prompt condition.
        let c = compiled(
            "SELECT name FROM city WHERE population * 2 > 100 AND elevation < 50",
            CompileOptions::default(),
        );
        let s = &c.steps[0];
        assert_eq!(s.filter_conditions.len(), 1);
        assert_eq!(s.filter_conditions[0].attribute, "elevation");
        assert!(c.plan.explain().contains("Filter"));
        // The attribute feeding the residual filter is fetched.
        assert!(s.fetch.iter().any(|i| s.columns[*i].name == "population"));
    }

    #[test]
    fn explain_compiled_shows_steps() {
        let c = compiled(
            "SELECT name FROM city WHERE population > 1000000",
            CompileOptions::default(),
        );
        let text = explain_compiled(&c);
        assert!(text.contains("[LLM step 1] scan city"));
        assert!(text.contains("filter prompt per key"));
        assert!(text.contains("[relational plan]"));
    }
}
