//! The prompt scheduler: real worker threads for independent retrieval
//! units.
//!
//! The session decomposes a compiled query into *waves* of independent
//! work units — every distinct [`crate::compile::LlmScanStep`] of the
//! query, every chunk of one filter condition, every `(column, chunk)`
//! cell of the attribute-fetch phase. A wave's units share no data
//! dependencies, so [`Scheduler::run_wave`] may execute them on up to
//! `K` OS threads (`K` = the session's [`Parallelism`] knob); results are
//! always returned in submission order, so downstream code is oblivious
//! to the interleaving. [`Scheduler::run_wave_streaming`] is the
//! completion-ordered form used by the pipelined session driver: each
//! `(index, result)` pair is handed to a sink on the calling thread as
//! soon as the unit finishes, so downstream work can start before the
//! wave's stragglers complete.
//!
//! With `Parallelism(1)` the scheduler runs every unit inline on the
//! calling thread, in submission order — the exact pre-scheduler
//! behaviour, which keeps the sequential path bit-for-bit reproducible.
//!
//! Virtual-time accounting is deliberately *not* done here: units return
//! their own virtual cost and the caller packs those costs onto simulated
//! lanes with [`galois_llm::lane_schedule`], so the virtual clock is a
//! deterministic function of the work, not of OS thread timing.

use galois_llm::Parallelism;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, OnceLock};

thread_local! {
    /// Set on scheduler worker threads so *nested* waves (a step wave
    /// spawning its condition/fetch waves, or the harness wave spawning
    /// per-query step waves) run inline instead of multiplying threads —
    /// real concurrency stays bounded by the top-level wave's `K` rather
    /// than compounding to `K²`/`K³`.
    static IN_WAVE_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Executes waves of independent closures across a bounded worker pool.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    workers: usize,
}

impl Scheduler {
    /// A scheduler running at most `parallelism` units concurrently.
    pub fn new(parallelism: Parallelism) -> Self {
        Scheduler {
            workers: parallelism.get(),
        }
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one wave of independent units, returning their results in
    /// submission order.
    ///
    /// Units are claimed from a shared queue by up to `workers` scoped
    /// threads; with one worker (or at most one unit), or when already on
    /// a wave worker thread (nested waves), everything runs inline on the
    /// calling thread — real thread count is bounded by the *outermost*
    /// wave's worker count. A panicking unit propagates when the scope
    /// joins. The virtual clock never depends on this choice: callers
    /// account unit costs structurally via `lane_schedule`.
    ///
    /// Results land in lock-free write-once slots ([`OnceLock`]), which is
    /// where the `T: Sync` bound comes from: every slot is visible to all
    /// workers, though only the claimer of its index ever writes it.
    pub fn run_wave<T, F>(&self, units: Vec<F>) -> Vec<T>
    where
        T: Send + Sync,
        F: FnOnce() -> T + Send,
    {
        if self.workers <= 1 || units.len() <= 1 || IN_WAVE_WORKER.with(Cell::get) {
            return units.into_iter().map(|unit| unit()).collect();
        }
        let n = units.len();
        let jobs: Vec<Mutex<Option<F>>> = units.into_iter().map(|u| Mutex::new(Some(u))).collect();
        // Result slots are written exactly once, by whichever worker
        // claimed index `i` from the atomic counter — a lock-free
        // write-once cell, not a mutex, so storing a result never contends
        // with another worker storing its own.
        let results: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| {
                    IN_WAVE_WORKER.with(|flag| flag.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let unit = jobs[i].lock().take().expect("each unit claimed once");
                        if results[i].set(unit()).is_err() {
                            unreachable!("slot {i} written twice");
                        }
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every unit ran"))
            .collect()
    }

    /// Runs one wave of independent units, delivering each `(index,
    /// result)` pair to `sink` **in completion order** — the caller sees
    /// results the moment they land instead of waiting for the whole wave
    /// to join.
    ///
    /// [`Scheduler::run_wave`] is the positional form: it blocks until
    /// every unit has finished and hands back a submission-ordered `Vec`.
    /// The streaming session driver instead wants to start parsing a
    /// micro-batch's answers while its siblings are still completing, so
    /// this form pushes results through a sink running on the *calling*
    /// thread (the sink needs no `Send` bound and may freely mutate caller
    /// state). Completion order is nondeterministic by construction —
    /// callers that need determinism must key their state by the delivered
    /// index, exactly like the virtual clock does.
    ///
    /// The inline cases (one worker, one unit, nested waves) deliver in
    /// submission order. A panicking unit propagates when the scope joins,
    /// after the surviving units have been delivered.
    pub fn run_wave_streaming<T, F, S>(&self, units: Vec<F>, mut sink: S)
    where
        T: Send,
        F: FnOnce() -> T + Send,
        S: FnMut(usize, T),
    {
        if self.workers <= 1 || units.len() <= 1 || IN_WAVE_WORKER.with(Cell::get) {
            for (i, unit) in units.into_iter().enumerate() {
                sink(i, unit());
            }
            return;
        }
        let n = units.len();
        let jobs: Vec<Mutex<Option<F>>> = units.into_iter().map(|u| Mutex::new(Some(u))).collect();
        let next = AtomicUsize::new(0);
        // Landed results plus a count of units lost to panics: the drain
        // loop must terminate even when a worker unwinds mid-unit, or the
        // scope join (which re-raises the panic) would never be reached.
        struct Landing<T> {
            items: Vec<(usize, T)>,
            lost: usize,
        }
        let landing: StdMutex<Landing<T>> = StdMutex::new(Landing {
            items: Vec::new(),
            lost: 0,
        });
        let ready = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| {
                    IN_WAVE_WORKER.with(|flag| flag.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let unit = jobs[i].lock().take().expect("each unit claimed once");
                        // Unwind guard: a panicking unit still counts
                        // towards termination of the drain loop.
                        struct LostGuard<'a, T> {
                            landing: &'a StdMutex<Landing<T>>,
                            ready: &'a Condvar,
                            armed: bool,
                        }
                        impl<T> Drop for LostGuard<'_, T> {
                            fn drop(&mut self) {
                                if self.armed {
                                    self.landing.lock().unwrap_or_else(|e| e.into_inner()).lost +=
                                        1;
                                    self.ready.notify_all();
                                }
                            }
                        }
                        let mut guard = LostGuard {
                            landing: &landing,
                            ready: &ready,
                            armed: true,
                        };
                        let result = unit();
                        guard.armed = false;
                        landing
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .items
                            .push((i, result));
                        ready.notify_all();
                    }
                });
            }
            let mut delivered = 0;
            let mut slot = landing.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let batch: Vec<(usize, T)> = slot.items.drain(..).collect();
                if batch.is_empty() {
                    if delivered + slot.lost >= n {
                        break;
                    }
                    slot = ready.wait(slot).unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                drop(slot);
                for (i, result) in batch {
                    delivered += 1;
                    sink(i, result);
                }
                slot = landing.lock().unwrap_or_else(|e| e.into_inner());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        let sched = Scheduler::new(Parallelism::new(4));
        let units: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Stagger so late units often finish first.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i as u64) * 50));
                    i * 10
                }
            })
            .collect();
        let got = sched.run_wave(units);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let sched = Scheduler::new(Parallelism::new(1));
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let units: Vec<_> = (0..5)
            .map(|i| {
                let log = log.clone();
                move || {
                    log.lock().push(i);
                    i
                }
            })
            .collect();
        let got = sched.run_wave(units);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_waves_run_inline_on_the_worker_thread() {
        let sched = Scheduler::new(Parallelism::new(4));
        let units: Vec<_> = (0..4)
            .map(|_| {
                move || {
                    let outer_thread = std::thread::current().id();
                    let inner = Scheduler::new(Parallelism::new(4));
                    let inner_units: Vec<_> = (0..3)
                        .map(|_| move || std::thread::current().id())
                        .collect();
                    inner
                        .run_wave(inner_units)
                        .into_iter()
                        .all(|id| id == outer_thread)
                }
            })
            .collect();
        assert!(
            sched.run_wave(units).into_iter().all(|inline| inline),
            "nested waves must not spawn further threads"
        );
    }

    #[test]
    fn lockfree_result_slots_preserve_order_under_contention() {
        // Many more units than workers, adversarially staggered so claim
        // order and completion order disagree wildly: the write-once slots
        // must still return results in exact submission order, run after
        // run.
        let sched = Scheduler::new(Parallelism::new(8));
        for round in 0..5u64 {
            let units: Vec<_> = (0..64u64)
                .map(|i| {
                    move || {
                        let jitter = ((i * 7 + round * 13) % 11) * 40;
                        std::thread::sleep(std::time::Duration::from_micros(jitter));
                        (i, i * i)
                    }
                })
                .collect();
            let got = sched.run_wave(units);
            let expected: Vec<(u64, u64)> = (0..64).map(|i| (i, i * i)).collect();
            assert_eq!(got, expected, "round {round}");
        }
    }

    #[test]
    fn streaming_delivers_every_result_exactly_once() {
        let sched = Scheduler::new(Parallelism::new(4));
        let units: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_micros(((i * 13) % 7) * 40));
                    i * 10
                }
            })
            .collect();
        let mut got = vec![None; 32];
        sched.run_wave_streaming(units, |i, r| {
            assert!(got[i].is_none(), "index {i} delivered twice");
            got[i] = Some(r);
        });
        for (i, slot) in got.iter().enumerate() {
            assert_eq!(*slot, Some(i as u64 * 10));
        }
    }

    #[test]
    fn streaming_delivers_in_completion_order() {
        // Unit 0 sleeps far longer than its siblings: with several real
        // workers the fast units must be sunk before it, proving delivery
        // is by completion, not submission.
        let sched = Scheduler::new(Parallelism::new(4));
        let units: Vec<_> = (0..4u64)
            .map(|i| {
                move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(60));
                    }
                    i
                }
            })
            .collect();
        let mut order = Vec::new();
        sched.run_wave_streaming(units, |i, _| order.push(i));
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), 0, "slow unit arrived {order:?}");
    }

    #[test]
    fn streaming_single_worker_is_submission_ordered() {
        let sched = Scheduler::new(Parallelism::new(1));
        let units: Vec<_> = (0..5).map(|i| move || i).collect();
        let mut order = Vec::new();
        sched.run_wave_streaming(units, |i, r| {
            assert_eq!(i, r);
            order.push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn streaming_panic_propagates_without_deadlock() {
        let sched = Scheduler::new(Parallelism::new(4));
        let units: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("unit exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut delivered = 0usize;
            sched.run_wave_streaming(units, |_, _| delivered += 1);
            delivered
        }));
        assert!(outcome.is_err(), "the unit panic must propagate");
    }

    #[test]
    fn empty_wave_is_fine() {
        let sched = Scheduler::new(Parallelism::new(8));
        let got: Vec<i32> = sched.run_wave(Vec::<fn() -> i32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn wave_actually_uses_multiple_threads() {
        let sched = Scheduler::new(Parallelism::new(4));
        let concurrent = std::sync::Arc::new(AtomicUsize::new(0));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let units: Vec<_> = (0..8)
            .map(|_| {
                let concurrent = concurrent.clone();
                let peak = peak.clone();
                move || {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        sched.run_wave(units);
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "expected overlapping units, peak {}",
            peak.load(Ordering::SeqCst)
        );
    }
}
