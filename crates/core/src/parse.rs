//! Parsing LLM answer text (paper §4, workflow step 3: "Convert the string
//! of answers from the LLM to a set of CELL values").
//!
//! Models answer with varying decoration — chatty prefixes, numbered
//! lists, full sentences — so parsing is defensive and never fails: at
//! worst it yields an empty list or an opaque string for the cleaner to
//! reject.

/// The outcome of a list prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListAnswer {
    /// Values extracted from the answer.
    Values(Vec<String>),
    /// The model signalled exhaustion ("No more results").
    Exhausted,
}

/// Parses the answer to a key-listing prompt.
pub fn parse_list_answer(text: &str) -> ListAnswer {
    let t = text.trim();
    let lower = t.to_ascii_lowercase();
    if lower.contains("no more results") || lower == "none" || lower == "unknown" {
        return ListAnswer::Exhausted;
    }
    // Strip a chatty prefix up to the first ':' when one precedes values
    // ("Sure! Here are some values: A, B").
    let body = match t.split_once(':') {
        Some((prefix, rest))
            if prefix.len() < 60 && !prefix.contains(',') && !rest.trim().is_empty() =>
        {
            rest
        }
        _ => t,
    };
    let mut values = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Numbered ("1. Rome") or bulleted ("- Rome") list items.
        let line = strip_list_marker(line);
        for piece in line.split(',') {
            let cleaned = piece
                .trim()
                .trim_end_matches('.')
                .trim_matches(|c: char| c == '"' || c == '\'')
                .trim();
            if !cleaned.is_empty() {
                values.push(cleaned.to_string());
            }
        }
    }
    ListAnswer::Values(values)
}

fn strip_list_marker(line: &str) -> &str {
    let line = line.trim_start_matches(['-', '*', '•']).trim_start();
    // "12. Rome" → "Rome" (but keep "2.8 million" intact: the dot must
    // follow the leading integer and be followed by whitespace).
    let digits: usize = line.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits > 0 {
        let rest = &line[digits..];
        if let Some(stripped) = rest.strip_prefix('.') {
            if stripped.starts_with(' ') {
                return stripped.trim_start();
            }
        }
        if let Some(stripped) = rest.strip_prefix(')') {
            return stripped.trim_start();
        }
    }
    line
}

/// Parses the answer to a single-value (attribute fetch) prompt. Returns
/// `None` for "Unknown"-style answers.
pub fn parse_value_answer(text: &str) -> Option<String> {
    let t = text.trim().trim_end_matches('.').trim();
    if t.is_empty() {
        return None;
    }
    let lower = t.to_ascii_lowercase();
    if lower == "unknown"
        || lower == "n/a"
        || lower == "none"
        || lower.starts_with("i don")
        || lower.starts_with("i'm not sure")
        || lower.starts_with("unknown")
    {
        return None;
    }
    // Unwrap sentence forms: "The population of Rome is 2.8 million".
    if let Some(idx) = t.rfind(" is ") {
        let head = &t[..idx];
        if head.starts_with("The ") || head.starts_with("the ") || head.starts_with("Its ") {
            let tail = t[idx + 4..].trim();
            if !tail.is_empty() {
                return Some(tail.to_string());
            }
        }
    }
    Some(t.to_string())
}

/// Parses a yes/no answer; `None` when the model answered neither.
pub fn parse_boolean_answer(text: &str) -> Option<bool> {
    let t = text.trim().to_ascii_lowercase();
    if t.starts_with("yes") || t.starts_with("true") || t.starts_with("correct") {
        Some(true)
    } else if t.starts_with("no") || t.starts_with("false") || t.starts_with("incorrect") {
        Some(false)
    } else {
        None
    }
}

/// Extracted records from a QA baseline answer — the mechanised version of
/// the paper's manual post-processing ("we split comma-separated values,
/// remove repeated values and punctuation", §5).
pub fn extract_records(text: &str) -> Vec<Vec<String>> {
    let t = text.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("unknown") || t.eq_ignore_ascii_case("none") {
        return Vec::new();
    }
    // Drop CoT scaffolding: keep only the text after the final "answer
    // is:" marker when present.
    let t = match t.to_ascii_lowercase().rfind("answer is:") {
        Some(idx) => t[idx + "answer is:".len()..].trim(),
        None => t,
    };

    let mut records: Vec<Vec<String>> = Vec::new();
    let mut seen = std::collections::HashSet::new();

    let lines: Vec<&str> = t.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    // A line is a record ("- Rome: 2,800,000") rather than prose when it
    // has a `key: cells` shape and either carries a list marker or sits in
    // a multi-line answer.
    let is_record_line = |l: &str| {
        strip_list_marker(l).contains(": ")
            && (lines.len() > 1
                || l.starts_with(['-', '*', '•'])
                || l.starts_with(|c: char| c.is_ascii_digit()))
    };
    let line_records = lines.iter().filter(|l| is_record_line(l)).count();

    if line_records >= 1 && line_records * 2 >= lines.len() {
        // Row-per-line form: "- Rome: 2,800,000, Italy".
        for line in lines {
            let line = strip_list_marker(line);
            let Some((head, rest)) = line.split_once(": ") else {
                continue;
            };
            let mut rec = vec![clean_token(head)];
            for cell in split_cells(rest) {
                let c = clean_token(&cell);
                if !c.is_empty() {
                    rec.push(c);
                }
            }
            if seen.insert(rec.clone()) {
                records.push(rec);
            }
        }
    } else {
        // Flat list form: "The name values are: Rome, Paris, Milan."
        let body = match t.split_once(':') {
            Some((prefix, rest)) if prefix.len() < 60 && !rest.trim().is_empty() => rest,
            _ => t,
        };
        for piece in body.split(',') {
            let c = clean_token(piece);
            if !c.is_empty() && seen.insert(vec![c.clone()]) {
                records.push(vec![c]);
            }
        }
    }
    records
}

/// Splits a cell list on commas, re-joining thousands groups: `"2,800,000,
/// Italy"` → `["2,800,000", "Italy"]`.
fn split_cells(s: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for piece in s.split(',') {
        let trimmed = piece.trim();
        let is_thousands_group = trimmed.len() == 3
            && trimmed.chars().all(|c| c.is_ascii_digit())
            && piece.starts_with(|c: char| c.is_ascii_digit());
        if is_thousands_group {
            if let Some(prev) = out.last_mut() {
                if prev.ends_with(|c: char| c.is_ascii_digit()) {
                    prev.push(',');
                    prev.push_str(trimmed);
                    continue;
                }
            }
        }
        out.push(trimmed.to_string());
    }
    out
}

fn clean_token(s: &str) -> String {
    s.trim()
        .trim_end_matches('.')
        .trim_matches(|c: char| c == '"' || c == '\'' || c == '(' || c == ')')
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_comma_list() {
        assert_eq!(
            parse_list_answer("Rome, Paris, Milan."),
            ListAnswer::Values(vec!["Rome".into(), "Paris".into(), "Milan".into()])
        );
    }

    #[test]
    fn chatty_prefix_is_stripped() {
        assert_eq!(
            parse_list_answer("Sure! Here are some values: Rome, Paris."),
            ListAnswer::Values(vec!["Rome".into(), "Paris".into()])
        );
    }

    #[test]
    fn numbered_list() {
        assert_eq!(
            parse_list_answer("1. Rome\n2. Paris\n3. New Milan"),
            ListAnswer::Values(vec!["Rome".into(), "Paris".into(), "New Milan".into()])
        );
    }

    #[test]
    fn exhaustion_detected() {
        assert_eq!(parse_list_answer("No more results"), ListAnswer::Exhausted);
        assert_eq!(parse_list_answer("no more results."), ListAnswer::Exhausted);
        assert_eq!(parse_list_answer("Unknown"), ListAnswer::Exhausted);
    }

    #[test]
    fn empty_answer_is_empty_values() {
        assert_eq!(parse_list_answer("  "), ListAnswer::Values(vec![]));
    }

    #[test]
    fn value_answer_unwraps_sentences() {
        assert_eq!(
            parse_value_answer("The population of Rome is about 2.8 million."),
            Some("about 2.8 million".into())
        );
        assert_eq!(parse_value_answer("2800000"), Some("2800000".into()));
        assert_eq!(parse_value_answer("Unknown."), None);
        assert_eq!(parse_value_answer(""), None);
    }

    #[test]
    fn value_answer_keeps_is_in_names() {
        // "is" inside a value must not trigger sentence unwrapping unless
        // the sentence shape matches.
        assert_eq!(parse_value_answer("Isla Verde"), Some("Isla Verde".into()));
    }

    #[test]
    fn boolean_answers() {
        assert_eq!(parse_boolean_answer("Yes"), Some(true));
        assert_eq!(parse_boolean_answer("yes, it is."), Some(true));
        assert_eq!(parse_boolean_answer("No."), Some(false));
        assert_eq!(parse_boolean_answer("perhaps"), None);
    }

    #[test]
    fn extract_flat_records() {
        let recs = extract_records("The name values are: Rome, Paris, Rome.");
        assert_eq!(
            recs,
            vec![vec!["Rome".to_string()], vec!["Paris".to_string()]]
        );
    }

    #[test]
    fn extract_line_records() {
        let recs = extract_records("- Rome: 2,800,000\n- Paris: 2,100,000");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], vec!["Rome".to_string(), "2,800,000".to_string()]);
    }

    #[test]
    fn extract_mixed_cells() {
        let recs = extract_records("- Rome: 2,800,000, Italy");
        assert_eq!(
            recs[0],
            vec![
                "Rome".to_string(),
                "2,800,000".to_string(),
                "Italy".to_string()
            ]
        );
    }

    #[test]
    fn extract_cot_answer_tail() {
        let recs = extract_records(
            "Step 1: think.\nStep 2: more thinking.\nThe answer is: Paris, Berlin.",
        );
        assert_eq!(
            recs,
            vec![vec!["Paris".to_string()], vec!["Berlin".to_string()]]
        );
    }

    #[test]
    fn extract_unknown_is_empty() {
        assert!(extract_records("Unknown").is_empty());
        assert!(extract_records("").is_empty());
    }
}
