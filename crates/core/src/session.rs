//! The Galois session: end-to-end SQL execution over an LLM (paper §4
//! "Workflow").
//!
//! ```text
//! (1) plan the SQL against the user-provided schema
//! (2) retrieve tuples: key scans (iterated until exhaustion), per-key
//!     filter checks, per-key attribute fetches — all as text prompts
//! (3) convert answer strings to typed CELL values (parse + clean)
//! (4) run the remaining operators (joins, aggregates, …) traditionally
//! ```
//!
//! Retrieval runs through the **prompt scheduler** ([`crate::schedule`]):
//! every distinct LLM scan step of the query, every chunk of a filter
//! condition, and every `(column, chunk)` cell of the fetch phase is an
//! independent work unit submitted as one wave and executed across up to
//! `K` worker threads, where `K` is [`GaloisOptions::parallelism`]. The
//! virtual clock packs each wave onto `K` simulated request lanes
//! ([`galois_llm::lane_schedule`]); `Parallelism(1)` reproduces the
//! original strictly-sequential accounting bit-for-bit. Filter conditions
//! keep their conjunctive short-circuit order (condition *n + 1* only
//! prompts for keys that survived condition *n*) because evaluating all
//! conditions on all keys would inflate prompt volume — the scheduler
//! parallelises *within* each condition instead.
//!
//! With [`GaloisOptions::prompt_batch`] set to [`PromptBatch::Keys`]`(B)`,
//! the filter and fetch phases switch to the **multi-key protocol**: each
//! retrieval cell fuses up to `B` keys into one prompt (`ceil(keys / B)`
//! prompts instead of `keys`), per-key answers are extracted line by line,
//! previously answered keys are served from the client's sub-entry cache,
//! and any key whose batched answer fails to parse is re-asked with its
//! single-key prompt. [`PromptBatch::Off`] (the default) is bit-identical
//! to the pre-batching pipeline.
//!
//! With [`GaloisOptions::pipeline`] set to [`Pipeline::Streaming`], the
//! barrier-separated phases above become a per-key dataflow under an
//! event-driven virtual clock: list pages feed filter micro-batch
//! accumulators, survivors of condition *i* stream into condition *i + 1*
//! and then into per-column fetch micro-batches, and every step of the
//! query shares the same `K` simulated lanes. See [`Pipeline`] for the
//! micro-batch trigger rule and the mode's invariants.

use crate::clean::{clean_to_type, normalise_text, CleaningPolicy};
use crate::compile::{CompileOptions, CompiledQuery, LlmScanStep};
use crate::error::{GaloisError, Result};
use crate::parse::{parse_boolean_answer, parse_list_answer, parse_value_answer, ListAnswer};
use crate::plan_choice::{plan_query, PlannedQuery, Planner, PlannerParams};
use crate::prompts::PromptBuilder;
use crate::schedule::Scheduler;
use galois_llm::faults::is_fault_text;
use galois_llm::intent::{split_batched_answer, split_grid_answer, Condition, TaskIntent};
use galois_llm::{
    lane_schedule, BatchOutcome, ClientStats, KeyUniverse, KeyUniverseStore, LanguageModel,
    LlmClient, Parallelism, RetryPolicy, SubEntryLookup,
};
use galois_relational::{Column, Database, Relation, Table, TableSchema, Value};
use std::sync::Arc;
use std::time::Instant;

/// Multi-key prompt batching: how many keys of one retrieval cell (one
/// filter condition, or one fetched attribute) are fused into a single
/// prompt.
///
/// The paper's dominant cost is prompt volume (§5: ~110 *batched* prompts
/// and ~20 s per query); fusing keys amortises the fixed preamble and
/// instruction tokens every per-key prompt re-pays. The protocol is
/// line-oriented ([`galois_llm::intent::TaskIntent::FetchAttrBatch`] /
/// [`galois_llm::intent::TaskIntent::FilterKeysBatch`]): the prompt lists
/// the keys one per line, the model answers one `key: value` line per key,
/// and any key whose line fails to parse is re-asked with the single-key
/// prompt — batching can cost extra prompts, never accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromptBatch {
    /// One task per prompt — the paper-faithful protocol, bit-identical to
    /// the pre-batching pipeline (prompts, cache hits, virtual clocks).
    /// The default.
    #[default]
    Off,
    /// Fuse up to `n` keys per prompt (clamped to ≥ 1). `Keys(1)` uses the
    /// multi-key protocol with one key per prompt — the ablation base case
    /// isolating the protocol's own overhead.
    Keys(usize),
    /// Grid fusion: fetch prompts ask up to `attrs` attributes for up to
    /// `keys` keys at once (both clamped to ≥ 1), cutting the fetch phase
    /// from `C × ceil(keys / B)` prompts to `ceil(C / A) × ceil(keys / B)`
    /// per step ([`galois_llm::intent::TaskIntent::FetchGridBatch`]). The
    /// filter phase behaves exactly like `Keys(keys)` — only fetch cells
    /// have a second axis to fuse. Unparseable cells fall down the ladder
    /// grid → per-attribute key batch → per-key single prompt, so grid
    /// fusion may cost extra prompts, never accuracy. A group with spare
    /// width (fewer than `attrs` pending columns) is speculatively padded
    /// with the relation's other columns (schema order, key and fetched
    /// columns excluded): the pad
    /// cells seed the per-(key, attr) sub-entry store at no extra prompt
    /// cost, so later queries touching the same table fetch from cache —
    /// the lever that breaks the one-new-column-per-query fetch floor
    /// across a suite. `Grid { keys: B, attrs: 1 }` is the ablation base
    /// case isolating the grid protocol's own overhead against `Keys(B)`
    /// (no spare width, so no speculation).
    Grid {
        /// Keys fused per prompt (the `B` of `⌈keys/B⌉` chunks).
        keys: usize,
        /// Fetched attributes fused per prompt (the `A` of `⌈C/A⌉`
        /// attr-groups).
        attrs: usize,
    },
}

impl PromptBatch {
    /// Keys fused per prompt (1 when off).
    pub fn keys_per_prompt(self) -> usize {
        match self {
            PromptBatch::Off => 1,
            PromptBatch::Keys(n) => n.max(1),
            PromptBatch::Grid { keys, .. } => keys.max(1),
        }
    }

    /// Attributes fused per fetch prompt (1 unless grid mode).
    pub fn attrs_per_prompt(self) -> usize {
        match self {
            PromptBatch::Grid { attrs, .. } => attrs.max(1),
            _ => 1,
        }
    }

    /// True when the multi-key protocol is in use.
    pub fn is_on(self) -> bool {
        !matches!(self, PromptBatch::Off)
    }

    /// True when the fetch phase fuses attributes as well as keys.
    pub fn is_grid(self) -> bool {
        matches!(self, PromptBatch::Grid { .. })
    }
}

/// Execution dataflow of the retrieval phases.
///
/// The paper's three-phase protocol (list keys → check filters → fetch
/// attributes) is naturally expressed as barrier-separated *waves*: every
/// phase waits for the previous one to drain completely. That leaves a
/// latency floor — each phase boundary idles every request lane until the
/// slowest batch of the previous phase lands. [`Pipeline::Streaming`]
/// removes the barriers: keys flow through the filter chain and into
/// per-column fetch micro-batches the moment they are known to survive,
/// and the virtual clock becomes an event-driven simulation
/// ([`galois_llm::EventClock`]) in which each micro-batch is released at
/// the instant its inputs exist.
///
/// A micro-batch fires when it reaches `B` keys
/// ([`GaloisOptions::prompt_batch`]; `B = 1` when batching is off), when
/// a **lane goes idle** after a virtual instant has fully resolved
/// (holding a partial batch back while lanes sit empty is pure latency),
/// or at **upstream drain** — the flush that ends each stream. The idle
/// flush is speculative: if the inputs of a stage later grow a chunk the
/// flush already split (a later list page, or survivors of a filter
/// stage whose chunks completed at different instants), streaming spends
/// *more* prompts than the wave pipeline — extra partial chunks buy
/// latency, never accuracy. When each stage's input arrives at one
/// instant — single-page key streams feeding pushed-down scans, the
/// benchmark configuration — chunk membership and counts match the wave
/// pipeline exactly.
///
/// Invariants:
///
/// * [`Pipeline::Off`] (the default) is bit-identical to the wave
///   pipeline — prompts per kind, cache hits, both clocks, relations;
/// * streaming never changes `R_M` on a noise-free model, for any lane
///   count or batch factor; its cache-hit totals always match the wave
///   run's, and its prompt bill is never lower (and is *equal* whenever
///   the idle flush never splits a chunk that later input would have
///   filled);
/// * streaming pays one request overhead per micro-batch (a real
///   streaming deployment cannot fuse requests it has not accumulated),
///   so with a single lane it is *slower* than the wave pipeline, which
///   amortises the overhead across up to `batch_size` prompts per
///   request. Pipelining is a concurrency optimisation: the overheads
///   overlap across lanes, and the phase barriers disappear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pipeline {
    /// Barrier-separated retrieval waves — the paper-faithful dataflow,
    /// bit-identical to the pre-pipelining releases. The default.
    #[default]
    Off,
    /// Per-key dataflow under the event-driven virtual clock: list pages
    /// feed filter micro-batches, survivors stream into the next
    /// condition and then into per-column fetch micro-batches.
    Streaming,
}

impl Pipeline {
    /// True when streaming execution is selected.
    pub fn is_streaming(self) -> bool {
        matches!(self, Pipeline::Streaming)
    }
}

/// Cross-query key-universe store for the LIST phase.
///
/// The paper's protocol re-enumerates a concept's keys query after query;
/// by PR 5 that serial listing chain was ~90 % of the pipelined critical
/// path, because even prompt-cache hits ride in a batch request (one
/// overhead each) and the exclusion-list iteration is inherently
/// sequential. With the store enabled, the first query on a concept pages
/// keys out of the model — *speculatively*: once page 1 reveals the page
/// size, later pages are requested by offset
/// ([`galois_llm::intent::TaskIntent::ListKeysPage`]) in parallel waves
/// across the session's lanes — and publishes the universe under the
/// concept's signature (table, key attribute, rendered scan condition),
/// keyed by the model's [`LanguageModel::signature`]. Every later query
/// on that concept reads the warm universe at **zero prompt and zero
/// virtual cost**, counting the stored frontier's iterations as cache
/// hits (the bill a re-listing run would have paid in prompt-cache hits);
/// a partial frontier (iteration-capped listing) is resumed with classic
/// exclusion paging and extended append-only.
///
/// Invariants:
///
/// * [`ListStore::Off`] (the default) is bit-identical to the store-less
///   pipeline — prompts per kind, cache hits, both clocks, relations;
/// * on a noise-free model, store-on execution never changes `R_M`, for
///   any lane count, batch factor or pipeline mode, and a warm run's
///   relations are bit-identical to its cold run's;
/// * a model-signature change (a different noise profile) invalidates a
///   stored universe on first read — the follow-up query re-lists from
///   scratch, exactly like a fresh session.
#[derive(Debug, Clone, Default)]
pub enum ListStore {
    /// No cross-query list state — the paper-faithful re-listing
    /// behaviour, bit-identical to the pre-store pipeline. The default.
    #[default]
    Off,
    /// Session-private store: queries of this session share listed
    /// universes with each other.
    On,
    /// An externally owned store, shared across sessions (hand the same
    /// `Arc` to several sessions — model-signature keying keeps universes
    /// from leaking across differently-configured models).
    Shared(Arc<KeyUniverseStore>),
}

impl ListStore {
    /// True when some store (private or shared) is enabled.
    pub fn is_on(&self) -> bool {
        !matches!(self, ListStore::Off)
    }
}

impl PartialEq for ListStore {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ListStore::Off, ListStore::Off) => true,
            (ListStore::On, ListStore::On) => true,
            (ListStore::Shared(a), ListStore::Shared(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// LIMIT-aware early termination of streaming retrieval.
///
/// The paper's protocol materialises a concept's full key universe before
/// the residual plan runs, so `SELECT … LIMIT 10` over a 100-key concept
/// pays the whole prompt bill and throws 90 rows away. With early stop
/// enabled, [`Pipeline::Streaming`] queries whose residual plan is a
/// plain window — `Limit` over row-wise projections of a single LLM scan
/// (see [`crate::compile::limit_hint`]) — stop retrieval as soon as the
/// window is covered:
///
/// * list paging halts once `n + offset` keys have **survived every
///   filter verdict** (in-flight keys count zero until their verdicts
///   land, so the stop is never speculative);
/// * keys listed past the point of coverage are pruned before entering
///   the filter/fetch dataflow — but only when enough *earlier* keys are
///   already confirmed, so the surfaced window is exactly the one the
///   full run would produce;
/// * keys whose verdicts are already in flight (including batched-answer
///   fallback re-asks) always complete — early stop cancels unissued
///   work, never in-flight work.
///
/// Invariants:
///
/// * [`EarlyStop::Off`] (the default) is bit-identical to the
///   exhaustive pipeline — prompts per kind, cache hits, both clocks,
///   relations;
/// * on a noise-free model, an early-stopped `LIMIT` query returns
///   exactly the full evaluation truncated to the window, and never
///   issues more prompts than the unlimited query;
/// * under [`Pipeline::Off`] (wave retrieval) the knob is inert: waves
///   have no per-key release points to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EarlyStop {
    /// Always materialise the full key universe — the paper-faithful
    /// behaviour, bit-identical to the pre-limit pipeline. The default.
    #[default]
    Off,
    /// Stop streaming retrieval once a plain `LIMIT` window is covered by
    /// confirmed survivors.
    Limit,
}

impl EarlyStop {
    /// True when LIMIT-aware early termination is enabled.
    pub fn is_on(self) -> bool {
        !matches!(self, EarlyStop::Off)
    }
}

/// Resilience knob: what the client does when a model request fails.
///
/// Invariants:
///
/// * [`Resilience::Off`] (the default) is bit-identical to the
///   pre-resilience engine — faults' degraded completions flow downstream
///   untouched, and on a fault-free model nothing changes at all;
/// * on a fault-free model, `On` changes nothing either: the retry loop
///   never fires, no backoff is billed, the breaker never opens;
/// * with a bounded fault schedule (consecutive failures per prompt ≤ the
///   retry budget, e.g. [`galois_llm::FaultProfile`]'s default cap under
///   the default [`RetryPolicy`]), `On` reproduces the fault-free run's
///   relations, prompt counts, cache hits and token totals bit-exactly —
///   only the virtual clock grows by the billed retry/backoff time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Resilience {
    /// No retries: a failed request's degraded completion goes straight
    /// into parsing, and graceful degradation (Nulls, dropped verdicts,
    /// resumable partial listings) is the only defence. The default.
    #[default]
    Off,
    /// Bounded retries with exponential backoff + jitter billed in
    /// virtual time, per-request timeouts, and a circuit breaker that
    /// fails fast after a streak of retry-exhausted requests.
    On(RetryPolicy),
}

impl Resilience {
    /// The retry policy, if resilience is on.
    pub fn policy(&self) -> Option<RetryPolicy> {
        match self {
            Resilience::Off => None,
            Resilience::On(policy) => Some(*policy),
        }
    }

    /// True when the retry loop is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, Resilience::On(_))
    }
}

/// Cross-query admission control for [`crate::multi::run_multi_query`].
///
/// [`Admission::Off`] (the default) leaves the single-query engine
/// untouched: each `execute` call still packs its own tasks onto the
/// session's private `K` lanes, and the multi-query runner falls back to
/// the default [`AdmissionPolicy`]. `Fair(policy)` makes the policy the
/// session's — the multi-query runner schedules every admitted query's
/// micro-batch tasks onto one shared [`galois_llm::LanePool`] under it,
/// and `EXPLAIN` gains an `admission:` line describing the queueing
/// behaviour a query will see.
///
/// Admission control never changes *what* a query answers — queries
/// always execute logically in workload order with identical prompts,
/// cache hits and result relations; the policy only governs when their
/// traced tasks run on the shared clock (see [`crate::multi`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// No cross-query scheduling configured (the default).
    #[default]
    Off,
    /// Fair-share admission over a shared lane pool under this policy.
    Fair(AdmissionPolicy),
}

impl Admission {
    /// The configured policy (`None` when off).
    pub fn policy(&self) -> Option<AdmissionPolicy> {
        match self {
            Admission::Off => None,
            Admission::Fair(policy) => Some(*policy),
        }
    }

    /// True when a cross-query policy is configured.
    pub fn is_on(&self) -> bool {
        matches!(self, Admission::Fair(_))
    }
}

/// How the multi-query runner admits queries and shares the lane pool.
///
/// Every `0` field means "unbounded / derive automatically", which is also
/// the default policy: pool sized to `sessions × K`, no in-flight cap, no
/// per-session task quota, deficit-weighted fairness. Those defaults make
/// a single-session multi-query run bit-exact with running the same
/// queries back-to-back through the private streaming engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Lanes in the shared pool; `0` derives `sessions × K` (every
    /// session brings its configured parallelism to the pool, so the
    /// capacity matches `sessions` independent `K`-lane query streams —
    /// the apples-to-apples comparison against per-query packing).
    pub pool_lanes: usize,
    /// Maximum queries admitted (running) at once; `0` is unlimited.
    /// Arrivals beyond the cap wait in FIFO order, and their wait is
    /// tallied as [`QueryStats::queue_ms`].
    pub max_inflight: usize,
    /// Maximum micro-batch tasks one session may have in flight on the
    /// pool at once; `0` is unlimited. A finite quota stops one wide
    /// query from monopolising the pool within an instant.
    pub session_quota: usize,
    /// Fairness rule arbitrating sessions with ready tasks at the same
    /// virtual instant.
    pub share: galois_llm::FairShare,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            pool_lanes: 0,
            max_inflight: 0,
            session_quota: 0,
            share: galois_llm::FairShare::DeficitMs,
        }
    }
}

impl AdmissionPolicy {
    /// The pool size this policy yields for `sessions` sessions over a
    /// session configured with `k` lanes (`pool_lanes` when set, else
    /// `sessions × k`).
    pub fn pool_lanes_for(&self, sessions: usize, k: usize) -> usize {
        if self.pool_lanes > 0 {
            self.pool_lanes
        } else {
            sessions.max(1) * k.max(1)
        }
    }
}

/// Tuning knobs of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct GaloisOptions {
    /// Plan-compilation options (source routing, filter mode, pushdown).
    pub compile: CompileOptions,
    /// Cleaning policy for answer strings.
    pub cleaning: CleaningPolicy,
    /// Maximum "Return more results" iterations per key scan (the paper
    /// iterates "until we stop getting new results"; the cap is the
    /// user-specified threshold alternative).
    pub max_list_iterations: usize,
    /// Prompts per batch request.
    pub batch_size: usize,
    /// Concurrency knob: simulated request lanes for the virtual clock
    /// *and* real worker threads for the scheduler. `Parallelism(1)` (the
    /// default) is the paper-faithful sequential configuration.
    pub parallelism: Parallelism,
    /// Plan-choice strategy. [`Planner::Heuristic`] (the default)
    /// reproduces the pre-planner pipeline bit for bit — same plans, same
    /// prompts, same tables; [`Planner::CostBased`] picks prompt pushdowns
    /// and step order by estimated prompt/latency cost (see
    /// [`crate::plan_choice`]).
    pub planner: Planner,
    /// Multi-key prompt batching factor for the filter and fetch phases.
    /// [`PromptBatch::Off`] (the default) keeps the one-task-per-prompt
    /// protocol bit for bit; `Keys(B)` emits `ceil(keys / B)` prompts per
    /// retrieval cell instead of `keys`, with a per-key fallback re-ask
    /// for unparseable batched answers.
    pub prompt_batch: PromptBatch,
    /// Retrieval dataflow. [`Pipeline::Off`] (the default) runs the
    /// barrier-separated waves bit for bit; [`Pipeline::Streaming`]
    /// streams keys through filter and fetch micro-batches under the
    /// event-driven virtual clock, issuing the same prompts without the
    /// phase barriers.
    pub pipeline: Pipeline,
    /// Cross-query key-universe store for the LIST phase.
    /// [`ListStore::Off`] (the default) re-lists every query bit for bit;
    /// `On`/`Shared` serve warm concepts at zero prompt cost and page
    /// cold ones speculatively (see [`ListStore`]).
    pub list_store: ListStore,
    /// LIMIT-aware early termination for streaming retrieval.
    /// [`EarlyStop::Off`] (the default) materialises every key universe
    /// in full bit for bit; [`EarlyStop::Limit`] stops listing and prunes
    /// unissued filter/fetch work once a plain `LIMIT` window is covered
    /// by confirmed survivors (see [`EarlyStop`]).
    pub early_stop: EarlyStop,
    /// Fault handling for model requests. [`Resilience::Off`] (the
    /// default) hands degraded completions straight to the parsers bit
    /// for bit; [`Resilience::On`] retries failed requests with backoff
    /// billed in virtual time (see [`Resilience`]).
    pub resilience: Resilience,
    /// Cross-query admission control. [`Admission::Off`] (the default)
    /// changes nothing about single-query execution; [`Admission::Fair`]
    /// configures how [`crate::multi::run_multi_query`] shares the lane
    /// pool across concurrent sessions (see [`Admission`]).
    pub admission: Admission,
}

impl Default for GaloisOptions {
    fn default() -> Self {
        GaloisOptions {
            compile: CompileOptions::default(),
            cleaning: CleaningPolicy::default(),
            max_list_iterations: 32,
            batch_size: 20,
            parallelism: Parallelism::default(),
            planner: Planner::default(),
            prompt_batch: PromptBatch::default(),
            pipeline: Pipeline::default(),
            list_store: ListStore::default(),
            early_stop: EarlyStop::default(),
            resilience: Resilience::default(),
            admission: Admission::default(),
        }
    }
}

/// Prompt accounting for one query (paper §5 reports ≈110 batched prompts
/// and ≈20 s per query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Key-listing prompts.
    pub list_prompts: usize,
    /// Filter prompts issued: one per key when [`PromptBatch::Off`]
    /// (cache-served prompts included, as they still ride in a batch
    /// request); fused multi-key prompts plus single-key fallbacks when
    /// batching — keys served from per-key sub-entries issue no prompt
    /// and count under `cache_hits` instead.
    pub filter_prompts: usize,
    /// Attribute-fetch prompts issued (same accounting as
    /// `filter_prompts`).
    pub fetch_prompts: usize,
    /// Prompts served from the client cache (raw prompt cache, in-flight
    /// dedup waiters, and — in batched mode — per-key sub-entries).
    pub cache_hits: usize,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
    /// Total completion tokens.
    pub completion_tokens: usize,
    /// Virtual milliseconds spent in the model under the session's lane
    /// count (sequential phases sum; waves of independent units pack onto
    /// the lanes).
    pub virtual_ms: u64,
    /// Virtual milliseconds a single-lane run would have spent on the same
    /// batches (`serial_virtual_ms == virtual_ms` at `Parallelism(1)`).
    pub serial_virtual_ms: u64,
    /// Virtual milliseconds attributed to the key-listing phase. Phase
    /// fields measure lane-busy time per protocol phase: in wave mode each
    /// phase's lane-packed wave times, in streaming mode the scheduled
    /// durations of that phase's tasks. Within one step the wave-mode
    /// phases sum to the step's virtual time; across steps (and in
    /// streaming mode) phases overlap on the lanes, so the three fields
    /// may sum to more than `virtual_ms` — they locate where the model
    /// time lives, not how it packs.
    pub list_virtual_ms: u64,
    /// Virtual milliseconds attributed to the filter phase (see
    /// `list_virtual_ms` for the accounting rule).
    pub filter_virtual_ms: u64,
    /// Virtual milliseconds attributed to the attribute-fetch phase (see
    /// `list_virtual_ms` for the accounting rule).
    pub fetch_virtual_ms: u64,
    /// Real wall-clock milliseconds spent executing the query.
    pub wall_ms: u64,
    /// Rows materialised from the LLM across all scans.
    pub rows_retrieved: usize,
    /// Re-asks issued by the resilient retry loop (prompt counters stay
    /// net of retries).
    pub retries: usize,
    /// Attempts that exceeded their deadline (timeout faults plus
    /// slower-than-policy successes).
    pub timeouts: usize,
    /// Attempts the model refused with a rate-limit signal.
    pub rate_limited: usize,
    /// Requests failed fast by the open circuit breaker.
    pub breaker_fastfails: usize,
    /// Retrieval cells (list pages, filter verdicts, fetched values) that
    /// still held a degraded answer after all defences: the verdict was
    /// dropped, the value annotated as `Null`, or the listing left
    /// resumable instead of exhausted.
    pub failed_cells: usize,
    /// Virtual milliseconds the query waited between arriving and being
    /// admitted by the cross-query scheduler (always zero outside
    /// [`crate::multi::run_multi_query`], and under an unlimited
    /// [`AdmissionPolicy::max_inflight`]).
    pub queue_ms: u64,
}

impl QueryStats {
    /// All prompts that reached the model.
    pub fn total_prompts(&self) -> usize {
        self.list_prompts + self.filter_prompts + self.fetch_prompts
    }

    /// Virtual seconds spent.
    pub fn virtual_seconds(&self) -> f64 {
        self.virtual_ms as f64 / 1000.0
    }

    /// Virtual speedup over a single-lane run (1.0 when sequential).
    pub fn virtual_speedup(&self) -> f64 {
        if self.virtual_ms == 0 {
            1.0
        } else {
            self.serial_virtual_ms as f64 / self.virtual_ms as f64
        }
    }

    /// Fraction of the `lanes × virtual_ms` budget that did useful work.
    pub fn lane_utilisation(&self, lanes: usize) -> f64 {
        let budget = (lanes.max(1) as u64 * self.virtual_ms) as f64;
        if budget == 0.0 {
            0.0
        } else {
            self.serial_virtual_ms as f64 / budget
        }
    }
}

/// Retrieval-protocol phase a batch of virtual time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Key listing.
    List,
    /// Per-key filter checks.
    Filter,
    /// Per-key attribute fetches.
    Fetch,
}

/// Per-step accounting accumulated during retrieval, folded into
/// [`QueryStats`] once the step wave completes.
#[derive(Debug, Clone, Copy, Default)]
struct StepStats {
    list_prompts: usize,
    filter_prompts: usize,
    fetch_prompts: usize,
    cache_hits: usize,
    prompt_tokens: usize,
    completion_tokens: usize,
    virtual_ms: u64,
    /// Phase-attributed virtual time, indexed by [`Phase`] discriminant
    /// order (list, filter, fetch).
    phase_ms: [u64; 3],
    serial_ms: u64,
    retries: usize,
    timeouts: usize,
    rate_limited: usize,
    breaker_fastfails: usize,
    failed_cells: usize,
}

impl StepStats {
    /// Folds one batch's resilience counters in (shared by both absorb
    /// variants — retry accounting is per model call, never per key).
    fn absorb_resilience(&mut self, outcome: &BatchOutcome) {
        self.retries += outcome.retries;
        self.timeouts += outcome.timeouts;
        self.rate_limited += outcome.rate_limited;
        self.breaker_fastfails += outcome.breaker_fastfails;
    }

    /// Folds one batch's counters in (time is phase-structured and added
    /// by the caller, not here).
    fn absorb(&mut self, outcome: &BatchOutcome) {
        self.cache_hits += outcome.hits;
        self.prompt_tokens += outcome.prompt_tokens;
        self.completion_tokens += outcome.completion_tokens;
        self.serial_ms += outcome.serial_ms;
        self.absorb_resilience(outcome);
    }

    /// Folds one batch's counters in, *except* cache hits — the form used
    /// for multi-key-protocol prompts (chunks and their single-key
    /// fallbacks), whose keys are billed per signature by the sub-entry
    /// store at extraction time. Counting a prompt-level raw-cache hit on
    /// such a prompt would bill the same keys twice — and, because
    /// raw-cache hits on chunk strings only arise when concurrent queries
    /// race into identical chunks, would make `cache_hits` depend on
    /// arrival order. On a single harness thread this equals [`absorb`]
    /// exactly: a pending key is by construction not yet stored, so a
    /// re-ask chunk can never reproduce an earlier chunk's prompt string
    /// and such hits are zero.
    ///
    /// [`absorb`]: StepStats::absorb
    fn absorb_keyed(&mut self, outcome: &BatchOutcome) {
        self.prompt_tokens += outcome.prompt_tokens;
        self.completion_tokens += outcome.completion_tokens;
        self.serial_ms += outcome.serial_ms;
        self.absorb_resilience(outcome);
    }

    /// Charges wave time to the step clock and attributes it to a phase.
    fn charge_wave(&mut self, phase: Phase, ms: u64) {
        self.virtual_ms += ms;
        self.charge_phase(phase, ms);
    }

    /// Attributes time to a phase without touching the step clock (the
    /// streaming driver's clock is the event simulation's makespan, not a
    /// sum).
    fn charge_phase(&mut self, phase: Phase, ms: u64) {
        self.phase_ms[phase as usize] += ms;
    }
}

/// The result of one Galois query.
#[derive(Debug, Clone)]
pub struct GaloisResult {
    /// The output relation `R_M`.
    pub relation: Relation,
    /// Prompt accounting.
    pub stats: QueryStats,
}

/// A Galois session over one LLM and one schema catalog.
///
/// The [`Database`] provides the *schema* (the paper assumes "the schema
/// (but no instances) is provided together with the query") and any
/// `DB.`-qualified instance data for hybrid queries; LLM-sourced relations
/// are materialised through prompts at query time.
///
/// Sessions are `Sync`: one session may serve queries from many threads
/// concurrently (the harness does exactly that), sharing the prompt cache.
pub struct Galois {
    client: LlmClient,
    db: Database,
    prompt_builder: PromptBuilder,
    options: GaloisOptions,
    /// Cost-model calibration, frozen at the session's first planner use
    /// so plan choice stays a deterministic function of the query — never
    /// of which concurrent query's prompts happened to land first in the
    /// shared client stats. [`Galois::recalibrate_planner`] re-freezes it.
    calibration: parking_lot::Mutex<Option<PlannerParams>>,
    /// The resolved key-universe store (`None` when [`ListStore::Off`]).
    list_store: Option<Arc<KeyUniverseStore>>,
    /// The model's behaviour fingerprint, keying store entries so a
    /// profile change invalidates stored universes cleanly.
    model_sig: String,
}

impl Galois {
    /// Creates a session with default options.
    pub fn new(model: Arc<dyn LanguageModel>, db: Database) -> Self {
        Self::with_options(model, db, GaloisOptions::default())
    }

    /// Creates a session with explicit options.
    pub fn with_options(
        model: Arc<dyn LanguageModel>,
        db: Database,
        options: GaloisOptions,
    ) -> Self {
        let prompt_builder = PromptBuilder::for_model(model.name());
        let model_sig = model.signature();
        let list_store = match &options.list_store {
            ListStore::Off => None,
            ListStore::On => Some(Arc::new(KeyUniverseStore::new())),
            ListStore::Shared(store) => Some(Arc::clone(store)),
        };
        let mut client = LlmClient::with_parallelism(model, options.parallelism);
        if let Some(policy) = options.resilience.policy() {
            client = client.with_resilience(policy);
        }
        Galois {
            client,
            db,
            prompt_builder,
            options,
            calibration: parking_lot::Mutex::new(None),
            list_store,
            model_sig,
        }
    }

    /// The key-universe store in use (`None` when [`ListStore::Off`]).
    pub fn key_universe_store(&self) -> Option<&Arc<KeyUniverseStore>> {
        self.list_store.as_ref()
    }

    /// The underlying client (stats, cache control).
    pub fn client(&self) -> &LlmClient {
        &self.client
    }

    /// The schema/DB catalog in use.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Options in use.
    pub fn options(&self) -> &GaloisOptions {
        &self.options
    }

    /// The cost-model calibration computed from the client's stats *right
    /// now*: batch size and lanes from the options, expected per-prompt
    /// latency and cache-hit rate from the observed stats. This is the
    /// live reading; plan choice uses the frozen snapshot of
    /// [`Galois::recalibrate_planner`].
    pub fn planner_params(&self) -> PlannerParams {
        PlannerParams::from_session(
            self.options.batch_size,
            self.options.parallelism,
            &self.client.stats(),
        )
        .with_batch_keys(self.options.prompt_batch.keys_per_prompt())
        .with_batch_attrs(self.options.prompt_batch.attrs_per_prompt())
        .with_pipeline(self.options.pipeline.is_streaming())
        .with_early_stop(self.options.early_stop == EarlyStop::Limit)
        .with_resilience(self.options.resilience.policy())
        .with_admission(self.options.admission.policy())
    }

    /// The calibration snapshot plan choice uses, frozen at the session's
    /// first planner invocation. Freezing keeps the chosen plan a
    /// deterministic function of the query even when many threads share
    /// the session (live stats would race); a fresh session freezes the
    /// documented cold-start defaults.
    fn calibration(&self) -> PlannerParams {
        self.calibration
            .lock()
            .get_or_insert_with(|| self.planner_params())
            .clone()
    }

    /// Re-freezes the planner calibration from the client's current stats
    /// — opt-in adaptivity for long-lived sessions (call between
    /// workloads, not concurrently with queries whose plans should match).
    pub fn recalibrate_planner(&self) {
        *self.calibration.lock() = Some(self.planner_params());
    }

    /// The parameters one planning pass uses: the frozen calibration,
    /// overlaid with the key-universe store's *live* warm-concept
    /// cardinalities. The overlay is intentionally live where the
    /// calibration is frozen — which concepts are warm is exact knowledge
    /// (stored key counts), not a drifting rate estimate, and the whole
    /// point of planner-visible list caching is that a concept listed by
    /// an earlier query plans as free for the next one. With the store
    /// off this is exactly the frozen calibration.
    fn planning_params(&self) -> PlannerParams {
        let params = self.calibration();
        match &self.list_store {
            Some(store) => params.with_warm_lists(store.warm_map(&self.model_sig)),
            None => params,
        }
    }

    /// Parses one statement, mapping the SQL error into the session's.
    fn parse_statement(&self, sql: &str) -> Result<galois_sql::Statement> {
        galois_sql::parse(sql)
            .map_err(|e| GaloisError::from(galois_relational::EngineError::from(e)))
    }

    /// Plans an already-parsed SELECT through the session's [`Planner`]
    /// with one fixed calibration snapshot.
    fn plan_statement(
        &self,
        select: &galois_sql::SelectStatement,
        params: &PlannerParams,
    ) -> Result<PlannedQuery> {
        let plan = self.db.plan_statement(select).map_err(GaloisError::from)?;
        plan_query(
            &plan,
            self.db.catalog(),
            &self.options.compile,
            self.options.planner,
            params,
        )
    }

    /// Plans a query through the session's [`Planner`] without executing
    /// it, returning the compiled retrieval program plus its cost report.
    pub fn plan(&self, sql: &str) -> Result<PlannedQuery> {
        let stmt = self.parse_statement(sql)?;
        self.plan_statement(stmt.select(), &self.planning_params())
    }

    /// Renders the chosen plan with per-operator prompt/latency cost
    /// estimates (the text behind `EXPLAIN <query>`; Figure 3 shape).
    ///
    /// Accepts either a plain query or an `EXPLAIN`-prefixed one.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = self.parse_statement(sql)?;
        let params = self.planning_params();
        let planned = self.plan_statement(stmt.select(), &params)?;
        Ok(planned.render(self.db.catalog(), &params))
    }

    /// Executes a SQL query against the LLM (and DB for hybrid sources).
    ///
    /// An `EXPLAIN <query>` statement is not executed: it returns the
    /// chosen plan and its cost report as a one-column `QUERY PLAN`
    /// relation with zero prompt accounting.
    pub fn execute(&self, sql: &str) -> Result<GaloisResult> {
        let stmt = self.parse_statement(sql)?;
        if stmt.is_explain() {
            let params = self.planning_params();
            let planned = self.plan_statement(stmt.select(), &params)?;
            let text = planned.render(self.db.catalog(), &params);
            return Ok(GaloisResult {
                relation: galois_relational::cost::explain_relation(&text),
                stats: QueryStats::default(),
            });
        }
        let compiled = match self.options.planner {
            // Fast path, and the bit-exactness invariant made literal: the
            // default mode runs exactly the pre-planner pipeline, no cost
            // estimation on the hot path.
            Planner::Heuristic => {
                let plan = self
                    .db
                    .plan_statement(stmt.select())
                    .map_err(GaloisError::from)?;
                crate::compile::compile(&plan, self.db.catalog(), &self.options.compile)?
            }
            Planner::CostBased => {
                self.plan_statement(stmt.select(), &self.planning_params())?
                    .compiled
            }
        };
        self.execute_compiled(&compiled)
    }

    /// Executes an already-compiled query.
    ///
    /// In the default wave dataflow, all distinct LLM scan steps are
    /// submitted to the scheduler as one wave; the query's virtual time is
    /// the lane-packed makespan of the step times (their sum at
    /// `Parallelism(1)`). With [`Pipeline::Streaming`] the steps share one
    /// event-driven simulation instead (see [`Pipeline`]).
    pub fn execute_compiled(&self, compiled: &CompiledQuery) -> Result<GaloisResult> {
        if self.options.pipeline.is_streaming() {
            return self.execute_compiled_streaming(compiled);
        }
        let started = Instant::now();
        let scheduler = Scheduler::new(self.options.parallelism);
        let lanes = self.options.parallelism.get();

        let step_units: Vec<_> = compiled
            .steps
            .iter()
            .map(|step| move || self.retrieve(step))
            .collect();
        let retrieved = scheduler.run_wave(step_units);

        let mut stats = QueryStats::default();
        let mut step_virtuals = Vec::with_capacity(compiled.steps.len());
        let mut catalog = self.db.catalog().clone();
        for result in retrieved {
            let (table, step_stats) = result?;
            fold_step_stats(&mut stats, &step_stats);
            stats.rows_retrieved += table.len();
            step_virtuals.push(step_stats.virtual_ms);
            catalog
                .add_table(table)
                .map_err(|e| GaloisError::Compile(format!("temp table: {e}")))?;
        }
        stats.virtual_ms = lane_schedule(step_virtuals, lanes);

        let relation =
            galois_relational::execute(&compiled.plan, &catalog).map_err(GaloisError::from)?;

        stats.wall_ms = started.elapsed().as_millis() as u64;
        Ok(GaloisResult { relation, stats })
    }

    /// Client-level stats accumulated over the session.
    pub fn session_stats(&self) -> ClientStats {
        self.client.stats()
    }

    // -----------------------------------------------------------------
    // Retrieval (workflow steps 2–3)
    // -----------------------------------------------------------------

    fn retrieve(&self, step: &LlmScanStep) -> Result<(Table, StepStats)> {
        let scheduler = Scheduler::new(self.options.parallelism);
        let mut acc = StepStats::default();
        let keys = self.scan_keys(step, &scheduler, &mut acc);
        let keys = self.apply_filters(step, keys, &scheduler, &mut acc);
        let rows = self.fetch_attributes(step, &keys, &scheduler, &mut acc);
        Ok((materialise_step(step, rows)?, acc))
    }

    /// Key retrieval. Without a [`ListStore`], iterate the list prompt
    /// until the model stops producing new values (paper: "we iterate
    /// with a prompt until we stop getting new results") — bit-identical
    /// to the pre-store pipeline. With a store, a warm concept is served
    /// from its stored universe at zero prompt cost (a partial frontier
    /// resumes classic paging after it), and a cold concept is paged
    /// *speculatively*: page 1 is the classic first prompt, later pages
    /// are requested by offset in parallel waves across the lanes.
    fn scan_keys(
        &self,
        step: &LlmScanStep,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<String> {
        let Some(store) = &self.list_store else {
            return self
                .scan_keys_classic(step, acc, Vec::new(), std::collections::HashSet::new(), 0)
                .keys;
        };
        if self.options.max_list_iterations == 0 {
            // Nothing may be listed: skip the store entirely (no warm
            // service, no empty publish), like the streaming path.
            return Vec::new();
        }
        let concept = step.concept_signature();
        if let Some(stored) = store.read(&concept, &self.model_sig) {
            // Warm read: the stored frontier's iterations are counted as
            // cache hits — the same bill a re-listing run would have paid
            // in prompt-cache hits — at zero prompts and zero virtual
            // time.
            acc.cache_hits += stored.iterations;
            if stored.exhausted || stored.iterations >= self.options.max_list_iterations {
                return stored.keys;
            }
            // Partial frontier (an earlier session hit its iteration cap):
            // resume classic exclusion paging after the stored keys and
            // extend the entry append-only.
            let seen = stored.keys.iter().map(|k| k.to_ascii_lowercase()).collect();
            let out = self.scan_keys_classic(step, acc, stored.keys, seen, stored.iterations);
            store.publish(
                &concept,
                &self.model_sig,
                KeyUniverse {
                    keys: out.keys.clone(),
                    iterations: out.iterations,
                    exhausted: out.exhausted,
                },
            );
            return out.keys;
        }
        let out = self.scan_keys_speculative(step, scheduler, acc);
        store.publish(
            &concept,
            &self.model_sig,
            KeyUniverse {
                keys: out.keys.clone(),
                iterations: out.iterations,
                exhausted: out.exhausted,
            },
        );
        out.keys
    }

    /// Classic exclusion-list key paging, resumable from a stored
    /// frontier (`initial` keys / `seen` forms / `iterations` already
    /// paid; all empty/zero on a fresh scan).
    ///
    /// Iterations chain on the exclusion list, so this phase is inherently
    /// sequential; its batches add to the step's virtual time directly.
    /// The growing exclusion list rides behind an `Arc`, so rendering each
    /// iteration's prompt shares rather than re-clones every seen key.
    fn scan_keys_classic(
        &self,
        step: &LlmScanStep,
        acc: &mut StepStats,
        initial: Vec<String>,
        mut seen: std::collections::HashSet<String>,
        start_iterations: usize,
    ) -> ScanOutcome {
        let mut keys: Arc<Vec<String>> = Arc::new(initial);
        let mut iterations = start_iterations;
        let mut exhausted = false;
        while iterations < self.options.max_list_iterations {
            let prompt = {
                // Scoped so the intent's `Arc` clone dies before
                // `Arc::make_mut` below — keeping the push in-place.
                let intent = TaskIntent::ListKeys {
                    relation: step.table.clone(),
                    key_attr: step.key_attr.clone(),
                    condition: step.scan_condition.clone(),
                    exclude: Arc::clone(&keys),
                };
                self.prompt_builder.task(&intent)
            };
            let outcome = self.client.complete_outcome(&prompt);
            acc.list_prompts += 1;
            iterations += 1;
            acc.charge_wave(Phase::List, outcome.virtual_ms);
            acc.absorb(&outcome);
            if is_fault_text(&outcome.completions[0].text) {
                // A degraded list page: stop paging, but leave the
                // frontier resumable (`exhausted` stays false) — a
                // faulted page must never be recorded as the end of the
                // universe, so a later query resumes where this one died.
                acc.failed_cells += 1;
                break;
            }
            match parse_list_answer(&outcome.completions[0].text) {
                ListAnswer::Exhausted => {
                    exhausted = true;
                    break;
                }
                ListAnswer::Values(values) => {
                    let mut got_new = false;
                    let fresh = Arc::make_mut(&mut keys);
                    for v in values {
                        let cleaned = normalise_text(&v);
                        if cleaned.is_empty() {
                            continue;
                        }
                        if seen.insert(cleaned.to_ascii_lowercase()) {
                            fresh.push(cleaned);
                            got_new = true;
                        }
                    }
                    if !got_new {
                        exhausted = true;
                        break;
                    }
                }
            }
        }
        ScanOutcome {
            keys: Arc::try_unwrap(keys).unwrap_or_else(|shared| (*shared).clone()),
            iterations,
            exhausted,
        }
    }

    /// Speculative offset paging for a cold concept (store enabled).
    ///
    /// Page 1 is the classic first list prompt — identical string, so it
    /// shares the prompt cache with store-off runs. Its raw value count
    /// is the page-size estimate `P`; subsequent pages are requested as
    /// [`TaskIntent::ListKeysPage`] at offsets `P, 2P, …` in waves whose
    /// width doubles up to the lane count — the probe wave is one page
    /// wide (the estimate may be the whole universe), later waves fan
    /// out. Pages are applied in offset order; the first exhausted page,
    /// short page or page with nothing new ends the universe (pages
    /// already fired past it are counted waste — speculation buys
    /// latency with at most a ramp-width of extra prompts, never
    /// accuracy). Hitting the iteration cap leaves a partial frontier.
    fn scan_keys_speculative(
        &self,
        step: &LlmScanStep,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> ScanOutcome {
        let cap = self.options.max_list_iterations;
        let mut out = ScanOutcome {
            keys: Vec::new(),
            iterations: 0,
            exhausted: false,
        };
        if cap == 0 {
            return out;
        }
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        let first = {
            let intent = TaskIntent::ListKeys {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                condition: step.scan_condition.clone(),
                exclude: Arc::new(Vec::new()),
            };
            self.prompt_builder.task(&intent)
        };
        let outcome = self.client.complete_outcome(&first);
        acc.list_prompts += 1;
        out.iterations = 1;
        acc.charge_wave(Phase::List, outcome.virtual_ms);
        acc.absorb(&outcome);
        if is_fault_text(&outcome.completions[0].text) {
            // Degraded first page: give up paging with a resumable
            // (non-exhausted) empty frontier.
            acc.failed_cells += 1;
            return out;
        }
        let page_est = match parse_list_answer(&outcome.completions[0].text) {
            ListAnswer::Exhausted => {
                out.exhausted = true;
                return out;
            }
            ListAnswer::Values(values) => {
                let raw = values.len();
                if !absorb_page(values, &mut out.keys, &mut seen) {
                    out.exhausted = true;
                    return out;
                }
                raw
            }
        };

        let lanes = self.options.parallelism.get();
        let mut offset = page_est;
        let mut width = 1usize;
        let mut faulted = false;
        while !out.exhausted && !faulted && out.iterations < cap {
            let width_now = width.min(cap - out.iterations).max(1);
            let prompts: Vec<String> = (0..width_now)
                .map(|i| {
                    self.prompt_builder.task(&TaskIntent::ListKeysPage {
                        relation: step.table.clone(),
                        key_attr: step.key_attr.clone(),
                        condition: step.scan_condition.clone(),
                        offset: offset + i * page_est,
                    })
                })
                .collect();
            let units: Vec<_> = prompts
                .iter()
                .map(|prompt| move || self.client.complete_outcome(prompt))
                .collect();
            let outcomes = scheduler.run_wave(units);
            acc.list_prompts += width_now;
            out.iterations += width_now;
            acc.charge_wave(
                Phase::List,
                lane_schedule(outcomes.iter().map(|o| o.virtual_ms), lanes),
            );
            for outcome in &outcomes {
                acc.absorb(outcome);
            }
            // Apply in offset order; the first terminal page wins.
            for outcome in outcomes {
                if out.exhausted || faulted {
                    break;
                }
                if is_fault_text(&outcome.completions[0].text) {
                    // A degraded page ends the ramp resumably: pages
                    // fired past it are waste (as with any speculative
                    // overshoot) and the frontier stays non-exhausted.
                    acc.failed_cells += 1;
                    faulted = true;
                    break;
                }
                match parse_list_answer(&outcome.completions[0].text) {
                    ListAnswer::Exhausted => out.exhausted = true,
                    ListAnswer::Values(values) => {
                        let raw = values.len();
                        if !absorb_page(values, &mut out.keys, &mut seen) || raw < page_est {
                            out.exhausted = true;
                        }
                    }
                }
            }
            offset += width_now * page_est;
            width = (width * 2).min(lanes.max(1));
        }
        out
    }

    /// Selection via boolean prompts: one "is its <attr> <op> <value>?"
    /// question per key per condition.
    ///
    /// Conditions stay in conjunctive short-circuit order (a key is only
    /// asked about condition *n + 1* if it survived condition *n* — the
    /// prompt-pruning the paper's operator relies on); the chunks *within*
    /// one condition are independent and run as one scheduler wave.
    fn apply_filters(
        &self,
        step: &LlmScanStep,
        keys: Vec<String>,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<String> {
        if self.options.prompt_batch.is_on() {
            return self.apply_filters_batched(step, keys, scheduler, acc);
        }
        let lanes = self.options.parallelism.get();
        let batch = self.options.batch_size.max(1);
        let mut keys = keys;
        for condition in &step.filter_conditions {
            let prompts: Vec<String> = keys
                .iter()
                .map(|key| {
                    self.prompt_builder.task(&TaskIntent::CheckFilter {
                        relation: step.table.clone(),
                        key_attr: step.key_attr.clone(),
                        key: key.clone(),
                        condition: condition.clone(),
                    })
                })
                .collect();
            let units: Vec<_> = prompts
                .chunks(batch)
                .map(|chunk| move || self.client.complete_batch_outcome(chunk))
                .collect();
            let outcomes = scheduler.run_wave(units);
            acc.filter_prompts += prompts.len();
            acc.charge_wave(
                Phase::Filter,
                lane_schedule(outcomes.iter().map(|o| o.virtual_ms), lanes),
            );
            let mut verdicts = Vec::with_capacity(keys.len());
            for outcome in &outcomes {
                acc.absorb(outcome);
                for completion in &outcome.completions {
                    if is_fault_text(&completion.text) {
                        // A degraded verdict keeps the tuple out, like any
                        // unparseable one, but is counted as a failed cell.
                        acc.failed_cells += 1;
                        verdicts.push(false);
                        continue;
                    }
                    // An unparseable verdict keeps the tuple out: the
                    // predicate did not evaluate to TRUE.
                    verdicts.push(parse_boolean_answer(&completion.text).unwrap_or(false));
                }
            }
            keys = keys
                .into_iter()
                .zip(verdicts)
                .filter_map(|(k, keep)| keep.then_some(k))
                .collect();
        }
        keys
    }

    /// Attribute retrieval: one prompt per (key, attribute), batched.
    ///
    /// Every `(column, chunk)` cell is independent — the whole phase is a
    /// single scheduler wave.
    fn fetch_attributes(
        &self,
        step: &LlmScanStep,
        keys: &[String],
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<Vec<Value>> {
        if self.options.prompt_batch.is_grid() {
            return self.fetch_attributes_grid(step, keys, scheduler, acc);
        }
        if self.options.prompt_batch.is_on() {
            return self.fetch_attributes_batched(step, keys, scheduler, acc);
        }
        let lanes = self.options.parallelism.get();
        let batch = self.options.batch_size.max(1);
        let arity = step.columns.len();
        let mut rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|key| {
                let mut row = vec![Value::Null; arity];
                // The key itself is cleaned to the key column's type.
                row[step.key_index] = clean_to_type(
                    key,
                    step.columns[step.key_index].data_type,
                    &self.options.cleaning,
                )
                .unwrap_or(Value::Null);
                row
            })
            .collect();

        // The per-cell prompt is constant except for the key: render the
        // template once per column and splice each key in, instead of
        // re-formatting the whole question per (key, column) — the same
        // hoist shape as the batched protocol's `cell_sig_prefix`.
        let col_prompts: Vec<(usize, Vec<String>)> = step
            .fetch
            .iter()
            .map(|&col_idx| {
                let column = &step.columns[col_idx];
                let template =
                    self.prompt_builder
                        .fetch_template(&step.table, &step.key_attr, &column.name);
                let prompts = keys.iter().map(|key| template.render(key)).collect();
                (col_idx, prompts)
            })
            .collect();

        let mut unit_columns: Vec<usize> = Vec::new(); // unit → column ordinal
        let mut units = Vec::new();
        for (ord, (_, prompts)) in col_prompts.iter().enumerate() {
            for chunk in prompts.chunks(batch) {
                unit_columns.push(ord);
                units.push(move || self.client.complete_batch_outcome(chunk));
            }
        }
        let outcomes = scheduler.run_wave(units);
        acc.charge_wave(
            Phase::Fetch,
            lane_schedule(outcomes.iter().map(|o| o.virtual_ms), lanes),
        );

        let mut answers: Vec<Vec<_>> = vec![Vec::new(); col_prompts.len()];
        for (&ord, outcome) in unit_columns.iter().zip(outcomes) {
            acc.absorb(&outcome);
            acc.fetch_prompts += outcome.completions.len();
            answers[ord].extend(outcome.completions);
        }

        for ((col_idx, _), col_answers) in col_prompts.iter().zip(answers) {
            let column = &step.columns[*col_idx];
            for (row, completion) in rows.iter_mut().zip(col_answers) {
                let value = if is_fault_text(&completion.text) {
                    // A degraded fetch annotates the cell as Null.
                    acc.failed_cells += 1;
                    Value::Null
                } else {
                    parse_value_answer(&completion.text)
                        .and_then(|raw| {
                            clean_to_type(&raw, column.data_type, &self.options.cleaning)
                        })
                        .map(|v| match v {
                            Value::Text(s) => Value::Text(normalise_text(&s)),
                            other => other,
                        })
                        .unwrap_or(Value::Null)
                };
                row[*col_idx] = value;
            }
        }

        rows
    }

    // -----------------------------------------------------------------
    // Multi-key batched retrieval (`PromptBatch::Keys(B)`)
    // -----------------------------------------------------------------

    /// Selection with the multi-key protocol: conditions keep their
    /// conjunctive short-circuit order, but within one condition the
    /// surviving keys are fused into `ceil(keys / B)` prompts instead of
    /// `keys`. An unparseable per-key verdict falls back to the single-key
    /// prompt before deciding; a key whose *fallback* verdict still fails
    /// to parse is kept out, exactly like the single-key path.
    fn apply_filters_batched(
        &self,
        step: &LlmScanStep,
        keys: Vec<String>,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<String> {
        let mut keys = keys;
        for condition in &step.filter_conditions {
            let mut cells = self.run_batched_cells(
                step,
                vec![(BatchCell::Filter(condition), keys.as_slice())],
                Phase::Filter,
                scheduler,
                acc,
            );
            let (answers, prompts) = cells.pop().expect("one cell per condition");
            acc.filter_prompts += prompts;
            keys = keys
                .into_iter()
                .zip(answers)
                .filter_map(|(k, answer)| {
                    if is_fault_text(&answer) {
                        acc.failed_cells += 1;
                        return None;
                    }
                    parse_boolean_answer(&answer).unwrap_or(false).then_some(k)
                })
                .collect();
        }
        keys
    }

    /// Attribute retrieval with the multi-key protocol: every fetched
    /// column is one cell whose pending keys are fused into `ceil(keys /
    /// B)` prompts; all columns' batched prompts form one scheduler wave
    /// (and all columns' fallback re-asks a second, chained wave), like
    /// the single-key fetch phase's `(column × chunk)` wave.
    fn fetch_attributes_batched(
        &self,
        step: &LlmScanStep,
        keys: &[String],
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<Vec<Value>> {
        let arity = step.columns.len();
        let mut rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|key| {
                let mut row = vec![Value::Null; arity];
                row[step.key_index] = clean_to_type(
                    key,
                    step.columns[step.key_index].data_type,
                    &self.options.cleaning,
                )
                .unwrap_or(Value::Null);
                row
            })
            .collect();

        let cells: Vec<(BatchCell, &[String])> = step
            .fetch
            .iter()
            .map(|&col_idx| (BatchCell::Fetch(&step.columns[col_idx].name), keys))
            .collect();
        let results = self.run_batched_cells(step, cells, Phase::Fetch, scheduler, acc);

        for (&col_idx, (answers, prompts)) in step.fetch.iter().zip(results) {
            acc.fetch_prompts += prompts;
            let column = &step.columns[col_idx];
            for (row, answer) in rows.iter_mut().zip(answers) {
                let value = if is_fault_text(&answer) {
                    // A degraded fetch annotates the cell as Null.
                    acc.failed_cells += 1;
                    Value::Null
                } else {
                    parse_value_answer(&answer)
                        .and_then(|raw| {
                            clean_to_type(&raw, column.data_type, &self.options.cleaning)
                        })
                        .map(|v| match v {
                            Value::Text(s) => Value::Text(normalise_text(&s)),
                            other => other,
                        })
                        .unwrap_or(Value::Null)
                };
                row[col_idx] = value;
            }
        }

        rows
    }

    /// Attribute retrieval with the grid protocol (`PromptBatch::Grid`):
    /// the fetched columns are grouped into attr-groups of up to `A`, and
    /// each group's pending keys are fused into `ceil(keys / B)` prompts
    /// asking *all* of the group's attributes at once — `ceil(C / A) ×
    /// ceil(keys / B)` prompts instead of `C × ceil(keys / B)`. Four
    /// stages, extending [`Galois::run_batched_cells`]'s three with the
    /// fallback ladder's middle rung:
    ///
    /// 1. **sub-entry extraction** per `(key, attr)` cell, through the
    ///    *same* per-attribute signatures the key-batched and single
    ///    paths use — grid answers serve later single-attr or key-batched
    ///    asks and vice versa, for free;
    /// 2. **grid prompts** — one chunk stream per attr-group over the
    ///    keys still missing *any* of the group's cells, one wave;
    /// 3. **per-attribute key-batch fallback** — cells whose grid line
    ///    failed to parse re-ask as [`TaskIntent::FetchAttrBatch`]
    ///    chunks, a second chained wave;
    /// 4. **per-key single fallback** — still-missing cells re-ask as
    ///    [`TaskIntent::FetchAttr`] singles, a third chained wave.
    ///
    /// Grid fusion may cost extra prompts (rungs 3 and 4), never
    /// accuracy: every cell ends answered by the same single-prompt
    /// semantics the ladder bottoms out in.
    fn fetch_attributes_grid(
        &self,
        step: &LlmScanStep,
        keys: &[String],
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<Vec<Value>> {
        let lanes = self.options.parallelism.get();
        let batch = self.options.batch_size.max(1);
        let fuse = self.options.prompt_batch.keys_per_prompt();
        let attr_fuse = self.options.prompt_batch.attrs_per_prompt();

        let arity = step.columns.len();
        let mut rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|key| {
                let mut row = vec![Value::Null; arity];
                row[step.key_index] = clean_to_type(
                    key,
                    step.columns[step.key_index].data_type,
                    &self.options.cleaning,
                )
                .unwrap_or(Value::Null);
                row
            })
            .collect();

        let n_cols = step.fetch.len();
        // Per-column sub-entry prefixes — the same signatures the
        // key-batched and single-key fallback prompts store under.
        let prefixes: Vec<String> = step
            .fetch
            .iter()
            .map(|&col| self.cell_sig_prefix(step, &BatchCell::Fetch(&step.columns[col].name)))
            .collect();
        let mut sig = String::new();

        // Stage 1: per-(key, attr) sub-entry extraction.
        let mut answers: Vec<Vec<Option<String>>> = vec![vec![None; keys.len()]; n_cols];
        let mut pending: Vec<Vec<bool>> = vec![vec![false; keys.len()]; n_cols];
        for ci in 0..n_cols {
            for (i, key) in keys.iter().enumerate() {
                match self
                    .client
                    .extract_sub_entry(sig_for_key(&mut sig, &prefixes[ci], key))
                {
                    SubEntryLookup::Hit(answer) => {
                        acc.cache_hits += 1;
                        answers[ci][i] = Some(answer);
                    }
                    SubEntryLookup::InFlight => {
                        acc.cache_hits += 1;
                        pending[ci][i] = true;
                    }
                    SubEntryLookup::Miss => pending[ci][i] = true,
                }
            }
        }

        // Stage 2: grid prompts — a chunk stream per attr-group (columns
        // `step.fetch[start..start + len]`), all groups in one wave. A
        // key joins a group's chunks when *any* of the group's cells is
        // still missing; already-cached cells of that key are simply
        // skipped at parse time (first answer wins).
        let groups: Vec<(usize, usize)> = (0..n_cols)
            .step_by(attr_fuse)
            .map(|start| (start, attr_fuse.min(n_cols - start)))
            .collect();
        let mut chunk_groups: Vec<usize> = Vec::new();
        let mut chunk_members: Vec<Vec<usize>> = Vec::new();
        let mut chunk_prompts: Vec<String> = Vec::new();
        for (gi, &(start, len)) in groups.iter().enumerate() {
            let members: Vec<usize> = (0..keys.len())
                .filter(|&i| {
                    (start..start + len).any(|ci| pending[ci][i] && answers[ci][i].is_none())
                })
                .collect();
            for chunk in members.chunks(fuse) {
                let chunk_keys: Vec<String> = chunk.iter().map(|&i| keys[i].clone()).collect();
                chunk_prompts.push(
                    self.prompt_builder
                        .task(&self.grid_intent(step, start, len, chunk_keys)),
                );
                chunk_groups.push(gi);
                chunk_members.push(chunk.to_vec());
            }
        }
        acc.fetch_prompts += chunk_prompts.len();
        let completions = self.run_cell_wave(
            &chunk_prompts,
            &chunk_groups,
            batch,
            lanes,
            Phase::Fetch,
            scheduler,
            acc,
        );
        for ((&gi, members), completion) in chunk_groups.iter().zip(&chunk_members).zip(completions)
        {
            let (start, len) = groups[gi];
            let pads = grid_pad_columns(step, start, len, attr_fuse);
            let pad_prefixes: Vec<String> = pads
                .iter()
                .map(|&c| self.cell_sig_prefix(step, &BatchCell::Fetch(&step.columns[c].name)))
                .collect();
            let chunk_keys: Vec<String> = members.iter().map(|&i| keys[i].clone()).collect();
            let attr_names: Vec<String> = (start..start + len)
                .map(|ci| step.columns[step.fetch[ci]].name.clone())
                .chain(pads.iter().map(|&c| step.columns[c].name.clone()))
                .collect();
            let mut cells = split_grid_answer(&completion.text, &chunk_keys, &attr_names);
            for (ki, &i) in members.iter().enumerate() {
                for (ord, ci) in (start..start + len).enumerate() {
                    if !pending[ci][i] || answers[ci][i].is_some() {
                        continue;
                    }
                    if let Some(answer) = cells[ki][ord].take() {
                        self.client.store_sub_entry(
                            sig_for_key(&mut sig, &prefixes[ci], &keys[i]),
                            &answer,
                        );
                        answers[ci][i] = Some(answer);
                    }
                }
                // Speculative pad cells only seed the sub-entry store —
                // they never feed rows and never enter the fallback
                // ladder (first stored write wins, so a pad can't flap an
                // already-extracted cell).
                for (pi, prefix) in pad_prefixes.iter().enumerate() {
                    if let Some(answer) = cells[ki][len + pi].take() {
                        self.client
                            .store_sub_entry(sig_for_key(&mut sig, prefix, &keys[i]), &answer);
                    }
                }
            }
        }

        // Stage 3: per-attribute key-batch fallback, a chained wave.
        let mut fb_cols: Vec<usize> = Vec::new();
        let mut fb_members: Vec<Vec<usize>> = Vec::new();
        let mut fb_prompts: Vec<String> = Vec::new();
        for ci in 0..n_cols {
            let rem: Vec<usize> = (0..keys.len())
                .filter(|&i| pending[ci][i] && answers[ci][i].is_none())
                .collect();
            for chunk in rem.chunks(fuse) {
                let chunk_keys: Vec<String> = chunk.iter().map(|&i| keys[i].clone()).collect();
                let cell = BatchCell::Fetch(&step.columns[step.fetch[ci]].name);
                fb_prompts.push(
                    self.prompt_builder
                        .task(&self.cell_batched_intent(step, &cell, chunk_keys)),
                );
                fb_cols.push(ci);
                fb_members.push(chunk.to_vec());
            }
        }
        acc.fetch_prompts += fb_prompts.len();
        let completions = self.run_cell_wave(
            &fb_prompts,
            &fb_cols,
            batch,
            lanes,
            Phase::Fetch,
            scheduler,
            acc,
        );
        for ((&ci, members), completion) in fb_cols.iter().zip(&fb_members).zip(completions) {
            let chunk_keys: Vec<String> = members.iter().map(|&i| keys[i].clone()).collect();
            for (&i, sub) in members
                .iter()
                .zip(split_batched_answer(&completion.text, &chunk_keys))
            {
                if let Some(answer) = sub {
                    self.client
                        .store_sub_entry(sig_for_key(&mut sig, &prefixes[ci], &keys[i]), &answer);
                    answers[ci][i] = Some(answer);
                }
            }
        }

        // Stage 4: per-key single fallback, the ladder's bottom rung.
        let mut single_cols: Vec<usize> = Vec::new();
        let mut single_keys: Vec<usize> = Vec::new();
        let mut single_prompts: Vec<String> = Vec::new();
        for ci in 0..n_cols {
            for i in 0..keys.len() {
                if pending[ci][i] && answers[ci][i].is_none() {
                    let cell = BatchCell::Fetch(&step.columns[step.fetch[ci]].name);
                    single_prompts.push(
                        self.prompt_builder
                            .task(&self.cell_single_intent(step, &cell, &keys[i])),
                    );
                    single_cols.push(ci);
                    single_keys.push(i);
                }
            }
        }
        acc.fetch_prompts += single_prompts.len();
        let completions = self.run_cell_wave(
            &single_prompts,
            &single_cols,
            batch,
            lanes,
            Phase::Fetch,
            scheduler,
            acc,
        );
        for ((&ci, &i), completion) in single_cols.iter().zip(&single_keys).zip(completions) {
            self.client.store_sub_entry(
                sig_for_key(&mut sig, &prefixes[ci], &keys[i]),
                &completion.text,
            );
            answers[ci][i] = Some(completion.text);
        }

        for (ci, &col_idx) in step.fetch.iter().enumerate() {
            let column = &step.columns[col_idx];
            for (i, row) in rows.iter_mut().enumerate() {
                let answer = answers[ci][i]
                    .take()
                    .expect("every grid cell answered by sub-entry, grid, batch or fallback");
                let value = if is_fault_text(&answer) {
                    // A degraded fetch annotates the cell as Null.
                    acc.failed_cells += 1;
                    Value::Null
                } else {
                    parse_value_answer(&answer)
                        .and_then(|raw| {
                            clean_to_type(&raw, column.data_type, &self.options.cleaning)
                        })
                        .map(|v| match v {
                            Value::Text(s) => Value::Text(normalise_text(&s)),
                            other => other,
                        })
                        .unwrap_or(Value::Null)
                };
                row[col_idx] = value;
            }
        }

        rows
    }

    /// The grid intent for one chunk of keys × one contiguous attr-group
    /// of the step's fetched columns (`step.fetch[start..start + len]`),
    /// plus the group's speculative pad columns ([`grid_pad_columns`]).
    fn grid_intent(
        &self,
        step: &LlmScanStep,
        start: usize,
        len: usize,
        chunk_keys: Vec<String>,
    ) -> TaskIntent {
        let attr_fuse = self.options.prompt_batch.attrs_per_prompt();
        let pads = grid_pad_columns(step, start, len, attr_fuse);
        TaskIntent::FetchGridBatch {
            relation: step.table.clone(),
            key_attr: step.key_attr.clone(),
            keys: chunk_keys,
            attributes: step.fetch[start..start + len]
                .iter()
                .chain(pads.iter())
                .map(|&c| step.columns[c].name.clone())
                .collect(),
        }
    }

    /// Signature prefix shared by every `(cell, key)` sub-entry of one
    /// retrieval cell in the client's extraction cache. `\u{1f}` (ASCII
    /// unit separator) keeps field boundaries unambiguous for keys
    /// containing `:` or commas.
    ///
    /// The prefix is everything but the key, so the per-key loops build
    /// each signature with a single append onto a reused buffer
    /// ([`sig_for_key`]) instead of re-formatting the whole
    /// table/attribute/condition preamble for every key — the
    /// `batched_cells` criterion bench measures that hot path.
    fn cell_sig_prefix(&self, step: &LlmScanStep, cell: &BatchCell) -> String {
        match cell {
            BatchCell::Filter(c) => format!(
                "filter\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}",
                step.table,
                step.key_attr,
                c.attribute,
                c.render_phrase(),
            ),
            BatchCell::Fetch(attribute) => format!(
                "fetch\u{1f}{}\u{1f}{}\u{1f}{attribute}\u{1f}",
                step.table, step.key_attr,
            ),
        }
    }

    /// The multi-key intent for one chunk of a cell's keys.
    fn cell_batched_intent(
        &self,
        step: &LlmScanStep,
        cell: &BatchCell,
        chunk_keys: Vec<String>,
    ) -> TaskIntent {
        match cell {
            BatchCell::Filter(c) => TaskIntent::FilterKeysBatch {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                keys: chunk_keys,
                condition: (*c).clone(),
            },
            BatchCell::Fetch(attribute) => TaskIntent::FetchAttrBatch {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                keys: chunk_keys,
                attribute: (*attribute).to_string(),
            },
        }
    }

    /// The single-key fallback intent for one of a cell's keys.
    fn cell_single_intent(&self, step: &LlmScanStep, cell: &BatchCell, key: &str) -> TaskIntent {
        match cell {
            BatchCell::Filter(c) => TaskIntent::CheckFilter {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                key: key.to_string(),
                condition: (*c).clone(),
            },
            BatchCell::Fetch(attribute) => TaskIntent::FetchAttr {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                key: key.to_string(),
                attribute: (*attribute).to_string(),
            },
        }
    }

    /// Answers every `(cell, key)` pair of one retrieval phase through the
    /// multi-key protocol. Three stages:
    ///
    /// 1. **sub-entry extraction** — keys already answered by an earlier
    ///    batched or single prompt are served from the client's per-key
    ///    cache (counted as cache hits, zero prompts, zero virtual time);
    /// 2. **batched prompts** — each cell's pending keys are fused into
    ///    `ceil(pending / B)` prompts, grouped per cell into client
    ///    batches of `batch_size`, all cells in one scheduler wave;
    /// 3. **fallback** — any key whose batched answer failed to parse is
    ///    re-asked with its single-key prompt in a second, chained wave
    ///    (batching may cost prompts, never accuracy).
    ///
    /// Returns, per cell, one answer string per key (aligned with the
    /// cell's key slice) and the number of prompts issued for it.
    fn run_batched_cells(
        &self,
        step: &LlmScanStep,
        cells: Vec<(BatchCell, &[String])>,
        phase: Phase,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<(Vec<String>, usize)> {
        let lanes = self.options.parallelism.get();
        let batch = self.options.batch_size.max(1);
        let fuse = self.options.prompt_batch.keys_per_prompt();

        struct CellState {
            answers: Vec<Option<String>>,
            pending: Vec<usize>,
            prompts: usize,
        }

        // Each cell's signature prefix is built once; the per-key loops
        // below append only the key onto a reused buffer.
        let prefixes: Vec<String> = cells
            .iter()
            .map(|(cell, _)| self.cell_sig_prefix(step, cell))
            .collect();
        let mut sig = String::new();

        // Stage 1: per-key sub-entry extraction.
        let mut states: Vec<CellState> = cells
            .iter()
            .zip(&prefixes)
            .map(|((_, keys), prefix)| {
                let mut answers = vec![None; keys.len()];
                let mut pending = Vec::new();
                for (i, key) in keys.iter().enumerate() {
                    match self
                        .client
                        .extract_sub_entry(sig_for_key(&mut sig, prefix, key))
                    {
                        SubEntryLookup::Hit(answer) => {
                            acc.cache_hits += 1;
                            answers[i] = Some(answer);
                        }
                        // In flight elsewhere: already billed as a hit by
                        // the client; re-ask rather than block so prompt
                        // counts stay a local decision (determinism note
                        // on [`LlmClient::extract_sub_entry`]).
                        SubEntryLookup::InFlight => {
                            acc.cache_hits += 1;
                            pending.push(i);
                        }
                        SubEntryLookup::Miss => pending.push(i),
                    }
                }
                CellState {
                    answers,
                    pending,
                    prompts: 0,
                }
            })
            .collect();

        // Stage 2: batched prompts, one wave across all cells.
        let mut chunk_cells: Vec<usize> = Vec::new();
        let mut chunk_members: Vec<Vec<usize>> = Vec::new();
        let mut chunk_prompts: Vec<String> = Vec::new();
        for (ci, (cell, keys)) in cells.iter().enumerate() {
            for chunk in states[ci].pending.chunks(fuse) {
                let chunk_keys: Vec<String> = chunk.iter().map(|&i| keys[i].clone()).collect();
                chunk_prompts.push(
                    self.prompt_builder
                        .task(&self.cell_batched_intent(step, cell, chunk_keys)),
                );
                chunk_cells.push(ci);
                chunk_members.push(chunk.to_vec());
            }
            states[ci].prompts += states[ci].pending.len().div_ceil(fuse);
        }
        let completions = self.run_cell_wave(
            &chunk_prompts,
            &chunk_cells,
            batch,
            lanes,
            phase,
            scheduler,
            acc,
        );
        for ((&ci, members), completion) in chunk_cells.iter().zip(&chunk_members).zip(completions)
        {
            let (_, keys) = &cells[ci];
            let chunk_keys: Vec<String> = members.iter().map(|&i| keys[i].clone()).collect();
            for (&i, sub) in members
                .iter()
                .zip(split_batched_answer(&completion.text, &chunk_keys))
            {
                if let Some(answer) = sub {
                    self.client
                        .store_sub_entry(sig_for_key(&mut sig, &prefixes[ci], &keys[i]), &answer);
                    states[ci].answers[i] = Some(answer);
                }
            }
        }

        // Stage 3: per-key fallback re-asks, a second chained wave.
        let mut fb_cells: Vec<usize> = Vec::new();
        let mut fb_keys: Vec<usize> = Vec::new();
        let mut fb_prompts: Vec<String> = Vec::new();
        for (ci, (cell, keys)) in cells.iter().enumerate() {
            let before = fb_prompts.len();
            for &i in &states[ci].pending {
                if states[ci].answers[i].is_none() {
                    fb_prompts.push(
                        self.prompt_builder
                            .task(&self.cell_single_intent(step, cell, &keys[i])),
                    );
                    fb_cells.push(ci);
                    fb_keys.push(i);
                }
            }
            states[ci].prompts += fb_prompts.len() - before;
        }
        let completions =
            self.run_cell_wave(&fb_prompts, &fb_cells, batch, lanes, phase, scheduler, acc);
        for ((&ci, &i), completion) in fb_cells.iter().zip(&fb_keys).zip(completions) {
            let (_, keys) = &cells[ci];
            self.client.store_sub_entry(
                sig_for_key(&mut sig, &prefixes[ci], &keys[i]),
                &completion.text,
            );
            states[ci].answers[i] = Some(completion.text);
        }

        states
            .into_iter()
            .map(|st| {
                let answers = st
                    .answers
                    .into_iter()
                    .map(|a| a.expect("every key answered by sub-entry, batch or fallback"))
                    .collect();
                (answers, st.prompts)
            })
            .collect()
    }

    /// Runs one wave of cell prompts: consecutive prompts of the same cell
    /// are grouped into client batches of up to `batch` members (client
    /// batches never span cells, mirroring the single-key phases), the
    /// wave's virtual makespan is added to the step clock, and the
    /// completions come back flattened in prompt order.
    #[allow(clippy::too_many_arguments)]
    fn run_cell_wave(
        &self,
        prompts: &[String],
        prompt_cells: &[usize],
        batch: usize,
        lanes: usize,
        phase: Phase,
        scheduler: &Scheduler,
        acc: &mut StepStats,
    ) -> Vec<galois_llm::Completion> {
        if prompts.is_empty() {
            return Vec::new();
        }
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        while start < prompts.len() {
            let mut end = start + 1;
            while end < prompts.len()
                && prompt_cells[end] == prompt_cells[start]
                && end - start < batch
            {
                end += 1;
            }
            bounds.push((start, end));
            start = end;
        }
        let units: Vec<_> = bounds
            .iter()
            .map(|&(s, e)| {
                let slice = &prompts[s..e];
                move || self.client.complete_batch_outcome(slice)
            })
            .collect();
        let outcomes = scheduler.run_wave(units);
        acc.charge_wave(
            phase,
            lane_schedule(outcomes.iter().map(|o| o.virtual_ms), lanes),
        );
        let mut completions = Vec::with_capacity(prompts.len());
        for outcome in outcomes {
            // Multi-key-protocol prompts: key-level hits were already
            // billed by signature at sub-entry extraction.
            acc.absorb_keyed(&outcome);
            completions.extend(outcome.completions);
        }
        completions
    }
}

/// One retrieval cell of the batched protocol: a filter condition, or a
/// fetched attribute.
enum BatchCell<'a> {
    /// Boolean check of one condition over the cell's keys.
    Filter(&'a Condition),
    /// Fetch of one attribute over the cell's keys.
    Fetch(&'a str),
}

/// Builds one `(cell, key)` sub-entry signature into `buf` from the
/// cell's precomputed prefix — the per-key half of the signature is a
/// single append onto a reused allocation.
fn sig_for_key<'b>(buf: &'b mut String, prefix: &str, key: &str) -> &'b str {
    buf.clear();
    buf.push_str(prefix);
    buf.push_str(key);
    buf
}

/// Folds one step's accounting into the query stats — everything except
/// the packed virtual clock, which each dataflow computes its own way
/// (wave: lane-packed step times; streaming: the event simulation's
/// makespan).
fn fold_step_stats(stats: &mut QueryStats, step: &StepStats) {
    stats.list_prompts += step.list_prompts;
    stats.filter_prompts += step.filter_prompts;
    stats.fetch_prompts += step.fetch_prompts;
    stats.cache_hits += step.cache_hits;
    stats.prompt_tokens += step.prompt_tokens;
    stats.completion_tokens += step.completion_tokens;
    stats.serial_virtual_ms += step.serial_ms;
    stats.list_virtual_ms += step.phase_ms[Phase::List as usize];
    stats.filter_virtual_ms += step.phase_ms[Phase::Filter as usize];
    stats.fetch_virtual_ms += step.phase_ms[Phase::Fetch as usize];
    stats.retries += step.retries;
    stats.timeouts += step.timeouts;
    stats.rate_limited += step.rate_limited;
    stats.breaker_fastfails += step.breaker_fastfails;
    stats.failed_cells += step.failed_cells;
}

/// Result of a key-listing scan: the keys plus the store bookkeeping
/// ([`KeyUniverse`]) needed to publish them — how many list prompts the
/// universe cost and whether the model was paged to exhaustion (vs the
/// iteration cap cutting the frontier short).
struct ScanOutcome {
    keys: Vec<String>,
    iterations: usize,
    exhausted: bool,
}

/// Folds one list page's raw values into `keys`/`seen` (cleaning each
/// surface and deduplicating case-insensitively, exactly like classic
/// paging). Returns `false` when the page contributed nothing new — the
/// universe is exhausted.
fn absorb_page(
    values: Vec<String>,
    keys: &mut Vec<String>,
    seen: &mut std::collections::HashSet<String>,
) -> bool {
    let mut got_new = false;
    for v in values {
        let cleaned = normalise_text(&v);
        if cleaned.is_empty() {
            continue;
        }
        if seen.insert(cleaned.to_ascii_lowercase()) {
            keys.push(cleaned);
            got_new = true;
        }
    }
    got_new
}

/// Materialises retrieved rows as a step's temporary table: same column
/// order as the stored schema, everything but the key nullable (unfetched
/// attributes are NULL). Rows whose key failed to clean are unusable and
/// dropped; duplicate keys (hallucinated repeats) are dropped silently —
/// the key-identifies-tuple assumption is enforced here.
fn materialise_step(step: &LlmScanStep, rows: Vec<Vec<Value>>) -> Result<Table> {
    let columns: Vec<Column> = step
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == step.key_index {
                Column::new(c.name.clone(), c.data_type)
            } else {
                Column::nullable(c.name.clone(), c.data_type)
            }
        })
        .collect();
    let schema = TableSchema::new(columns, &step.key_attr)
        .map_err(|e| GaloisError::Compile(format!("temp schema: {e}")))?;
    let mut table = Table::new(step.temp_name.clone(), schema);
    for row in rows {
        if row[step.key_index].is_null() {
            continue;
        }
        let _ = table.insert(row);
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Pipelined streaming retrieval (`Pipeline::Streaming`)
// ---------------------------------------------------------------------

impl Galois {
    /// Executes a compiled query with the streaming dataflow: all steps
    /// share one event-driven simulation ([`galois_llm::EventClock`])
    /// instead of barrier-separated waves. See [`Pipeline`] for the
    /// dataflow and its invariants.
    fn execute_compiled_streaming(&self, compiled: &CompiledQuery) -> Result<GaloisResult> {
        self.execute_compiled_streaming_traced(compiled)
            .map(|(result, _)| result)
    }

    /// [`Galois::execute_compiled_streaming`] plus the run's task trace —
    /// every scheduled task's `(release, duration, completion)` on the
    /// private clock, in fire order. The trace is what the cross-query
    /// replay ([`crate::multi`]) re-packs onto a shared lane pool.
    fn execute_compiled_streaming_traced(
        &self,
        compiled: &CompiledQuery,
    ) -> Result<(GaloisResult, Vec<TracedTask>)> {
        let started = Instant::now();
        let mut sim = StreamSim::new(self, compiled);
        sim.run();

        let mut stats = QueryStats::default();
        fold_step_stats(&mut stats, &sim.acc);
        stats.virtual_ms = sim.clock.makespan();
        let trace = sim.trace;
        let mut catalog = self.db.catalog().clone();
        for run in sim.steps {
            let rows: Vec<Vec<Value>> = run
                .slots
                .into_iter()
                .filter(|slot| slot.alive)
                .map(|slot| slot.row)
                .collect();
            let table = materialise_step(run.step, rows)?;
            stats.rows_retrieved += table.len();
            catalog
                .add_table(table)
                .map_err(|e| GaloisError::Compile(format!("temp table: {e}")))?;
        }

        let relation =
            galois_relational::execute(&compiled.plan, &catalog).map_err(GaloisError::from)?;
        stats.wall_ms = started.elapsed().as_millis() as u64;
        Ok((GaloisResult { relation, stats }, trace))
    }

    /// Executes one query through the streaming engine, returning the
    /// result plus the run's task trace for cross-query replay. Mirrors
    /// [`Galois::execute`] exactly (same planner paths, same calibration
    /// freeze); `EXPLAIN` statements return their plan relation with an
    /// empty trace. Requires [`Pipeline::Streaming`].
    pub(crate) fn execute_traced(&self, sql: &str) -> Result<(GaloisResult, Vec<TracedTask>)> {
        if !self.options.pipeline.is_streaming() {
            return Err(GaloisError::Unsupported(
                "cross-query scheduling requires Pipeline::Streaming (the wave dataflow \
                 has no task trace to replay)"
                    .to_string(),
            ));
        }
        let stmt = self.parse_statement(sql)?;
        if stmt.is_explain() {
            let params = self.planning_params();
            let planned = self.plan_statement(stmt.select(), &params)?;
            let text = planned.render(self.db.catalog(), &params);
            return Ok((
                GaloisResult {
                    relation: galois_relational::cost::explain_relation(&text),
                    stats: QueryStats::default(),
                },
                Vec::new(),
            ));
        }
        let compiled = match self.options.planner {
            Planner::Heuristic => {
                let plan = self
                    .db
                    .plan_statement(stmt.select())
                    .map_err(GaloisError::from)?;
                crate::compile::compile(&plan, self.db.catalog(), &self.options.compile)?
            }
            Planner::CostBased => {
                self.plan_statement(stmt.select(), &self.planning_params())?
                    .compiled
            }
        };
        self.execute_compiled_streaming_traced(&compiled)
    }
}

/// One scheduled task of a streaming run, as captured for cross-query
/// replay: when the private clock released it, how long it ran, and when
/// it completed. The completion times encode the query's internal
/// dataflow — a task whose release equals an earlier task's completion
/// was (conservatively) triggered by it, which is the dependency rule the
/// replay preserves (see [`crate::multi`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TracedTask {
    pub(crate) release: u64,
    pub(crate) duration: u64,
    pub(crate) completion: u64,
}

/// One retrieval cell of a streaming stage, by index into the step (the
/// borrowed [`BatchCell`] form is reconstructed on demand).
#[derive(Debug, Clone, Copy)]
enum StageCell {
    /// Index into `step.filter_conditions`.
    Filter(usize),
    /// `col` indexes `step.columns`; the stage sits at position
    /// `n_filters + ord` in the stage list.
    Fetch { col: usize },
    /// One attr-group of the grid protocol: the columns
    /// `step.fetch[start..start + len]`, fused into one prompt stream.
    /// Survivors fan out to per-group micro-batches instead of
    /// per-column ones.
    Grid { start: usize, len: usize },
}

/// One micro-batch accumulator of the streaming dataflow: a filter
/// condition or a fetched column of one step.
#[derive(Debug)]
struct StageState {
    cell: StageCell,
    /// Sub-entry signature prefixes of the stage's cells (empty when the
    /// multi-key protocol is off — plain single-key prompts bypass the
    /// sub-entry store, exactly like the wave pipeline). Single-cell
    /// stages use `[0]`; a grid stage holds one per attr ordinal.
    sig_prefixes: Vec<String>,
    /// Key slots accumulated towards the next micro-batch (always fewer
    /// than the fuse factor — full batches fire immediately).
    pending: Vec<usize>,
    /// Micro-batches and fallback re-asks in flight.
    inflight: usize,
    /// `(slot, attr ordinal)` cells already consumed at a grid stage —
    /// grid chunks carry keys with *some* cells still cached or
    /// re-delivered, and an answered cell must neither re-consume nor
    /// re-enter the fallback ladder (mirrors the wave path's
    /// `pending && answers.is_none()` guard). Unused at single-cell
    /// stages.
    answered: std::collections::HashSet<(usize, usize)>,
    /// True once the producing stage (list page stream, or the previous
    /// filter) can no longer deliver keys.
    upstream_drained: bool,
    /// True once this stage has seen its last key and answered it.
    drained: bool,
}

/// One discovered key of a step: its identity, whether it has survived
/// every filter verdict so far, and its materialising row.
#[derive(Debug)]
struct KeySlot {
    key: String,
    alive: bool,
    row: Vec<Value>,
}

/// Speculative list-paging state of one cold-concept step (store on):
/// offset pages in flight, their buffered answers, and the widening wave
/// ramp. See [`Galois::scan_keys_speculative`] for the protocol — the
/// stream version fires the same pages at the same iteration budget, with
/// a wave barrier (the next wave fires only when the current one has
/// fully landed) so stream and wave mode count iterations identically.
#[derive(Debug)]
struct SpecState {
    /// Raw value count of page 1 — the offset stride.
    page_est: usize,
    /// First offset of the next wave.
    next_offset: usize,
    /// Pages in the next wave (1, then doubling up to the lane count).
    width: usize,
    /// Pages of the current wave still in flight.
    inflight: usize,
    /// Landed pages of the current wave, keyed by offset so they apply
    /// in universe order regardless of completion order.
    buffered: std::collections::BTreeMap<usize, String>,
}

impl SpecState {
    fn new() -> Self {
        SpecState {
            page_est: 0,
            next_offset: 0,
            width: 1,
            inflight: 0,
            buffered: std::collections::BTreeMap::new(),
        }
    }
}

/// Per-step dataflow state of the streaming simulation.
struct StepRun<'a> {
    step: &'a LlmScanStep,
    /// Exclusion list rendered into each list iteration's prompt (shared
    /// behind an `Arc`, exactly like the wave scan).
    exclude: Arc<Vec<String>>,
    /// Case-folded dedup of discovered keys.
    seen: std::collections::HashSet<String>,
    /// List iterations fired so far.
    iterations: usize,
    /// Key slots in discovery order — rows materialise in this order, so
    /// streaming reproduces the wave pipeline's row order exactly.
    slots: Vec<KeySlot>,
    /// Filter stages (in conjunction order) followed by fetch stages.
    stages: Vec<StageState>,
    n_filters: usize,
    /// Key-universe store concept to publish at list finish (`None` when
    /// the store is off, or when the universe was served warm and needs
    /// no re-publish).
    concept: Option<String>,
    /// Whether the key stream ended by exhaustion (terminal page) rather
    /// than the iteration cap — the stored universe's `exhausted` flag.
    list_exhausted: bool,
    /// Guards the one-shot list-finish bookkeeping (publish).
    list_done: bool,
    /// Speculative paging state (cold concept with the store on).
    spec: Option<SpecState>,
}

/// What a fired task is: one list iteration, one speculative offset page,
/// one multi-key micro-batch, or one single-key prompt (a batched-mode
/// fallback re-ask, or the entire dataflow when batching is off).
#[derive(Debug)]
enum FireTarget {
    List,
    ListPage {
        offset: usize,
    },
    Chunk {
        stage: usize,
        members: Vec<usize>,
    },
    Single {
        stage: usize,
        member: usize,
    },
    /// Middle rung of the grid fallback ladder: the failed cells of one
    /// attr (ordinal `attr` of a grid stage) re-asked as a per-attribute
    /// key batch ([`TaskIntent::FetchAttrBatch`]).
    AttrChunk {
        stage: usize,
        attr: usize,
        members: Vec<usize>,
    },
    /// Bottom rung: one grid cell re-asked as a single-key prompt.
    GridSingle {
        stage: usize,
        attr: usize,
        member: usize,
    },
}

/// A task fired during event processing, executed and scheduled when the
/// event's processing completes.
struct Fire {
    step: usize,
    target: FireTarget,
}

/// A task-completion event of the simulation, ordered by `(time, seq)` so
/// simultaneous completions resolve in creation order — the simulation is
/// a pure function of the work, never of thread timing.
struct StreamEvent {
    time: u64,
    seq: u64,
    step: usize,
    target: FireTarget,
    completion: galois_llm::Completion,
}

impl PartialEq for StreamEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for StreamEvent {}
impl PartialOrd for StreamEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for StreamEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event-driven simulation driving one streaming query: a min-heap of
/// completion events, an [`EventClock`] assigning fired tasks to virtual
/// lanes, and per-step dataflow state.
///
/// Prompts are *executed* (against the real client, inline or across the
/// scheduler's worker threads) at fire time, because a task's virtual
/// duration — cache hit or model latency — is only known once it has run;
/// its parsed effects are then applied at its simulated completion time,
/// which is what releases downstream work.
struct StreamSim<'a> {
    session: &'a Galois,
    scheduler: Scheduler,
    clock: galois_llm::EventClock,
    events: std::collections::BinaryHeap<std::cmp::Reverse<StreamEvent>>,
    next_seq: u64,
    steps: Vec<StepRun<'a>>,
    acc: StepStats,
    /// Multi-key protocol on (mirrors `prompt_batch.is_on()`).
    batched: bool,
    /// Keys per micro-batch (`B`; 1 when batching is off).
    fuse: usize,
    /// LIMIT window size (`n + offset`) when early stop applies: the
    /// session enables [`EarlyStop::Limit`] *and* the residual plan is a
    /// plain window over this (single) step's scan
    /// ([`crate::compile::limit_hint`]). `None` runs to exhaustion.
    limit: Option<usize>,
    /// Per-slot "survived every filter verdict" flags of the sole step
    /// (only maintained when `limit` is set).
    confirmed: Vec<bool>,
    /// Count of `true` flags in `confirmed`.
    confirmed_total: usize,
    /// Every scheduled task's `(release, duration, completion)` in fire
    /// order — the replayable schedule cross-query mode re-packs onto a
    /// shared lane pool.
    trace: Vec<TracedTask>,
}

impl<'a> StreamSim<'a> {
    fn new(session: &'a Galois, compiled: &'a CompiledQuery) -> Self {
        let batched = session.options.prompt_batch.is_on();
        let grid = session.options.prompt_batch.is_grid();
        let attr_fuse = session.options.prompt_batch.attrs_per_prompt();
        let blank_stage = |cell| StageState {
            cell,
            sig_prefixes: Vec::new(),
            pending: Vec::new(),
            inflight: 0,
            answered: std::collections::HashSet::new(),
            upstream_drained: false,
            drained: false,
        };
        let steps = compiled
            .steps
            .iter()
            .map(|step| {
                let mut stages: Vec<StageState> = Vec::new();
                for i in 0..step.filter_conditions.len() {
                    stages.push(blank_stage(StageCell::Filter(i)));
                }
                if grid {
                    let n_cols = step.fetch.len();
                    let mut start = 0;
                    while start < n_cols {
                        let len = attr_fuse.min(n_cols - start);
                        stages.push(blank_stage(StageCell::Grid { start, len }));
                        start += len;
                    }
                } else {
                    for &col in &step.fetch {
                        stages.push(blank_stage(StageCell::Fetch { col }));
                    }
                }
                if batched {
                    for stage in &mut stages {
                        stage.sig_prefixes = match stage.cell {
                            // Group ordinals first, then the group's
                            // speculative pad columns — the same attr
                            // order the grid prompt renders.
                            StageCell::Grid { start, len } => step.fetch[start..start + len]
                                .iter()
                                .chain(grid_pad_columns(step, start, len, attr_fuse).iter())
                                .map(|&c| {
                                    session.cell_sig_prefix(
                                        step,
                                        &BatchCell::Fetch(&step.columns[c].name),
                                    )
                                })
                                .collect(),
                            cell => vec![session.cell_sig_prefix(step, &stage_cell(step, cell))],
                        };
                    }
                }
                StepRun {
                    step,
                    exclude: Arc::new(Vec::new()),
                    seen: std::collections::HashSet::new(),
                    iterations: 0,
                    slots: Vec::new(),
                    stages,
                    n_filters: step.filter_conditions.len(),
                    concept: None,
                    list_exhausted: false,
                    list_done: false,
                    spec: None,
                }
            })
            .collect();
        let limit = if session.options.early_stop.is_on() {
            crate::compile::limit_hint(compiled)
        } else {
            None
        };
        StreamSim {
            session,
            scheduler: Scheduler::new(session.options.parallelism),
            clock: galois_llm::EventClock::new(session.options.parallelism.get()),
            events: std::collections::BinaryHeap::new(),
            next_seq: 0,
            steps,
            acc: StepStats::default(),
            batched,
            fuse: session.options.prompt_batch.keys_per_prompt(),
            limit,
            confirmed: Vec::new(),
            confirmed_total: 0,
            trace: Vec::new(),
        }
    }

    // --- LIMIT-aware early termination -------------------------------

    /// True once the LIMIT window is covered by confirmed survivors —
    /// the signal that stops list paging. In-flight filter verdicts
    /// contribute nothing until they land, so coverage is never
    /// speculative.
    fn limit_covered(&self) -> bool {
        self.limit.is_some_and(|n| self.confirmed_total >= n)
    }

    /// Confirmed survivors among slots strictly before `slot` (discovery
    /// order). Rows materialise in slot order, so once `limit` earlier
    /// slots are confirmed, `slot` can never surface inside the window.
    fn prefix_confirmed(&self, slot: usize) -> usize {
        self.confirmed.iter().take(slot).filter(|&&c| c).count()
    }

    /// Marks one slot as having survived every filter verdict.
    fn confirm_survivor(&mut self, slot: usize) {
        if self.confirmed.len() <= slot {
            self.confirmed.resize(slot + 1, false);
        }
        if !self.confirmed[slot] {
            self.confirmed[slot] = true;
            self.confirmed_total += 1;
        }
    }

    /// Runs the simulation to quiescence: every step's key stream listed,
    /// filtered, fetched and drained.
    ///
    /// Each iteration resolves one virtual instant completely — every
    /// event carrying that timestamp is processed (in creation order)
    /// before anything fires, so simultaneous chunk completions pool
    /// their deliveries into the accumulators instead of fragmenting
    /// them. Only then does the idle-lane flush run: partial micro-batches
    /// held while lanes sit idle are pure latency, so idle capacity at the
    /// resolved instant releases them early.
    fn run(&mut self) {
        let mut fires = Vec::new();
        for s in 0..self.steps.len() {
            self.start_step(s, &mut fires);
        }
        self.execute_fires(0, fires);
        while let Some(std::cmp::Reverse(head)) = self.events.peek() {
            let t = head.time;
            let mut fires = Vec::new();
            while let Some(std::cmp::Reverse(head)) = self.events.peek() {
                if head.time != t {
                    break;
                }
                let std::cmp::Reverse(event) = self.events.pop().expect("peeked event");
                self.process(event, &mut fires);
            }
            self.execute_fires(t, fires);
            self.flush_idle(t);
        }
    }

    /// The "lane goes idle" micro-batch trigger: once an instant has fully
    /// resolved, any lane still free means held-back partial batches are
    /// serialising the tail for nothing — flush every accumulator (in
    /// step/stage order, deterministically). When a stage's whole input
    /// arrives at one instant (a single-page key stream feeding a
    /// pushed-down scan) this changes neither the prompt count nor the
    /// chunk membership; when input keeps arriving afterwards — later
    /// list pages, or survivors of a filter stage whose chunks complete
    /// at different instants — the flush may split a chunk that later
    /// input would have filled, trading extra partial-chunk prompts for
    /// latency. Never accuracy: every key still gets its answer.
    fn flush_idle(&mut self, t: u64) {
        if self.clock.idle_lanes(t) == 0 {
            return;
        }
        let mut fires = Vec::new();
        for s in 0..self.steps.len() {
            for g in 0..self.steps[s].stages.len() {
                if !self.steps[s].stages[g].pending.is_empty() {
                    let members = std::mem::take(&mut self.steps[s].stages[g].pending);
                    self.fire_chunk(s, g, members, &mut fires);
                }
            }
        }
        self.execute_fires(t, fires);
    }

    /// Starts one step's key stream at `t = 0`: classic list paging when
    /// the store is off; otherwise a warm universe is injected at zero
    /// prompt cost (its stored iterations billed as cache hits, exactly
    /// like the wave path), a partial frontier is injected and classic
    /// paging resumes after it, and a cold concept lists speculatively.
    fn start_step(&mut self, s: usize, fires: &mut Vec<Fire>) {
        let cap = self.session.options.max_list_iterations;
        if cap == 0 {
            self.finish_list(s, 0, fires);
            return;
        }
        let looked_up = self.session.list_store.as_ref().map(|store| {
            let concept = self.steps[s].step.concept_signature();
            let entry = store.read(&concept, &self.session.model_sig);
            (concept, entry)
        });
        let Some((concept, entry)) = looked_up else {
            self.fire_list(s, fires);
            return;
        };
        match entry {
            Some(stored) if stored.exhausted || stored.iterations >= cap => {
                self.acc.cache_hits += stored.iterations;
                self.absorb_stream_page(s, stored.keys, 0, fires);
                self.steps[s].iterations = stored.iterations;
                self.steps[s].list_exhausted = stored.exhausted;
                // Warm service re-publishes nothing: `concept` stays
                // `None`, so `finish_list` skips the store.
                self.finish_list(s, 0, fires);
            }
            Some(stored) => {
                self.acc.cache_hits += stored.iterations;
                self.absorb_stream_page(s, stored.keys, 0, fires);
                self.steps[s].iterations = stored.iterations;
                self.steps[s].concept = Some(concept);
                if self.limit_covered() {
                    self.finish_list(s, 0, fires);
                } else {
                    self.fire_list(s, fires);
                }
            }
            None => {
                self.steps[s].concept = Some(concept);
                self.steps[s].spec = Some(SpecState::new());
                self.fire_list(s, fires);
            }
        }
    }

    // --- firing ------------------------------------------------------

    fn fire_list(&mut self, s: usize, fires: &mut Vec<Fire>) {
        self.steps[s].iterations += 1;
        fires.push(Fire {
            step: s,
            target: FireTarget::List,
        });
    }

    /// Fires the next speculative page wave: offsets stride by the page
    /// estimate, the width ramps 1 → 2 → … up to the lane count (clamped
    /// by the remaining iteration budget). The probe wave is one page
    /// wide — the estimate may already be the whole universe.
    fn fire_spec_wave(&mut self, s: usize, fires: &mut Vec<Fire>) {
        let cap = self.session.options.max_list_iterations;
        let lanes = self.session.options.parallelism.get();
        let iterations = self.steps[s].iterations;
        let run = &mut self.steps[s];
        let spec = run.spec.as_mut().expect("spec wave outside spec mode");
        let width_now = spec.width.min(cap.saturating_sub(iterations)).max(1);
        for i in 0..width_now {
            fires.push(Fire {
                step: s,
                target: FireTarget::ListPage {
                    offset: spec.next_offset + i * spec.page_est,
                },
            });
        }
        spec.inflight += width_now;
        spec.next_offset += width_now * spec.page_est;
        spec.width = (spec.width * 2).min(lanes.max(1));
        run.iterations += width_now;
    }

    fn fire_chunk(&mut self, s: usize, stage: usize, members: Vec<usize>, fires: &mut Vec<Fire>) {
        self.steps[s].stages[stage].inflight += 1;
        let target = if self.batched {
            FireTarget::Chunk { stage, members }
        } else {
            debug_assert_eq!(members.len(), 1, "unbatched micro-batches hold one key");
            FireTarget::Single {
                stage,
                member: members[0],
            }
        };
        fires.push(Fire { step: s, target });
    }

    /// Fires a single-key fallback re-ask for one key of a batched cell.
    fn fire_fallback(&mut self, s: usize, stage: usize, member: usize, fires: &mut Vec<Fire>) {
        self.steps[s].stages[stage].inflight += 1;
        fires.push(Fire {
            step: s,
            target: FireTarget::Single { stage, member },
        });
    }

    /// Renders the prompt of one fired task (list prompts read the
    /// exclusion list at render time, which is exactly the state the
    /// firing event left behind).
    fn render_fire(&self, fire: &Fire) -> String {
        let run = &self.steps[fire.step];
        let builder = &self.session.prompt_builder;
        match &fire.target {
            FireTarget::List => builder.task(&TaskIntent::ListKeys {
                relation: run.step.table.clone(),
                key_attr: run.step.key_attr.clone(),
                condition: run.step.scan_condition.clone(),
                exclude: Arc::clone(&run.exclude),
            }),
            FireTarget::ListPage { offset } => builder.task(&TaskIntent::ListKeysPage {
                relation: run.step.table.clone(),
                key_attr: run.step.key_attr.clone(),
                condition: run.step.scan_condition.clone(),
                offset: *offset,
            }),
            FireTarget::Chunk { stage, members } => {
                let chunk_keys: Vec<String> =
                    members.iter().map(|&i| run.slots[i].key.clone()).collect();
                match run.stages[*stage].cell {
                    StageCell::Grid { start, len } => {
                        builder.task(&self.session.grid_intent(run.step, start, len, chunk_keys))
                    }
                    cell => {
                        let cell = stage_cell(run.step, cell);
                        builder.task(
                            &self
                                .session
                                .cell_batched_intent(run.step, &cell, chunk_keys),
                        )
                    }
                }
            }
            FireTarget::Single { stage, member } => {
                let cell = stage_cell(run.step, run.stages[*stage].cell);
                builder.task(&self.session.cell_single_intent(
                    run.step,
                    &cell,
                    &run.slots[*member].key,
                ))
            }
            FireTarget::AttrChunk {
                stage,
                attr,
                members,
            } => {
                let chunk_keys: Vec<String> =
                    members.iter().map(|&i| run.slots[i].key.clone()).collect();
                let cell = BatchCell::Fetch(grid_attr_name(run.step, &run.stages[*stage], *attr));
                builder.task(
                    &self
                        .session
                        .cell_batched_intent(run.step, &cell, chunk_keys),
                )
            }
            FireTarget::GridSingle {
                stage,
                attr,
                member,
            } => {
                let cell = BatchCell::Fetch(grid_attr_name(run.step, &run.stages[*stage], *attr));
                builder.task(&self.session.cell_single_intent(
                    run.step,
                    &cell,
                    &run.slots[*member].key,
                ))
            }
        }
    }

    fn fire_phase(&self, fire: &Fire) -> Phase {
        match &fire.target {
            FireTarget::List | FireTarget::ListPage { .. } => Phase::List,
            FireTarget::Chunk { stage, .. } | FireTarget::Single { stage, .. } => {
                match self.steps[fire.step].stages[*stage].cell {
                    StageCell::Filter(_) => Phase::Filter,
                    StageCell::Fetch { .. } | StageCell::Grid { .. } => Phase::Fetch,
                }
            }
            FireTarget::AttrChunk { .. } | FireTarget::GridSingle { .. } => Phase::Fetch,
        }
    }

    /// Executes one event's fired tasks against the client (across the
    /// real worker pool when there are several, consuming results in
    /// completion order), then assigns each task to a virtual lane with
    /// release time `t` — in fire order, so lane assignment is
    /// deterministic — and pushes its completion event.
    fn execute_fires(&mut self, t: u64, fires: Vec<Fire>) {
        if fires.is_empty() {
            return;
        }
        let prompts: Vec<String> = fires.iter().map(|f| self.render_fire(f)).collect();
        let client = &self.session.client;
        let mut outcomes: Vec<Option<BatchOutcome>> = Vec::new();
        outcomes.resize_with(prompts.len(), || None);
        if prompts.len() == 1 {
            outcomes[0] = Some(client.complete_outcome(&prompts[0]));
        } else {
            let units: Vec<_> = prompts
                .iter()
                .map(|prompt| move || client.complete_outcome(prompt))
                .collect();
            self.scheduler
                .run_wave_streaming(units, |i, outcome| outcomes[i] = Some(outcome));
        }
        for (fire, outcome) in fires.into_iter().zip(outcomes) {
            let outcome = outcome.expect("every fired task executed");
            let phase = self.fire_phase(&fire);
            match phase {
                Phase::List => self.acc.list_prompts += 1,
                Phase::Filter => self.acc.filter_prompts += 1,
                Phase::Fetch => self.acc.fetch_prompts += 1,
            }
            match &fire.target {
                // Multi-key-protocol prompts: key-level hits were
                // already billed by signature at sub-entry extraction
                // (see [`StepStats::absorb_keyed`]).
                FireTarget::Chunk { .. }
                | FireTarget::AttrChunk { .. }
                | FireTarget::GridSingle { .. } => self.acc.absorb_keyed(&outcome),
                FireTarget::Single { .. } if self.batched => self.acc.absorb_keyed(&outcome),
                _ => self.acc.absorb(&outcome),
            }
            self.acc.charge_phase(phase, outcome.virtual_ms);
            let done = self.clock.schedule(t, outcome.virtual_ms);
            self.trace.push(TracedTask {
                release: t,
                duration: outcome.virtual_ms,
                completion: done,
            });
            let completion = outcome
                .completions
                .into_iter()
                .next()
                .expect("one completion per prompt");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.events.push(std::cmp::Reverse(StreamEvent {
                time: done,
                seq,
                step: fire.step,
                target: fire.target,
                completion,
            }));
        }
    }

    // --- event processing --------------------------------------------

    fn process(&mut self, event: StreamEvent, fires: &mut Vec<Fire>) {
        let t = event.time;
        let s = event.step;
        match event.target {
            FireTarget::List => self.process_list(s, &event.completion.text, t, fires),
            FireTarget::ListPage { offset } => {
                let spec = self.steps[s]
                    .spec
                    .as_mut()
                    .expect("page completion outside spec mode");
                spec.inflight -= 1;
                spec.buffered.insert(offset, event.completion.text);
                // Wave barrier: pages apply (in offset order) only once
                // the whole wave has landed, so iteration counts match
                // the wave pipeline exactly.
                if spec.inflight == 0 {
                    self.spec_apply(s, t, fires);
                }
            }
            FireTarget::Chunk { stage, members } => {
                self.steps[s].stages[stage].inflight -= 1;
                if let StageCell::Grid { start, len } = self.steps[s].stages[stage].cell {
                    self.process_grid_chunk(
                        s,
                        stage,
                        start,
                        len,
                        &members,
                        &event.completion.text,
                        fires,
                    );
                    self.maybe_drain(s, stage, t, fires);
                    return;
                }
                let chunk_keys: Vec<String> = members
                    .iter()
                    .map(|&i| self.steps[s].slots[i].key.clone())
                    .collect();
                let subs = split_batched_answer(&event.completion.text, &chunk_keys);
                let mut sig = String::new();
                for (&slot, sub) in members.iter().zip(subs) {
                    match sub {
                        Some(answer) => {
                            {
                                let run = &self.steps[s];
                                self.session.client.store_sub_entry(
                                    sig_for_key(
                                        &mut sig,
                                        &run.stages[stage].sig_prefixes[0],
                                        &run.slots[slot].key,
                                    ),
                                    &answer,
                                );
                            }
                            self.consume_answer(s, stage, slot, &answer, t, fires);
                        }
                        // The model dropped or mangled this key's line:
                        // re-ask with the single-key prompt, chained after
                        // this batch (batching may cost prompts, never
                        // accuracy).
                        None => self.fire_fallback(s, stage, slot, fires),
                    }
                }
                self.maybe_drain(s, stage, t, fires);
            }
            FireTarget::Single { stage, member } => {
                self.steps[s].stages[stage].inflight -= 1;
                if self.batched {
                    let mut sig = String::new();
                    let run = &self.steps[s];
                    self.session.client.store_sub_entry(
                        sig_for_key(
                            &mut sig,
                            &run.stages[stage].sig_prefixes[0],
                            &run.slots[member].key,
                        ),
                        &event.completion.text,
                    );
                }
                self.consume_answer(s, stage, member, &event.completion.text, t, fires);
                self.maybe_drain(s, stage, t, fires);
            }
            FireTarget::AttrChunk {
                stage,
                attr,
                members,
            } => {
                self.steps[s].stages[stage].inflight -= 1;
                let StageCell::Grid { start, .. } = self.steps[s].stages[stage].cell else {
                    unreachable!("AttrChunk fires only at grid stages")
                };
                let chunk_keys: Vec<String> = members
                    .iter()
                    .map(|&i| self.steps[s].slots[i].key.clone())
                    .collect();
                let subs = split_batched_answer(&event.completion.text, &chunk_keys);
                let mut sig = String::new();
                for (&slot, sub) in members.iter().zip(subs) {
                    match sub {
                        Some(answer) => {
                            {
                                let run = &self.steps[s];
                                self.session.client.store_sub_entry(
                                    sig_for_key(
                                        &mut sig,
                                        &run.stages[stage].sig_prefixes[attr],
                                        &run.slots[slot].key,
                                    ),
                                    &answer,
                                );
                            }
                            self.steps[s].stages[stage].answered.insert((slot, attr));
                            let col = self.steps[s].step.fetch[start + attr];
                            self.consume_fetch_value(s, col, slot, &answer);
                        }
                        // Bottom rung: one single-key prompt per failed
                        // cell.
                        None => {
                            self.steps[s].stages[stage].inflight += 1;
                            fires.push(Fire {
                                step: s,
                                target: FireTarget::GridSingle {
                                    stage,
                                    attr,
                                    member: slot,
                                },
                            });
                        }
                    }
                }
                self.maybe_drain(s, stage, t, fires);
            }
            FireTarget::GridSingle {
                stage,
                attr,
                member,
            } => {
                self.steps[s].stages[stage].inflight -= 1;
                let StageCell::Grid { start, .. } = self.steps[s].stages[stage].cell else {
                    unreachable!("GridSingle fires only at grid stages")
                };
                {
                    let mut sig = String::new();
                    let run = &self.steps[s];
                    self.session.client.store_sub_entry(
                        sig_for_key(
                            &mut sig,
                            &run.stages[stage].sig_prefixes[attr],
                            &run.slots[member].key,
                        ),
                        &event.completion.text,
                    );
                }
                self.steps[s].stages[stage].answered.insert((member, attr));
                let col = self.steps[s].step.fetch[start + attr];
                self.consume_fetch_value(s, col, member, &event.completion.text);
                self.maybe_drain(s, stage, t, fires);
            }
        }
    }

    /// Applies one grid chunk's answer: every unanswered `(slot, attr)`
    /// cell consumes its parsed line, and each attr's failed cells re-ask
    /// together down the ladder's middle rung
    /// ([`FireTarget::AttrChunk`]).
    #[allow(clippy::too_many_arguments)]
    fn process_grid_chunk(
        &mut self,
        s: usize,
        stage: usize,
        start: usize,
        len: usize,
        members: &[usize],
        text: &str,
        fires: &mut Vec<Fire>,
    ) {
        let attr_fuse = self.session.options.prompt_batch.attrs_per_prompt();
        let (chunk_keys, attr_names): (Vec<String>, Vec<String>) = {
            let run = &self.steps[s];
            let pads = grid_pad_columns(run.step, start, len, attr_fuse);
            (
                members.iter().map(|&i| run.slots[i].key.clone()).collect(),
                (start..start + len)
                    .map(|ci| run.step.fetch[ci])
                    .chain(pads)
                    .map(|c| run.step.columns[c].name.clone())
                    .collect(),
            )
        };
        let mut cells = split_grid_answer(text, &chunk_keys, &attr_names);
        let mut sig = String::new();
        let mut failed: Vec<Vec<usize>> = vec![Vec::new(); len];
        for (ki, &slot) in members.iter().enumerate() {
            for (ord, failed_ord) in failed.iter_mut().enumerate() {
                if self.steps[s].stages[stage].answered.contains(&(slot, ord)) {
                    continue;
                }
                match cells[ki][ord].take() {
                    Some(answer) => {
                        {
                            let run = &self.steps[s];
                            self.session.client.store_sub_entry(
                                sig_for_key(
                                    &mut sig,
                                    &run.stages[stage].sig_prefixes[ord],
                                    &run.slots[slot].key,
                                ),
                                &answer,
                            );
                        }
                        self.steps[s].stages[stage].answered.insert((slot, ord));
                        let col = self.steps[s].step.fetch[start + ord];
                        self.consume_fetch_value(s, col, slot, &answer);
                    }
                    None => failed_ord.push(slot),
                }
            }
            // Speculative pad cells (attr ordinals past the group's own
            // `len`) only seed the sub-entry store for later queries —
            // no row consumption, no fallback for a dropped pad line.
            for (ord, cell) in cells[ki].iter_mut().enumerate().skip(len) {
                if let Some(answer) = cell.take() {
                    let run = &self.steps[s];
                    self.session.client.store_sub_entry(
                        sig_for_key(
                            &mut sig,
                            &run.stages[stage].sig_prefixes[ord],
                            &run.slots[slot].key,
                        ),
                        &answer,
                    );
                }
            }
        }
        for (ord, slots) in failed.into_iter().enumerate() {
            if !slots.is_empty() {
                self.steps[s].stages[stage].inflight += 1;
                fires.push(Fire {
                    step: s,
                    target: FireTarget::AttrChunk {
                        stage,
                        attr: ord,
                        members: slots,
                    },
                });
            }
        }
    }

    /// Applies one list iteration's answer: new keys enter the dataflow at
    /// time `t`, and either the next iteration fires or the key stream is
    /// finished (exhausted page, no new keys, or the iteration cap).
    fn process_list(&mut self, s: usize, text: &str, t: u64, fires: &mut Vec<Fire>) {
        if is_fault_text(text) {
            // A degraded list page ends the key stream *resumably*:
            // `list_exhausted` stays false, so the published universe is a
            // partial frontier a later query resumes — never a poisoned
            // "complete" listing.
            self.acc.failed_cells += 1;
            self.finish_list(s, t, fires);
            return;
        }
        match parse_list_answer(text) {
            ListAnswer::Exhausted => {
                self.steps[s].list_exhausted = true;
                self.finish_list(s, t, fires);
            }
            ListAnswer::Values(values) => {
                let raw = values.len();
                let added = self.absorb_stream_page(s, values, t, fires);
                if added == 0 {
                    self.steps[s].list_exhausted = true;
                    self.finish_list(s, t, fires);
                    return;
                }
                // LIMIT early stop: the window is covered by confirmed
                // survivors, so no further page can change the result.
                if self.limit_covered() {
                    self.finish_list(s, t, fires);
                    return;
                }
                // Speculative mode: page 1 just landed — its raw value
                // count is the page-size estimate, and offset probes
                // replace the exclusion-list chain.
                if let Some(spec) = self.steps[s].spec.as_mut() {
                    spec.page_est = raw;
                    spec.next_offset = raw;
                    if self.steps[s].iterations < self.session.options.max_list_iterations {
                        self.fire_spec_wave(s, fires);
                    } else {
                        self.finish_list(s, t, fires);
                    }
                    return;
                }
                if self.steps[s].iterations < self.session.options.max_list_iterations {
                    self.fire_list(s, fires);
                } else {
                    self.finish_list(s, t, fires);
                }
            }
        }
    }

    /// Folds one page of raw key surfaces into the step's stream (clean,
    /// case-folded dedup, key slot, dataflow entry at `t` — identical to
    /// classic page handling), returning how many new keys entered.
    fn absorb_stream_page(
        &mut self,
        s: usize,
        values: Vec<String>,
        t: u64,
        fires: &mut Vec<Fire>,
    ) -> usize {
        let session = self.session;
        let mut new_slots = Vec::new();
        {
            let run = &mut self.steps[s];
            let arity = run.step.columns.len();
            let fresh = Arc::make_mut(&mut run.exclude);
            for v in values {
                let cleaned = normalise_text(&v);
                if cleaned.is_empty() {
                    continue;
                }
                if run.seen.insert(cleaned.to_ascii_lowercase()) {
                    fresh.push(cleaned.clone());
                    let mut row = vec![Value::Null; arity];
                    row[run.step.key_index] = clean_to_type(
                        &cleaned,
                        run.step.columns[run.step.key_index].data_type,
                        &session.options.cleaning,
                    )
                    .unwrap_or(Value::Null);
                    new_slots.push(run.slots.len());
                    run.slots.push(KeySlot {
                        key: cleaned,
                        alive: true,
                        row,
                    });
                }
            }
        }
        for &slot in &new_slots {
            self.enter_dataflow(s, slot, t, fires);
        }
        new_slots.len()
    }

    /// Applies a fully-landed speculative wave in offset order: each page
    /// feeds the dataflow at `t`; the first exhausted page, short page or
    /// page with nothing new ends the universe (pages fired past it are
    /// waste — already billed as iterations, exactly like the wave
    /// pipeline). Otherwise the next wave fires, or the iteration cap
    /// leaves a partial frontier.
    fn spec_apply(&mut self, s: usize, t: u64, fires: &mut Vec<Fire>) {
        let pages: Vec<(usize, String)> = {
            let spec = self.steps[s].spec.as_mut().expect("spec wave landed");
            std::mem::take(&mut spec.buffered).into_iter().collect()
        };
        let mut terminal = false;
        let mut faulted = false;
        for (_, text) in pages {
            if terminal || faulted {
                break;
            }
            if is_fault_text(&text) {
                // A degraded page ends the ramp resumably (pages fired
                // past it are waste, like any speculative overshoot).
                self.acc.failed_cells += 1;
                faulted = true;
                continue;
            }
            match parse_list_answer(&text) {
                ListAnswer::Exhausted => terminal = true,
                ListAnswer::Values(values) => {
                    let raw = values.len();
                    let added = self.absorb_stream_page(s, values, t, fires);
                    let page_est = self.steps[s].spec.as_ref().expect("spec mode").page_est;
                    if added == 0 || raw < page_est {
                        terminal = true;
                    }
                }
            }
        }
        if terminal {
            self.steps[s].list_exhausted = true;
            self.finish_list(s, t, fires);
        } else if faulted
            || self.steps[s].iterations >= self.session.options.max_list_iterations
            || self.limit_covered()
        {
            self.finish_list(s, t, fires);
        } else {
            self.fire_spec_wave(s, fires);
        }
    }

    /// Routes a freshly-listed key into the first stage of the step's
    /// dataflow (first filter condition; fetch stages when there is none).
    fn enter_dataflow(&mut self, s: usize, slot: usize, t: u64, fires: &mut Vec<Fire>) {
        if let Some(n) = self.limit {
            if self.prefix_confirmed(slot) >= n {
                // The window is already covered by earlier confirmed
                // survivors, so this key can never surface — prune it
                // before any filter or fetch prompt is issued.
                self.steps[s].slots[slot].alive = false;
                return;
            }
        }
        if self.steps[s].n_filters > 0 {
            self.deliver(s, 0, slot, t, fires);
        } else {
            if self.limit.is_some() {
                self.confirm_survivor(slot);
            }
            for g in 0..self.steps[s].stages.len() {
                self.deliver(s, g, slot, t, fires);
            }
        }
    }

    /// Routes a key that survived filter stage `g` downstream: into the
    /// next condition, or — past the last condition — fanning out into
    /// every fetch stage.
    fn route_survivor(&mut self, s: usize, g: usize, slot: usize, t: u64, fires: &mut Vec<Fire>) {
        let n_filters = self.steps[s].n_filters;
        if g + 1 < n_filters {
            self.deliver(s, g + 1, slot, t, fires);
        } else {
            if let Some(n) = self.limit {
                self.confirm_survivor(slot);
                if self.prefix_confirmed(slot) >= n {
                    // Beyond the window: every verdict landed (the key
                    // stays alive) but its row can never surface, so its
                    // fetch prompts are never issued.
                    return;
                }
            }
            for fg in n_filters..self.steps[s].stages.len() {
                self.deliver(s, fg, slot, t, fires);
            }
        }
    }

    /// A key arrives at a stage at time `t`: sub-entry extraction first
    /// (batched mode), otherwise into the accumulator — which fires the
    /// moment it holds a full micro-batch.
    fn deliver(&mut self, s: usize, g: usize, slot: usize, t: u64, fires: &mut Vec<Fire>) {
        if let StageCell::Grid { start, len } = self.steps[s].stages[g].cell {
            return self.deliver_grid(s, g, start, len, slot, fires);
        }
        if self.batched {
            let extracted = {
                let run = &self.steps[s];
                let mut sig = String::new();
                self.session.client.extract_sub_entry(sig_for_key(
                    &mut sig,
                    &run.stages[g].sig_prefixes[0],
                    &run.slots[slot].key,
                ))
            };
            match extracted {
                SubEntryLookup::Hit(answer) => {
                    self.acc.cache_hits += 1;
                    self.consume_answer(s, g, slot, &answer, t, fires);
                    return;
                }
                // Counted as a hit, but re-asked locally — the sim loop
                // must never park a key waiting on another thread.
                SubEntryLookup::InFlight => self.acc.cache_hits += 1,
                SubEntryLookup::Miss => {}
            }
        }
        let fuse = self.fuse;
        let stage = &mut self.steps[s].stages[g];
        stage.pending.push(slot);
        if stage.pending.len() >= fuse {
            let members = std::mem::take(&mut stage.pending);
            self.fire_chunk(s, g, members, fires);
        }
    }

    /// A key arrives at a grid stage: every cell of the attr-group runs
    /// sub-entry extraction, and the key joins the group's accumulator
    /// when *any* cell is still missing (already-answered cells are
    /// skipped at parse time — grid prompts always ask the whole group,
    /// so their strings stay chunk-membership-deterministic).
    fn deliver_grid(
        &mut self,
        s: usize,
        g: usize,
        start: usize,
        len: usize,
        slot: usize,
        fires: &mut Vec<Fire>,
    ) {
        let mut missing = false;
        for ord in 0..len {
            if self.steps[s].stages[g].answered.contains(&(slot, ord)) {
                continue;
            }
            let extracted = {
                let run = &self.steps[s];
                let mut sig = String::new();
                self.session.client.extract_sub_entry(sig_for_key(
                    &mut sig,
                    &run.stages[g].sig_prefixes[ord],
                    &run.slots[slot].key,
                ))
            };
            match extracted {
                SubEntryLookup::Hit(answer) => {
                    self.acc.cache_hits += 1;
                    self.steps[s].stages[g].answered.insert((slot, ord));
                    let col = self.steps[s].step.fetch[start + ord];
                    self.consume_fetch_value(s, col, slot, &answer);
                }
                SubEntryLookup::InFlight => {
                    self.acc.cache_hits += 1;
                    missing = true;
                }
                SubEntryLookup::Miss => missing = true,
            }
        }
        if !missing {
            return;
        }
        let fuse = self.fuse;
        let stage = &mut self.steps[s].stages[g];
        stage.pending.push(slot);
        if stage.pending.len() >= fuse {
            let members = std::mem::take(&mut stage.pending);
            self.fire_chunk(s, g, members, fires);
        }
    }

    /// Applies one key's answer at a stage: a filter verdict routes the
    /// key onward or kills it (an unparseable verdict keeps the tuple out,
    /// exactly like the wave pipeline); a fetch answer lands in the key's
    /// row.
    fn consume_answer(
        &mut self,
        s: usize,
        g: usize,
        slot: usize,
        answer: &str,
        t: u64,
        fires: &mut Vec<Fire>,
    ) {
        match self.steps[s].stages[g].cell {
            StageCell::Filter(_) => {
                if is_fault_text(answer) {
                    // A degraded verdict keeps the tuple out, like any
                    // unparseable one, but is counted as a failed cell.
                    self.acc.failed_cells += 1;
                    self.steps[s].slots[slot].alive = false;
                } else if parse_boolean_answer(answer).unwrap_or(false) {
                    self.route_survivor(s, g, slot, t, fires);
                } else {
                    self.steps[s].slots[slot].alive = false;
                }
            }
            StageCell::Fetch { col } => self.consume_fetch_value(s, col, slot, answer),
            StageCell::Grid { .. } => {
                unreachable!("grid cells consume through consume_fetch_value directly")
            }
        }
    }

    /// Lands one fetch answer in a key's materialising row (shared by the
    /// per-column and grid stages).
    fn consume_fetch_value(&mut self, s: usize, col: usize, slot: usize, answer: &str) {
        if is_fault_text(answer) {
            // A degraded fetch annotates the cell as Null.
            self.acc.failed_cells += 1;
            self.steps[s].slots[slot].row[col] = Value::Null;
            return;
        }
        let value = {
            let run = &self.steps[s];
            let column = &run.step.columns[col];
            parse_value_answer(answer)
                .and_then(|raw| {
                    clean_to_type(&raw, column.data_type, &self.session.options.cleaning)
                })
                .map(|v| match v {
                    Value::Text(x) => Value::Text(normalise_text(&x)),
                    other => other,
                })
                .unwrap_or(Value::Null)
        };
        self.steps[s].slots[slot].row[col] = value;
    }

    // --- drain propagation -------------------------------------------

    /// The step's key stream is finished: no further list page can deliver
    /// keys, so the universe publishes to the key-universe store (when one
    /// is attached and the universe wasn't served warm), the first stages'
    /// accumulators flush and drain propagation begins.
    fn finish_list(&mut self, s: usize, t: u64, fires: &mut Vec<Fire>) {
        if !self.steps[s].list_done {
            self.steps[s].list_done = true;
            if let Some(concept) = self.steps[s].concept.take() {
                if let Some(store) = &self.session.list_store {
                    let run = &self.steps[s];
                    store.publish(
                        &concept,
                        &self.session.model_sig,
                        KeyUniverse {
                            keys: (*run.exclude).clone(),
                            iterations: run.iterations,
                            exhausted: run.list_exhausted,
                        },
                    );
                }
            }
        }
        if self.steps[s].n_filters > 0 {
            self.stage_upstream_drained(s, 0, t, fires);
        } else {
            for g in 0..self.steps[s].stages.len() {
                self.stage_upstream_drained(s, g, t, fires);
            }
        }
    }

    /// The stage's producer can deliver no further keys: flush the partial
    /// micro-batch (the "lane would idle forever" trigger) and drain if
    /// nothing is left in flight.
    fn stage_upstream_drained(&mut self, s: usize, g: usize, t: u64, fires: &mut Vec<Fire>) {
        self.steps[s].stages[g].upstream_drained = true;
        if !self.steps[s].stages[g].pending.is_empty() {
            let members = std::mem::take(&mut self.steps[s].stages[g].pending);
            self.fire_chunk(s, g, members, fires);
        }
        self.maybe_drain(s, g, t, fires);
    }

    /// Marks a stage drained once its upstream is finished and its own
    /// work has all landed, then propagates downstream.
    fn maybe_drain(&mut self, s: usize, g: usize, t: u64, fires: &mut Vec<Fire>) {
        {
            let stage = &self.steps[s].stages[g];
            if stage.drained
                || !stage.upstream_drained
                || stage.inflight > 0
                || !stage.pending.is_empty()
            {
                return;
            }
        }
        self.steps[s].stages[g].drained = true;
        let n_filters = self.steps[s].n_filters;
        if g + 1 < n_filters {
            self.stage_upstream_drained(s, g + 1, t, fires);
        } else if g < n_filters {
            for fg in n_filters..self.steps[s].stages.len() {
                self.stage_upstream_drained(s, fg, t, fires);
            }
        }
        // Fetch stages are the dataflow's sinks: nothing downstream.
    }
}

/// Reconstructs the borrowed cell form from a stage's indices.
fn stage_cell(step: &LlmScanStep, cell: StageCell) -> BatchCell<'_> {
    match cell {
        StageCell::Filter(i) => BatchCell::Filter(&step.filter_conditions[i]),
        StageCell::Fetch { col } => BatchCell::Fetch(&step.columns[col].name),
        StageCell::Grid { .. } => {
            unreachable!("grid stages render through their grid-aware call sites")
        }
    }
}

/// The column name of one attr ordinal of a grid stage.
fn grid_attr_name<'a>(step: &'a LlmScanStep, stage: &StageState, attr: usize) -> &'a str {
    let StageCell::Grid { start, .. } = stage.cell else {
        unreachable!("attr ordinals exist only at grid stages")
    };
    &step.columns[step.fetch[start + attr]].name
}

/// Speculative fill of a grid attr-group's spare width: when the group is
/// the step's *last* (the only one that can be narrower than `A`), the
/// remaining attribute slots are padded with the relation's other columns
/// — schema order, key and already-fetched columns excluded. The padded
/// cells ride along in the same prompt (the group count, and so the
/// prompt count, is untouched), are stored as per-(key, attr) sub-entries
/// for later queries to extract, and never feed rows or the fallback
/// ladder: a dropped pad line is simply not stored. This is the fetch
/// phase's analogue of the key-universe store's speculative paging — it
/// is what lets a suite of narrow queries amortise one table's attribute
/// surface across a handful of grid prompts instead of paying
/// `ceil(keys/B)` prompts per newly-touched column.
///
/// Returns column indices into `step.columns`; empty for every non-last
/// or already-full group (so `A = 1` stays the exact key-batched base
/// case).
fn grid_pad_columns(step: &LlmScanStep, start: usize, len: usize, attr_fuse: usize) -> Vec<usize> {
    if start + len < step.fetch.len() || len >= attr_fuse {
        return Vec::new();
    }
    (0..step.columns.len())
        .filter(|&c| c != step.key_index && !step.fetch.contains(&c))
        .take(attr_fuse - len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_dataset::Scenario;
    use galois_llm::{ModelProfile, SimLlm};

    fn oracle_session() -> (Scenario, Galois) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::new(model, s.database.clone());
        (s, g)
    }

    fn oracle_session_parallel(lanes: usize) -> (Scenario, Galois) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                parallelism: Parallelism::new(lanes),
                ..Default::default()
            },
        );
        (s, g)
    }

    #[test]
    fn oracle_selection_matches_ground_truth() {
        let (s, g) = oracle_session();
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        let mut a: Vec<String> = truth.rows.iter().map(|r| r[0].render()).collect();
        let mut b: Vec<String> = got.relation.rows.iter().map(|r| r[0].render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(got.stats.total_prompts() > 0);
    }

    #[test]
    fn oracle_projection_values_match() {
        let (s, g) = oracle_session();
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        let key = |r: &Vec<Value>| (r[0].render(), r[1].render());
        let mut a: Vec<_> = truth.rows.iter().map(key).collect();
        let mut b: Vec<_> = got.relation.rows.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_aggregate_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT COUNT(*) FROM city";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.rows, got.relation.rows);
    }

    #[test]
    fn oracle_group_by_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY continent";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.rows, got.relation.rows);
    }

    #[test]
    fn oracle_join_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.len(), got.relation.len());
    }

    #[test]
    fn hybrid_query_mixes_llm_and_db() {
        let (s, g) = oracle_session();
        // employees live only in the DB; country GDP comes from the LLM.
        let sql = "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                   FROM DB.employees e, LLM.country k \
                   WHERE e.countryCode = k.code \
                   GROUP BY e.countryCode ORDER BY e.countryCode";
        let got = g.execute(sql).unwrap();
        assert!(!got.relation.is_empty());
        // Ground truth: the same query entirely inside the DB.
        let truth = s
            .database
            .execute(
                "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                 FROM employees e, country k WHERE e.countryCode = k.code \
                 GROUP BY e.countryCode ORDER BY e.countryCode",
            )
            .unwrap();
        assert_eq!(truth.len(), got.relation.len());
    }

    #[test]
    fn noisy_model_misses_rows() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::flan()));
        let g = Galois::new(model, s.database.clone());
        let sql = "SELECT name FROM city";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert!(
            got.relation.len() < truth.len(),
            "flan returned {} of {}",
            got.relation.len(),
            truth.len()
        );
    }

    #[test]
    fn stats_count_prompt_kinds() {
        let (_, g) = oracle_session();
        let got = g
            .execute("SELECT name, population FROM city WHERE elevation < 100")
            .unwrap();
        assert!(got.stats.list_prompts >= 1);
        assert!(got.stats.filter_prompts > 0);
        assert!(got.stats.fetch_prompts > 0);
        assert!(got.stats.virtual_ms > 0);
    }

    #[test]
    fn sequential_serial_and_virtual_clocks_agree() {
        let (_, g) = oracle_session();
        let got = g
            .execute("SELECT name, population FROM city WHERE elevation < 100")
            .unwrap();
        assert_eq!(got.stats.virtual_ms, got.stats.serial_virtual_ms);
        assert!((got.stats.virtual_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_run_matches_sequential_results_and_counts() {
        let sql = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let (_, seq) = oracle_session_parallel(1);
        let base = seq.execute(sql).unwrap();
        for lanes in [2, 8] {
            let (_, par) = oracle_session_parallel(lanes);
            let got = par.execute(sql).unwrap();
            assert_eq!(got.relation.rows, base.relation.rows, "lanes {lanes}");
            assert_eq!(
                got.stats.total_prompts(),
                base.stats.total_prompts(),
                "lanes {lanes}"
            );
            assert_eq!(got.stats.cache_hits, base.stats.cache_hits, "lanes {lanes}");
            assert_eq!(
                got.stats.serial_virtual_ms, base.stats.serial_virtual_ms,
                "lanes {lanes}"
            );
            // Lanes can only shorten the virtual clock.
            assert!(
                got.stats.virtual_ms <= base.stats.virtual_ms,
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn parallel_join_is_virtually_faster() {
        let sql = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let (_, seq) = oracle_session_parallel(1);
        let (_, par) = oracle_session_parallel(8);
        let a = seq.execute(sql).unwrap();
        let b = par.execute(sql).unwrap();
        assert!(
            b.stats.virtual_ms * 2 <= a.stats.virtual_ms,
            "expected ≥2× on a two-step join: {} vs {}",
            a.stats.virtual_ms,
            b.stats.virtual_ms
        );
        assert!(b.stats.virtual_speedup() >= 2.0);
        assert!(b.stats.lane_utilisation(8) <= 1.0 + 1e-12);
    }

    #[test]
    fn explain_shows_llm_steps() {
        let (_, g) = oracle_session();
        let text = g
            .explain("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert!(text.contains("[LLM step 1] scan city"));
        assert!(text.contains("planner: heuristic"));
        assert!(text.contains("cost: keys≈"));
        assert!(text.contains("[relational plan]"));
    }

    #[test]
    fn explain_reports_the_early_stop_window_for_limit_sessions() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let sql = "SELECT name FROM city LIMIT 5 OFFSET 2";
        let (_, plain) = oracle_session();
        assert!(
            !plain.explain(sql).unwrap().contains("limit:"),
            "default sessions keep the pre-limit report"
        );
        let g = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                early_stop: EarlyStop::Limit,
                ..Default::default()
            },
        );
        assert!(g
            .explain(sql)
            .unwrap()
            .contains("limit: early-stop after ~7 keys"));
        // Ineligible plan shapes stay tag-free even on a limit session.
        assert!(!g
            .explain("SELECT name FROM city ORDER BY population LIMIT 5")
            .unwrap()
            .contains("limit:"));
    }

    #[test]
    fn explain_statement_returns_query_plan_relation() {
        let (_, g) = oracle_session();
        let got = g
            .execute("EXPLAIN SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert_eq!(got.stats.total_prompts(), 0, "EXPLAIN must not prompt");
        assert_eq!(got.relation.schema.columns[0].name, "QUERY PLAN");
        let text: Vec<String> = got.relation.rows.iter().map(|r| r[0].render()).collect();
        assert!(text.iter().any(|l| l.contains("[LLM step 1] scan city")));
        assert!(text.iter().any(|l| l.contains("virtual≈")));
    }

    #[test]
    fn planner_calibration_is_frozen_until_recalibrated() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                planner: Planner::CostBased,
                ..Default::default()
            },
        );
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let before = g.explain(sql).unwrap();
        // Executing queries mutates the client stats, but the frozen
        // snapshot keeps the planner's choice (and report) stable.
        g.execute(sql).unwrap();
        assert_eq!(g.explain(sql).unwrap(), before);
        // The live reading has moved; re-freezing adopts it.
        assert_ne!(g.planner_params().prompt_latency_ms, {
            let d = crate::plan_choice::PlannerParams::default();
            d.prompt_latency_ms
        });
        g.recalibrate_planner();
        assert_ne!(g.explain(sql).unwrap(), before);
    }

    #[test]
    fn cost_based_planner_preserves_results_with_fewer_prompts() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let heuristic = Galois::new(model.clone(), s.database.clone());
        let cost_based = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                planner: Planner::CostBased,
                ..Default::default()
            },
        );
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let a = heuristic.execute(sql).unwrap();
        cost_based.client().clear_cache();
        let b = cost_based.execute(sql).unwrap();
        let sort = |rel: &Relation| {
            let mut rows: Vec<Vec<String>> = rel
                .rows
                .iter()
                .map(|r| r.iter().map(Value::render).collect())
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(sort(&a.relation), sort(&b.relation));
        assert!(
            b.stats.total_prompts() < a.stats.total_prompts(),
            "cost-based {} vs heuristic {}",
            b.stats.total_prompts(),
            a.stats.total_prompts()
        );
        assert!(b.stats.virtual_ms < a.stats.virtual_ms);
    }

    fn oracle_session_batched(batch: PromptBatch) -> (Scenario, Galois) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                prompt_batch: batch,
                ..Default::default()
            },
        );
        (s, g)
    }

    #[test]
    fn batched_mode_matches_off_relations_with_fewer_prompts() {
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let (_, off) = oracle_session_batched(PromptBatch::Off);
        let a = off.execute(sql).unwrap();
        let (_, batched) = oracle_session_batched(PromptBatch::Keys(10));
        let b = batched.execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert!(
            b.stats.total_prompts() < a.stats.total_prompts(),
            "batched {} vs off {}",
            b.stats.total_prompts(),
            a.stats.total_prompts()
        );
        assert!(
            b.stats.virtual_ms < a.stats.virtual_ms,
            "batched {} vs off {} virtual ms",
            b.stats.virtual_ms,
            a.stats.virtual_ms
        );
        // No fallback on the oracle: ceil(keys / B) prompts per cell.
        assert!(b.stats.filter_prompts < a.stats.filter_prompts);
        assert!(b.stats.fetch_prompts < a.stats.fetch_prompts);
    }

    #[test]
    fn batched_joins_and_aggregates_match_off() {
        for sql in [
            "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name",
            "SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY continent",
        ] {
            let (_, off) = oracle_session_batched(PromptBatch::Off);
            let (_, batched) = oracle_session_batched(PromptBatch::Keys(5));
            let a = off.execute(sql).unwrap();
            let b = batched.execute(sql).unwrap();
            assert_eq!(a.relation.rows, b.relation.rows, "{sql}");
        }
    }

    #[test]
    fn batch_of_one_matches_off_relations() {
        // Keys(1): the multi-key protocol at its ablation base case — same
        // prompt *count* economics as Off, different prompt text.
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let (_, off) = oracle_session_batched(PromptBatch::Off);
        let (_, one) = oracle_session_batched(PromptBatch::Keys(1));
        let a = off.execute(sql).unwrap();
        let b = one.execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert_eq!(a.stats.total_prompts(), b.stats.total_prompts());
    }

    #[test]
    fn sub_entries_serve_repeat_queries_without_new_prompts() {
        let (_, g) = oracle_session_batched(PromptBatch::Keys(10));
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let first = g.execute(sql).unwrap();
        assert!(first.stats.filter_prompts > 0 && first.stats.fetch_prompts > 0);
        // A second run re-lists keys (raw prompt-cache hits), but every
        // filter/fetch key is served from per-key sub-entries: zero
        // batched prompts, zero fallbacks — chunk boundaries can no longer
        // even matter.
        let second = g.execute(sql).unwrap();
        assert_eq!(first.relation.rows, second.relation.rows);
        assert_eq!(second.stats.filter_prompts, 0);
        assert_eq!(second.stats.fetch_prompts, 0);
        assert!(second.stats.cache_hits > 0);
        assert!(second.stats.virtual_ms < first.stats.virtual_ms);
    }

    #[test]
    fn batched_mode_is_deterministic_across_lane_counts() {
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let base = {
            let s = Scenario::generate(42);
            let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
            Galois::with_options(
                model,
                s.database.clone(),
                GaloisOptions {
                    prompt_batch: PromptBatch::Keys(10),
                    ..Default::default()
                },
            )
            .execute(sql)
            .unwrap()
        };
        for lanes in [2usize, 8] {
            let s = Scenario::generate(42);
            let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
            let got = Galois::with_options(
                model,
                s.database.clone(),
                GaloisOptions {
                    prompt_batch: PromptBatch::Keys(10),
                    parallelism: Parallelism::new(lanes),
                    ..Default::default()
                },
            )
            .execute(sql)
            .unwrap();
            assert_eq!(got.relation.rows, base.relation.rows, "lanes {lanes}");
            assert_eq!(
                got.stats.total_prompts(),
                base.stats.total_prompts(),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn grid_mode_matches_off_relations_with_fewer_fetch_prompts() {
        let sql = "SELECT name, population, country FROM city WHERE elevation < 100";
        let (_, off) = oracle_session_batched(PromptBatch::Off);
        let a = off.execute(sql).unwrap();
        let (_, keys) = oracle_session_batched(PromptBatch::Keys(10));
        let b = keys.execute(sql).unwrap();
        let (_, grid) = oracle_session_batched(PromptBatch::Grid { keys: 10, attrs: 4 });
        let c = grid.execute(sql).unwrap();
        assert_eq!(a.relation.rows, c.relation.rows);
        // No fallback on the oracle: the attr-groups fuse the fetch
        // streams, ⌈C/A⌉ × ⌈keys/B⌉ prompts instead of C × ⌈keys/B⌉.
        assert!(
            c.stats.fetch_prompts < b.stats.fetch_prompts,
            "grid {} vs keys-only {}",
            c.stats.fetch_prompts,
            b.stats.fetch_prompts
        );
        assert!(c.stats.total_prompts() < b.stats.total_prompts());
        // The filter phase is untouched by attr fusion.
        assert_eq!(c.stats.filter_prompts, b.stats.filter_prompts);
    }

    #[test]
    fn grid_of_one_attr_matches_keys_batched_counts() {
        // Grid{B, 1}: the grid protocol at its ablation base case — one
        // attribute per prompt, same prompt-count economics as Keys(B),
        // different prompt text.
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let (_, keys) = oracle_session_batched(PromptBatch::Keys(10));
        let a = keys.execute(sql).unwrap();
        let (_, grid) = oracle_session_batched(PromptBatch::Grid { keys: 10, attrs: 1 });
        let b = grid.execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert_eq!(a.stats.total_prompts(), b.stats.total_prompts());
        assert_eq!(a.stats.fetch_prompts, b.stats.fetch_prompts);
    }

    #[test]
    fn grid_repeat_queries_are_served_from_sub_entries() {
        let (_, g) = oracle_session_batched(PromptBatch::Grid { keys: 10, attrs: 4 });
        let sql = "SELECT name, population, country FROM city WHERE elevation < 100";
        let first = g.execute(sql).unwrap();
        assert!(first.stats.fetch_prompts > 0);
        // Grid answers were stored per (key, attr): the repeat run's
        // fetch phase resolves entirely at sub-entry extraction.
        let second = g.execute(sql).unwrap();
        assert_eq!(first.relation.rows, second.relation.rows);
        assert_eq!(second.stats.filter_prompts, 0);
        assert_eq!(second.stats.fetch_prompts, 0);
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn grid_mode_is_deterministic_across_lane_counts() {
        let sql = "SELECT name, population, country FROM city WHERE elevation < 100";
        let run = |lanes: usize| {
            let s = Scenario::generate(42);
            let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
            Galois::with_options(
                model,
                s.database.clone(),
                GaloisOptions {
                    prompt_batch: PromptBatch::Grid { keys: 10, attrs: 2 },
                    parallelism: Parallelism::new(lanes),
                    ..Default::default()
                },
            )
            .execute(sql)
            .unwrap()
        };
        let base = run(1);
        for lanes in [2usize, 8] {
            let got = run(lanes);
            assert_eq!(got.relation.rows, base.relation.rows, "lanes {lanes}");
            assert_eq!(
                got.stats.total_prompts(),
                base.stats.total_prompts(),
                "lanes {lanes}"
            );
        }
    }

    fn oracle_session_pipelined(pipeline: Pipeline, lanes: usize) -> (Scenario, Galois) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                pipeline,
                prompt_batch: PromptBatch::Keys(10),
                parallelism: Parallelism::new(lanes),
                ..Default::default()
            },
        );
        (s, g)
    }

    #[test]
    fn streaming_beats_the_wave_clock_with_lanes() {
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let (_, wave) = oracle_session_pipelined(Pipeline::Off, 8);
        let (_, stream) = oracle_session_pipelined(Pipeline::Streaming, 8);
        let a = wave.execute(sql).unwrap();
        let b = stream.execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert_eq!(a.stats.total_prompts(), b.stats.total_prompts());
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits);
        // The fetch micro-batches hide behind the exhausted-page check
        // instead of waiting at the phase barrier.
        assert!(
            b.stats.virtual_ms < a.stats.virtual_ms,
            "streaming {} vs wave {}",
            b.stats.virtual_ms,
            a.stats.virtual_ms
        );
    }

    #[test]
    fn streaming_single_lane_serialises_the_micro_batch_overheads() {
        // With one lane there is nothing to overlap: every micro-batch
        // pays its own request overhead back to back, while the wave
        // amortises overheads across up to `batch_size` prompts. The
        // documented trade-off — pipelining is a concurrency optimisation.
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let (_, wave) = oracle_session_pipelined(Pipeline::Off, 1);
        let (_, stream) = oracle_session_pipelined(Pipeline::Streaming, 1);
        let a = wave.execute(sql).unwrap();
        let b = stream.execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert!(
            b.stats.virtual_ms >= a.stats.virtual_ms,
            "single-lane streaming {} must not beat the wave {}",
            b.stats.virtual_ms,
            a.stats.virtual_ms
        );
        // At one lane the event clock degenerates to a running sum.
        assert_eq!(b.stats.virtual_ms, b.stats.serial_virtual_ms);
    }

    #[test]
    fn streaming_grid_matches_wave_grid_prompts_and_relations() {
        let sql = "SELECT name, population, country FROM city WHERE elevation < 100";
        let session = |pipeline| {
            let s = Scenario::generate(42);
            let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
            Galois::with_options(
                model,
                s.database.clone(),
                GaloisOptions {
                    pipeline,
                    prompt_batch: PromptBatch::Grid { keys: 10, attrs: 4 },
                    parallelism: Parallelism::new(8),
                    ..Default::default()
                },
            )
        };
        let a = session(Pipeline::Off).execute(sql).unwrap();
        let b = session(Pipeline::Streaming).execute(sql).unwrap();
        assert_eq!(a.relation.rows, b.relation.rows);
        assert_eq!(a.stats.total_prompts(), b.stats.total_prompts());
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits);
        assert!(
            b.stats.virtual_ms < a.stats.virtual_ms,
            "streaming grid {} vs wave grid {}",
            b.stats.virtual_ms,
            a.stats.virtual_ms
        );
    }

    #[test]
    fn phase_breakdown_locates_the_time() {
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let (_, wave) = oracle_session_pipelined(Pipeline::Off, 8);
        let (_, stream) = oracle_session_pipelined(Pipeline::Streaming, 8);
        let a = wave.execute(sql).unwrap();
        let b = stream.execute(sql).unwrap();
        // The list chain is identical in both dataflows (it is inherently
        // sequential); wave phases sum to the step clock pre-packing.
        assert_eq!(a.stats.list_virtual_ms, b.stats.list_virtual_ms);
        assert!(a.stats.list_virtual_ms > 0);
        assert!(a.stats.fetch_virtual_ms > 0);
        assert!(b.stats.fetch_virtual_ms > 0);
    }

    #[test]
    fn streaming_sessions_explain_the_pipeline() {
        let (_, g) = oracle_session_pipelined(Pipeline::Streaming, 8);
        let text = g
            .explain("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert!(text.contains("pipeline: streaming"));
        let (_, off) = oracle_session_pipelined(Pipeline::Off, 8);
        let text = off
            .explain("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert!(!text.contains("pipeline:"));
    }

    #[test]
    fn streaming_repeat_queries_are_served_from_sub_entries() {
        let (_, g) = oracle_session_pipelined(Pipeline::Streaming, 8);
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let first = g.execute(sql).unwrap();
        let second = g.execute(sql).unwrap();
        assert_eq!(first.relation.rows, second.relation.rows);
        assert_eq!(second.stats.filter_prompts, 0);
        assert_eq!(second.stats.fetch_prompts, 0);
        assert!(second.stats.cache_hits > 0);
        assert!(second.stats.virtual_ms < first.stats.virtual_ms);
    }

    #[test]
    fn pushdown_reduces_prompts() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let plain = Galois::new(model.clone(), s.database.clone());
        let pushed = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                compile: CompileOptions {
                    pushdown: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let a = plain.execute(sql).unwrap();
        let b = pushed.execute(sql).unwrap();
        assert!(
            b.stats.total_prompts() < a.stats.total_prompts(),
            "pushdown {} vs plain {}",
            b.stats.total_prompts(),
            a.stats.total_prompts()
        );
    }
}
