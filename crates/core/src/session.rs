//! The Galois session: end-to-end SQL execution over an LLM (paper §4
//! "Workflow").
//!
//! ```text
//! (1) plan the SQL against the user-provided schema
//! (2) retrieve tuples: key scans (iterated until exhaustion), per-key
//!     filter checks, per-key attribute fetches — all as text prompts
//! (3) convert answer strings to typed CELL values (parse + clean)
//! (4) run the remaining operators (joins, aggregates, …) traditionally
//! ```

use crate::clean::{clean_to_type, normalise_text, CleaningPolicy};
use crate::compile::{compile, CompileOptions, CompiledQuery, LlmScanStep};
use crate::error::{GaloisError, Result};
use crate::parse::{parse_boolean_answer, parse_list_answer, parse_value_answer, ListAnswer};
use crate::prompts::PromptBuilder;
use galois_llm::intent::TaskIntent;
use galois_llm::{ClientStats, LanguageModel, LlmClient};
use galois_relational::{Column, Database, Relation, Table, TableSchema, Value};
use std::sync::Arc;

/// Tuning knobs of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct GaloisOptions {
    /// Plan-compilation options (source routing, filter mode, pushdown).
    pub compile: CompileOptions,
    /// Cleaning policy for answer strings.
    pub cleaning: CleaningPolicy,
    /// Maximum "Return more results" iterations per key scan (the paper
    /// iterates "until we stop getting new results"; the cap is the
    /// user-specified threshold alternative).
    pub max_list_iterations: usize,
    /// Prompts per batch request.
    pub batch_size: usize,
}

impl Default for GaloisOptions {
    fn default() -> Self {
        GaloisOptions {
            compile: CompileOptions::default(),
            cleaning: CleaningPolicy::default(),
            max_list_iterations: 32,
            batch_size: 20,
        }
    }
}

/// Prompt accounting for one query (paper §5 reports ≈110 batched prompts
/// and ≈20 s per query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Key-listing prompts.
    pub list_prompts: usize,
    /// Per-key filter prompts.
    pub filter_prompts: usize,
    /// Per-key attribute-fetch prompts.
    pub fetch_prompts: usize,
    /// Prompts served from the client cache.
    pub cache_hits: usize,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
    /// Total completion tokens.
    pub completion_tokens: usize,
    /// Virtual milliseconds spent in the model.
    pub virtual_ms: u64,
    /// Rows materialised from the LLM across all scans.
    pub rows_retrieved: usize,
}

impl QueryStats {
    /// All prompts that reached the model.
    pub fn total_prompts(&self) -> usize {
        self.list_prompts + self.filter_prompts + self.fetch_prompts
    }

    /// Virtual seconds spent.
    pub fn virtual_seconds(&self) -> f64 {
        self.virtual_ms as f64 / 1000.0
    }
}

/// The result of one Galois query.
#[derive(Debug, Clone)]
pub struct GaloisResult {
    /// The output relation `R_M`.
    pub relation: Relation,
    /// Prompt accounting.
    pub stats: QueryStats,
}

/// A Galois session over one LLM and one schema catalog.
///
/// The [`Database`] provides the *schema* (the paper assumes "the schema
/// (but no instances) is provided together with the query") and any
/// `DB.`-qualified instance data for hybrid queries; LLM-sourced relations
/// are materialised through prompts at query time.
pub struct Galois {
    client: LlmClient,
    db: Database,
    prompt_builder: PromptBuilder,
    options: GaloisOptions,
}

impl Galois {
    /// Creates a session with default options.
    pub fn new(model: Arc<dyn LanguageModel>, db: Database) -> Self {
        Self::with_options(model, db, GaloisOptions::default())
    }

    /// Creates a session with explicit options.
    pub fn with_options(
        model: Arc<dyn LanguageModel>,
        db: Database,
        options: GaloisOptions,
    ) -> Self {
        let prompt_builder = PromptBuilder::for_model(model.name());
        Galois {
            client: LlmClient::new(model),
            db,
            prompt_builder,
            options,
        }
    }

    /// The underlying client (stats, cache control).
    pub fn client(&self) -> &LlmClient {
        &self.client
    }

    /// The schema/DB catalog in use.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Options in use.
    pub fn options(&self) -> &GaloisOptions {
        &self.options
    }

    /// Plans and compiles a query without executing it (Figure 3 EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.db.plan(sql)?;
        let compiled = compile(&plan, self.db.catalog(), &self.options.compile)?;
        Ok(crate::compile::explain_compiled(&compiled))
    }

    /// Executes a SQL query against the LLM (and DB for hybrid sources).
    pub fn execute(&self, sql: &str) -> Result<GaloisResult> {
        let plan = self.db.plan(sql)?;
        let compiled = compile(&plan, self.db.catalog(), &self.options.compile)?;
        self.execute_compiled(&compiled)
    }

    /// Executes an already-compiled query.
    pub fn execute_compiled(&self, compiled: &CompiledQuery) -> Result<GaloisResult> {
        let before = self.client.stats();
        let mut stats = QueryStats::default();

        let mut catalog = self.db.catalog().clone();
        for step in &compiled.steps {
            let table = self.retrieve(step, &mut stats)?;
            stats.rows_retrieved += table.len();
            catalog
                .add_table(table)
                .map_err(|e| GaloisError::Compile(format!("temp table: {e}")))?;
        }

        let relation =
            galois_relational::execute(&compiled.plan, &catalog).map_err(GaloisError::from)?;

        let after = self.client.stats();
        stats.cache_hits = after.cache_hits - before.cache_hits;
        stats.prompt_tokens = after.prompt_tokens - before.prompt_tokens;
        stats.completion_tokens = after.completion_tokens - before.completion_tokens;
        stats.virtual_ms = after.virtual_ms - before.virtual_ms;
        Ok(GaloisResult { relation, stats })
    }

    /// Client-level stats accumulated over the session.
    pub fn session_stats(&self) -> ClientStats {
        self.client.stats()
    }

    // -----------------------------------------------------------------
    // Retrieval (workflow steps 2–3)
    // -----------------------------------------------------------------

    fn retrieve(&self, step: &LlmScanStep, stats: &mut QueryStats) -> Result<Table> {
        let keys = self.scan_keys(step, stats);
        let keys = self.apply_filters(step, keys, stats);
        let rows = self.fetch_attributes(step, &keys, stats);

        // Materialise: same column order as the stored schema, everything
        // but the key nullable (unfetched attributes are NULL).
        let columns: Vec<Column> = step
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == step.key_index {
                    Column::new(c.name.clone(), c.data_type)
                } else {
                    Column::nullable(c.name.clone(), c.data_type)
                }
            })
            .collect();
        let schema = TableSchema::new(columns, &step.key_attr)
            .map_err(|e| GaloisError::Compile(format!("temp schema: {e}")))?;
        let mut table = Table::new(step.temp_name.clone(), schema);
        for row in rows {
            // Duplicate keys (hallucinated repeats) are dropped silently:
            // the key-identifies-tuple assumption is enforced here.
            let _ = table.insert(row);
        }
        Ok(table)
    }

    /// Key retrieval: iterate the list prompt until the model stops
    /// producing new values (paper: "we iterate with a prompt until we
    /// stop getting new results").
    fn scan_keys(&self, step: &LlmScanStep, stats: &mut QueryStats) -> Vec<String> {
        let mut keys: Vec<String> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for _ in 0..self.options.max_list_iterations {
            let intent = TaskIntent::ListKeys {
                relation: step.table.clone(),
                key_attr: step.key_attr.clone(),
                condition: step.scan_condition.clone(),
                exclude: keys.clone(),
            };
            let prompt = self.prompt_builder.task(&intent);
            let completion = self.client.complete(&prompt);
            stats.list_prompts += 1;
            match parse_list_answer(&completion.text) {
                ListAnswer::Exhausted => break,
                ListAnswer::Values(values) => {
                    let mut got_new = false;
                    for v in values {
                        let cleaned = normalise_text(&v);
                        if cleaned.is_empty() {
                            continue;
                        }
                        if seen.insert(cleaned.to_ascii_lowercase()) {
                            keys.push(cleaned);
                            got_new = true;
                        }
                    }
                    if !got_new {
                        break;
                    }
                }
            }
        }
        keys
    }

    /// Selection via boolean prompts: one "is its <attr> <op> <value>?"
    /// question per key per condition.
    fn apply_filters(
        &self,
        step: &LlmScanStep,
        keys: Vec<String>,
        stats: &mut QueryStats,
    ) -> Vec<String> {
        let mut keys = keys;
        for condition in &step.filter_conditions {
            let prompts: Vec<String> = keys
                .iter()
                .map(|key| {
                    self.prompt_builder.task(&TaskIntent::CheckFilter {
                        relation: step.table.clone(),
                        key_attr: step.key_attr.clone(),
                        key: key.clone(),
                        condition: condition.clone(),
                    })
                })
                .collect();
            let mut verdicts = Vec::with_capacity(keys.len());
            for chunk in prompts.chunks(self.options.batch_size.max(1)) {
                let completions = self.client.complete_batch(chunk);
                stats.filter_prompts += chunk.len();
                for c in completions {
                    // An unparseable verdict keeps the tuple out: the
                    // predicate did not evaluate to TRUE.
                    verdicts.push(parse_boolean_answer(&c.text).unwrap_or(false));
                }
            }
            keys = keys
                .into_iter()
                .zip(verdicts)
                .filter_map(|(k, keep)| keep.then_some(k))
                .collect();
        }
        keys
    }

    /// Attribute retrieval: one prompt per (key, attribute), batched.
    fn fetch_attributes(
        &self,
        step: &LlmScanStep,
        keys: &[String],
        stats: &mut QueryStats,
    ) -> Vec<Vec<Value>> {
        let arity = step.columns.len();
        let mut rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|key| {
                let mut row = vec![Value::Null; arity];
                // The key itself is cleaned to the key column's type.
                row[step.key_index] = clean_to_type(
                    key,
                    step.columns[step.key_index].data_type,
                    &self.options.cleaning,
                )
                .unwrap_or(Value::Null);
                row
            })
            .collect();

        for &col_idx in &step.fetch {
            let column = &step.columns[col_idx];
            let prompts: Vec<String> = keys
                .iter()
                .map(|key| {
                    self.prompt_builder.task(&TaskIntent::FetchAttr {
                        relation: step.table.clone(),
                        key_attr: step.key_attr.clone(),
                        key: key.clone(),
                        attribute: column.name.clone(),
                    })
                })
                .collect();
            let mut answers = Vec::with_capacity(prompts.len());
            for chunk in prompts.chunks(self.options.batch_size.max(1)) {
                let completions = self.client.complete_batch(chunk);
                stats.fetch_prompts += chunk.len();
                answers.extend(completions);
            }
            for (row, completion) in rows.iter_mut().zip(answers) {
                let value = parse_value_answer(&completion.text)
                    .and_then(|raw| clean_to_type(&raw, column.data_type, &self.options.cleaning))
                    .map(|v| match v {
                        Value::Text(s) => Value::Text(normalise_text(&s)),
                        other => other,
                    })
                    .unwrap_or(Value::Null);
                row[col_idx] = value;
            }
        }

        // Rows whose key failed to clean are unusable.
        rows.retain(|r| !r[step.key_index].is_null());
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_dataset::Scenario;
    use galois_llm::{ModelProfile, SimLlm};

    fn oracle_session() -> (Scenario, Galois) {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let g = Galois::new(model, s.database.clone());
        (s, g)
    }

    #[test]
    fn oracle_selection_matches_ground_truth() {
        let (s, g) = oracle_session();
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        let mut a: Vec<String> = truth.rows.iter().map(|r| r[0].render()).collect();
        let mut b: Vec<String> = got.relation.rows.iter().map(|r| r[0].render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(got.stats.total_prompts() > 0);
    }

    #[test]
    fn oracle_projection_values_match() {
        let (s, g) = oracle_session();
        let sql = "SELECT name, population FROM city WHERE elevation < 100";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        let key = |r: &Vec<Value>| (r[0].render(), r[1].render());
        let mut a: Vec<_> = truth.rows.iter().map(key).collect();
        let mut b: Vec<_> = got.relation.rows.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_aggregate_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT COUNT(*) FROM city";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.rows, got.relation.rows);
    }

    #[test]
    fn oracle_group_by_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY continent";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.rows, got.relation.rows);
    }

    #[test]
    fn oracle_join_matches() {
        let (s, g) = oracle_session();
        let sql = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert_eq!(truth.len(), got.relation.len());
    }

    #[test]
    fn hybrid_query_mixes_llm_and_db() {
        let (s, g) = oracle_session();
        // employees live only in the DB; country GDP comes from the LLM.
        let sql = "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                   FROM DB.employees e, LLM.country k \
                   WHERE e.countryCode = k.code \
                   GROUP BY e.countryCode ORDER BY e.countryCode";
        let got = g.execute(sql).unwrap();
        assert!(!got.relation.is_empty());
        // Ground truth: the same query entirely inside the DB.
        let truth = s
            .database
            .execute(
                "SELECT e.countryCode, AVG(e.salary), MAX(k.gdp) \
                 FROM employees e, country k WHERE e.countryCode = k.code \
                 GROUP BY e.countryCode ORDER BY e.countryCode",
            )
            .unwrap();
        assert_eq!(truth.len(), got.relation.len());
    }

    #[test]
    fn noisy_model_misses_rows() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::flan()));
        let g = Galois::new(model, s.database.clone());
        let sql = "SELECT name FROM city";
        let truth = s.database.execute(sql).unwrap();
        let got = g.execute(sql).unwrap();
        assert!(
            got.relation.len() < truth.len(),
            "flan returned {} of {}",
            got.relation.len(),
            truth.len()
        );
    }

    #[test]
    fn stats_count_prompt_kinds() {
        let (_, g) = oracle_session();
        let got = g
            .execute("SELECT name, population FROM city WHERE elevation < 100")
            .unwrap();
        assert!(got.stats.list_prompts >= 1);
        assert!(got.stats.filter_prompts > 0);
        assert!(got.stats.fetch_prompts > 0);
        assert!(got.stats.virtual_ms > 0);
    }

    #[test]
    fn explain_shows_llm_steps() {
        let (_, g) = oracle_session();
        let text = g
            .explain("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert!(text.contains("[LLM step 1] scan city"));
    }

    #[test]
    fn pushdown_reduces_prompts() {
        let s = Scenario::generate(42);
        let model = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
        let plain = Galois::new(model.clone(), s.database.clone());
        let pushed = Galois::with_options(
            model,
            s.database.clone(),
            GaloisOptions {
                compile: CompileOptions {
                    pushdown: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let sql = "SELECT name FROM city WHERE population > 1000000";
        let a = plain.execute(sql).unwrap();
        let b = pushed.execute(sql).unwrap();
        assert!(
            b.stats.total_prompts() < a.stats.total_prompts(),
            "pushdown {} vs plain {}",
            b.stats.total_prompts(),
            a.stats.total_prompts()
        );
    }
}
