//! # galois-core
//!
//! A from-scratch implementation of **Galois** — the DB-first prototype of
//! ["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472)
//! (Saeed, De Cao, Papotti — EDBT 2024).
//!
//! Galois executes SPJA SQL over a pre-trained LLM: the logical query plan
//! acts as an automatically-generated chain-of-thought, whose leaf and
//! selection operators become *text prompts*; retrieved strings are parsed
//! and cleaned into typed cells; joins, aggregates and sorts then run as
//! ordinary relational operators.
//!
//! ```
//! use std::sync::Arc;
//! use galois_core::Galois;
//! use galois_dataset::Scenario;
//! use galois_llm::{ModelProfile, SimLlm};
//!
//! let scenario = Scenario::generate(42);
//! let model = Arc::new(SimLlm::new(scenario.knowledge.clone(), ModelProfile::chatgpt()));
//! let galois = Galois::new(model, scenario.database.clone());
//!
//! let result = galois.execute("SELECT name FROM city WHERE population > 1000000").unwrap();
//! println!("{}", result.relation);              // the relation R_M
//! println!("{} prompts", result.stats.total_prompts());
//! ```
//!
//! Module map (one per paper concern):
//!
//! | module | paper § |
//! |---|---|
//! | [`compile`] | §4 Operators — plan → retrieval steps |
//! | [`plan_choice`] | §6 Query optimization — cost-based, prompt-aware planner |
//! | [`prompts`] | §4 Prompts, Figure 4 |
//! | [`parse`] | §4 workflow (3): answers → CELL values |
//! | [`clean`] | §4 workflow (3): normalisation + domain constraints |
//! | [`session`] | §4 workflow (1)–(4), §5 prompt accounting |
//! | [`schedule`] | concurrent prompt scheduler (worker-thread waves) |
//! | [`multi`] | cross-query scheduling over a shared lane pool |
//! | [`baselines`] | §5 `T_M` and `T_C_M` |

#![warn(missing_docs)]

pub mod baselines;
pub mod clean;
pub mod compile;
pub mod error;
pub mod multi;
pub mod parse;
pub mod plan_choice;
pub mod prompts;
pub mod schedule;
pub mod session;

pub use baselines::{BaselineKind, BaselineResult, QaBaseline};
pub use clean::CleaningPolicy;
pub use compile::{
    concept_signature_for, limit_hint, CompileOptions, CompiledQuery, DefaultSource, FilterMode,
    LlmScanStep,
};
pub use error::{GaloisError, Result};
pub use galois_llm::{FairShare, Parallelism, RetryPolicy};
pub use multi::{run_multi_query, MultiQueryOutcome, MultiQueryReport};
pub use plan_choice::{PlanReport, PlannedQuery, Planner, PlannerParams, StepCost};
pub use schedule::Scheduler;
pub use session::{
    Admission, AdmissionPolicy, EarlyStop, Galois, GaloisOptions, GaloisResult, ListStore,
    Pipeline, PromptBatch, QueryStats, Resilience,
};
