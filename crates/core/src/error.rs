//! Galois error type.

use std::fmt;

/// Errors surfaced by the Galois engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GaloisError {
    /// SQL parse/plan/execute error from the relational layer.
    Engine(String),
    /// The query needs a capability Galois does not support over LLMs.
    Unsupported(String),
    /// Internal compilation invariant broke.
    Compile(String),
}

impl fmt::Display for GaloisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaloisError::Engine(m) => write!(f, "engine error: {m}"),
            GaloisError::Unsupported(m) => write!(f, "unsupported: {m}"),
            GaloisError::Compile(m) => write!(f, "compile error: {m}"),
        }
    }
}

impl std::error::Error for GaloisError {}

impl From<galois_relational::EngineError> for GaloisError {
    fn from(e: galois_relational::EngineError) -> Self {
        GaloisError::Engine(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, GaloisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_error_converts() {
        let db = galois_relational::Database::new();
        let err = db.execute("SELECT x FROM missing").unwrap_err();
        let ge: GaloisError = err.into();
        assert!(ge.to_string().contains("missing"));
    }
}
