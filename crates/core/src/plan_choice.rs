//! Cost-based, prompt-aware plan choice (paper §6 "Query optimization").
//!
//! The logical plan *is* the chain-of-thought: which conditions are pushed
//! into the key-listing prompt, and how retrieval steps are laid out over
//! the request lanes, directly determines how many prompts a query costs
//! and how long it takes. The paper's prototype (and our
//! [`Planner::Heuristic`] mode) makes those choices with fixed rules; this
//! module adds a [`Planner::CostBased`] mode that *estimates* each
//! candidate's prompt count, expected cache hits and virtual latency, and
//! picks the cheapest.
//!
//! The estimator composes three ingredients:
//!
//! * **cardinalities** from [`galois_relational::cost`] — catalog row
//!   counts shrunk by per-condition selectivities (the planner's table
//!   statistics);
//! * **prompt counts** from the retrieval protocol — key-list iterations,
//!   one boolean prompt per surviving key per condition, one fetch prompt
//!   per (key, attribute);
//! * **latency** from the PR-2 lane model — every batch costs
//!   `overhead + miss·latency/lanes`, waves of batches pack onto the
//!   lanes, and observed [`ClientStats`] calibrate the expected per-prompt
//!   latency and cache-hit rate. A session freezes this calibration at its
//!   first planner use (`Galois::recalibrate_planner` re-freezes it), so
//!   plan choice never depends on which concurrent query's prompts landed
//!   first in the shared stats.
//!
//! The enumeration space per retrieval step is: leave every condition as a
//! per-key boolean prompt chain, or push exactly one condition into the
//! key-listing prompt (the paper pushes at most one — "combining too many
//! prompts leads to complex questions", §6). Across steps, the planner
//! orders retrievals longest-first so the scheduler's greedy lane packing
//! approximates the optimal makespan (LPT). Both choices change only the
//! prompt schedule, never the result relation: `R_M` is invariant across
//! planner modes for a noise-free model, and [`Planner::Heuristic`]
//! reproduces the pre-planner plans bit for bit.
//!
//! ```
//! use galois_core::plan_choice::{plan_query, Planner, PlannerParams};
//! use galois_core::CompileOptions;
//! use galois_dataset::Scenario;
//!
//! let s = Scenario::generate(42);
//! let plan = s.database.plan("SELECT name FROM city WHERE population > 1000000").unwrap();
//! let params = PlannerParams::default();
//! let heuristic = plan_query(
//!     &plan, s.database.catalog(), &CompileOptions::default(), Planner::Heuristic, &params,
//! ).unwrap();
//! let cost_based = plan_query(
//!     &plan, s.database.catalog(), &CompileOptions::default(), Planner::CostBased, &params,
//! ).unwrap();
//! // The cost-based planner pushes the selective condition into the key
//! // scan, which the fixed heuristic (pushdown off) does not.
//! assert!(cost_based.compiled.steps[0].scan_condition.is_some());
//! assert!(heuristic.compiled.steps[0].scan_condition.is_none());
//! assert!(cost_based.report.est_virtual_ms <= heuristic.report.est_virtual_ms);
//! ```

use crate::compile::{compile, CompileOptions, CompiledQuery, LlmScanStep};
use crate::error::Result;
use galois_llm::intent::{CmpOp, Condition};
use galois_llm::{ClientStats, Parallelism, RetryPolicy, BATCH_OVERHEAD_MS};
use galois_relational::cost as rcost;
use galois_relational::{Catalog, LogicalPlan};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Expected per-prompt model latency (virtual ms) before any observed
/// [`ClientStats`] are available to calibrate it.
pub const DEFAULT_PROMPT_LATENCY_MS: f64 = 150.0;

/// Expected keys returned per key-listing iteration before observation.
pub const DEFAULT_LIST_PAGE: f64 = 15.0;

/// Fraction of a single prompt's latency attributed to decoding its answer
/// tokens — the *marginal* cost of each extra key folded into a multi-key
/// batched prompt. The remainder (prompt processing, decode start-up) is
/// paid once per prompt regardless of how many keys it carries, which is
/// the economics batching exploits: a `B`-key prompt is modelled as
/// `latency · (1 − share + share · B)`, not `latency · B`.
pub const BATCH_ANSWER_LATENCY_SHARE: f64 = 0.5;

/// Which plan-choice strategy a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Planner {
    /// The fixed rules of the paper's prototype: compile the optimized
    /// logical plan as-is, with prompt pushdown governed solely by
    /// [`CompileOptions::pushdown`]. Guaranteed bit-identical to the
    /// pre-planner pipeline — same plans, same prompts, same tables.
    #[default]
    Heuristic,
    /// Estimate prompt count, cache hits and lane-model virtual latency
    /// per candidate, push the cheapest single condition per retrieval
    /// step, and order steps longest-first for the scheduler.
    CostBased,
}

impl fmt::Display for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Planner::Heuristic => write!(f, "heuristic"),
            Planner::CostBased => write!(f, "cost-based"),
        }
    }
}

/// Calibration inputs of the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerParams {
    /// Prompts per batch request ([`crate::GaloisOptions::batch_size`]).
    pub batch_size: f64,
    /// Request lanes / worker threads (`GaloisOptions::parallelism`).
    pub lanes: usize,
    /// Fixed virtual overhead charged per batch request.
    pub batch_overhead_ms: f64,
    /// Expected virtual latency of one cache-missing prompt.
    pub prompt_latency_ms: f64,
    /// Expected fraction of prompts served by the cache (in-flight
    /// deduplication waiters count as hits, like the client's accounting).
    pub cache_hit_rate: f64,
    /// Expected keys per key-listing iteration.
    pub list_page_size: f64,
    /// Multi-key prompt batching factor
    /// ([`crate::GaloisOptions::prompt_batch`]): keys fused per filter or
    /// fetch prompt. 1.0 (the default) reproduces the unbatched estimates
    /// bit for bit.
    pub batch_keys: f64,
    /// Grid attribute-fusion factor
    /// ([`crate::PromptBatch::Grid`]): fetched columns fused per grid
    /// prompt, cutting the fetch phase from `C × ⌈keys/B⌉` to
    /// `⌈C/A⌉ × ⌈keys/B⌉` prompts per step. 1.0 (the default) reproduces
    /// the per-column estimates bit for bit.
    pub batch_attrs: f64,
    /// Streaming pipeline on ([`crate::GaloisOptions::pipeline`]): latency
    /// is estimated as the dataflow's critical path
    /// ([`rcost::critical_path_ms`]) instead of the phase-barrier sum, and
    /// steps share the lanes instead of packing as blocks. `false` (the
    /// default) reproduces the wave estimates bit for bit. Prompt-count
    /// estimates are unaffected — streaming issues the same prompts.
    pub pipeline_streaming: bool,
    /// Concepts already exhausted in the session's key-universe store
    /// ([`crate::ListStore`]), keyed by
    /// [`LlmScanStep::concept_signature`] and mapping to the stored key
    /// count. A warm step's listing phase is estimated at zero prompts
    /// and zero latency with an *exact* cardinality
    /// ([`rcost::warm_list_rows`]). `None` (the default, and always when
    /// the store is off) reproduces the store-free estimates bit for bit
    /// and keeps the `EXPLAIN` report tag-free.
    pub warm_lists: Option<BTreeMap<String, usize>>,
    /// LIMIT-aware early termination on
    /// ([`crate::EarlyStop::Limit`]): the `EXPLAIN` report gains a
    /// `limit: early-stop after ~N keys` line for eligible plan shapes.
    /// `false` (the default) keeps the report byte-identical to the
    /// pre-limit pipeline's. The cost *estimates* are deliberately left
    /// untouched — how many keys survive before the window fills is
    /// data-dependent, so the planner reports the stop threshold rather
    /// than guessing a discount.
    pub early_stop: bool,
    /// Retry policy in effect ([`crate::Resilience::On`]): the `EXPLAIN`
    /// report gains a `resilience:` header line naming the retry budget,
    /// backoff shape and breaker threshold. `None` (the default) keeps
    /// the report byte-identical to the pre-resilience pipeline's. Cost
    /// estimates are deliberately untouched — retry time depends on the
    /// model's live fault rate, which calibration already folds into the
    /// observed per-prompt latency.
    pub resilience: Option<RetryPolicy>,
    /// Admission policy in effect ([`crate::Admission::Fair`]): the
    /// `EXPLAIN` report gains an `admission:` header line naming the
    /// shared lane pool, the in-flight cap and the fair-share
    /// discipline. `None` (the default) keeps the report byte-identical
    /// to the single-query pipeline's. Cost estimates are deliberately
    /// untouched — queueing delay depends on the live concurrent load,
    /// which the per-query planner cannot see; the multi-query replay
    /// ([`crate::run_multi_query`]) measures it instead.
    pub admission: Option<crate::session::AdmissionPolicy>,
}

impl Default for PlannerParams {
    fn default() -> Self {
        PlannerParams {
            batch_size: 20.0,
            lanes: 1,
            batch_overhead_ms: BATCH_OVERHEAD_MS as f64,
            prompt_latency_ms: DEFAULT_PROMPT_LATENCY_MS,
            cache_hit_rate: 0.0,
            list_page_size: DEFAULT_LIST_PAGE,
            batch_keys: 1.0,
            batch_attrs: 1.0,
            pipeline_streaming: false,
            warm_lists: None,
            early_stop: false,
            resilience: None,
            admission: None,
        }
    }
}

impl PlannerParams {
    /// Builds params for a session, calibrating the expected per-prompt
    /// latency and cache-hit rate from the client's observed stats (the
    /// cold-start defaults apply until the session has served prompts).
    pub fn from_session(batch_size: usize, parallelism: Parallelism, stats: &ClientStats) -> Self {
        let mut p = PlannerParams {
            batch_size: batch_size.max(1) as f64,
            lanes: parallelism.get(),
            ..Default::default()
        };
        if stats.prompts > 0 {
            let model_ms = stats
                .serial_ms
                .saturating_sub(stats.batches as u64 * BATCH_OVERHEAD_MS);
            p.prompt_latency_ms = (model_ms as f64 / stats.prompts as f64).max(1.0);
        }
        let answered = stats.prompts + stats.cache_hits;
        if answered > 0 {
            p.cache_hit_rate = stats.cache_hits as f64 / answered as f64;
        }
        p
    }

    /// Sets the multi-key batching factor (clamped to ≥ 1), threading
    /// [`crate::GaloisOptions::prompt_batch`] into the estimates.
    pub fn with_batch_keys(mut self, batch_keys: usize) -> Self {
        self.batch_keys = batch_keys.max(1) as f64;
        self
    }

    /// Sets the grid attribute-fusion factor (clamped to ≥ 1), threading
    /// [`crate::PromptBatch::Grid`]'s `attrs` into the estimates.
    pub fn with_batch_attrs(mut self, batch_attrs: usize) -> Self {
        self.batch_attrs = batch_attrs.max(1) as f64;
        self
    }

    /// Selects the streaming-pipeline latency model, threading
    /// [`crate::GaloisOptions::pipeline`] into the estimates.
    pub fn with_pipeline(mut self, streaming: bool) -> Self {
        self.pipeline_streaming = streaming;
        self
    }

    /// Flags LIMIT-aware early termination
    /// ([`crate::GaloisOptions::early_stop`]) for the `EXPLAIN` report.
    pub fn with_early_stop(mut self, on: bool) -> Self {
        self.early_stop = on;
        self
    }

    /// Threads the session's retry policy
    /// ([`crate::GaloisOptions::resilience`]) into the `EXPLAIN` report.
    pub fn with_resilience(mut self, policy: Option<RetryPolicy>) -> Self {
        self.resilience = policy;
        self
    }

    /// Threads the session's admission policy
    /// ([`crate::GaloisOptions::admission`]) into the `EXPLAIN` report.
    pub fn with_admission(mut self, policy: Option<crate::session::AdmissionPolicy>) -> Self {
        self.admission = policy;
        self
    }

    /// Overlays the live key-universe store contents (exhausted concepts
    /// → stored key counts) onto the frozen calibration, threading
    /// [`crate::ListStore`] into the estimates. Called per planning
    /// request, so the planner sees universes warmed by *earlier* queries
    /// without thawing the latency/hit-rate calibration.
    pub fn with_warm_lists(mut self, warm: BTreeMap<String, usize>) -> Self {
        self.warm_lists = Some(warm);
        self
    }

    /// The stored key count for a step's concept, when its universe is
    /// warm (store on *and* concept exhausted).
    fn warm_keys(&self, step: &LlmScanStep) -> Option<usize> {
        self.warm_lists
            .as_ref()
            .and_then(|m| m.get(&step.concept_signature()))
            .copied()
    }

    /// Expected latency of one prompt carrying `keys` fused tasks: the
    /// fixed share once, the answer share per key (see
    /// [`BATCH_ANSWER_LATENCY_SHARE`]). Degenerates to `prompt_latency_ms`
    /// at one key.
    fn fused_prompt_latency_ms(&self, keys: f64) -> f64 {
        self.prompt_latency_ms
            * (1.0 - BATCH_ANSWER_LATENCY_SHARE + BATCH_ANSWER_LATENCY_SHARE * keys.max(1.0))
    }
}

/// Estimated cost of one LLM retrieval step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Keys the key-listing phase is expected to produce.
    pub est_keys_listed: f64,
    /// Rows expected to survive every filter condition.
    pub est_rows_out: f64,
    /// Expected key-listing prompts (iterations + the exhausted page).
    pub list_prompts: f64,
    /// Expected per-key boolean filter prompts.
    pub filter_prompts: f64,
    /// Expected per-(key, attribute) fetch prompts.
    pub fetch_prompts: f64,
    /// Expected prompts served by the cache.
    pub expected_cache_hits: f64,
    /// Expected virtual milliseconds under the lane model: the
    /// phase-barrier wave sum, or the dataflow critical path when the
    /// streaming pipeline is selected.
    pub virtual_ms: f64,
    /// Expected total lane-busy milliseconds of the step. Under the
    /// streaming pipeline this is the step's contribution to the shared
    /// lanes' busy bound (each micro-batch pays its own request
    /// overhead); in wave mode it equals `virtual_ms`, the step's packed
    /// block length.
    pub busy_ms: f64,
}

impl StepCost {
    /// All prompts the step is expected to issue.
    pub fn total_prompts(&self) -> f64 {
        self.list_prompts + self.filter_prompts + self.fetch_prompts
    }
}

/// The planner's decision for one query: the compiled retrieval program
/// plus the cost report that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// Retrieval steps + residual relational plan, ready to execute.
    pub compiled: CompiledQuery,
    /// Cost accounting per step and for the whole query.
    pub report: PlanReport,
}

/// Cost accounting attached to a [`PlannedQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Strategy that produced the plan.
    pub planner: Planner,
    /// Candidate plans whose costs were compared (1 for the heuristic).
    pub candidates_considered: usize,
    /// Per-step estimates, parallel to `compiled.steps`.
    pub steps: Vec<StepCost>,
    /// Expected query virtual time: step estimates packed onto the lanes.
    pub est_virtual_ms: f64,
    /// Expected total prompts across steps.
    pub est_total_prompts: f64,
    /// Expected cache hits across steps.
    pub est_cache_hits: f64,
    /// The early-termination window (`LIMIT n` + `OFFSET`) when the plan
    /// shape is eligible for LIMIT-aware streaming
    /// ([`crate::compile::limit_hint`]); `None` otherwise.
    pub limit_hint: Option<usize>,
}

/// Selectivity of a prompt-protocol condition, using the same System-R
/// constants as the relational estimator.
pub fn condition_selectivity(cond: &Condition) -> f64 {
    match cond.op {
        CmpOp::Eq => rcost::SEL_EQ,
        CmpOp::NotEq => 1.0 - rcost::SEL_EQ,
        CmpOp::Gt | CmpOp::GtEq | CmpOp::Lt | CmpOp::LtEq => rcost::SEL_RANGE,
        CmpOp::Between => rcost::SEL_BETWEEN,
        CmpOp::In => (rcost::SEL_IN_PER_ITEM * cond.values.len() as f64).min(1.0),
        CmpOp::Like => rcost::SEL_LIKE,
        CmpOp::IsNull => rcost::SEL_IS_NULL,
        CmpOp::IsNotNull => 1.0 - rcost::SEL_IS_NULL,
    }
}

/// Expected virtual time of one wave of `batches` batch requests carrying
/// `prompts` prompts in total: each batch costs `overhead` plus its
/// cache-missing members decoded across the lanes, and the batches
/// themselves occupy the lanes wave-style. `per_prompt_ms` is the expected
/// latency of one member prompt — `prompt_latency_ms` for single-key
/// prompts, [`PlannerParams::fused_prompt_latency_ms`] for multi-key ones,
/// so batched prompts are charged by answer volume rather than per key.
fn wave_ms(prompts: f64, batches: f64, per_prompt_ms: f64, params: &PlannerParams) -> f64 {
    if batches < 1.0 {
        return 0.0;
    }
    let lanes = params.lanes as f64;
    let misses_per_batch = (prompts / batches) * (1.0 - params.cache_hit_rate);
    let per_batch = params.batch_overhead_ms + (misses_per_batch / lanes) * per_prompt_ms;
    (batches / lanes).ceil() * per_batch
}

/// Estimates the cost of one retrieval step against the catalog's stats.
pub fn estimate_step(step: &LlmScanStep, catalog: &Catalog, params: &PlannerParams) -> StepCost {
    // A warm key universe short-circuits the listing estimate entirely:
    // the stored key count is exact, and the phase issues no prompts.
    let warm_keys = params.warm_keys(step);
    let est_keys_listed = match warm_keys {
        Some(n) => rcost::warm_list_rows(n),
        None => {
            let base = catalog
                .get(&step.table)
                .map(|t| t.len() as f64)
                .unwrap_or(rcost::DEFAULT_SCAN_ROWS);
            match &step.scan_condition {
                Some(cond) => base * condition_selectivity(cond),
                None => base,
            }
        }
    };

    // Key listing iterates page by page plus one exhausted page, and the
    // iterations chain — a strictly sequential phase of one-prompt batches.
    let miss = 1.0 - params.cache_hit_rate;
    let per_iter = params.batch_overhead_ms + miss * params.prompt_latency_ms;
    let (list_prompts, list_chain) = if warm_keys.is_some() {
        (0.0, 0.0)
    } else {
        let prompts = (est_keys_listed / params.list_page_size).ceil().max(0.0) + 1.0;
        (prompts, prompts * per_iter)
    };
    let mut wave_total = list_chain;

    // Filter conditions chain (condition n+1 only prompts survivors of n);
    // the chunks within one condition run as one wave. With multi-key
    // batching the phase issues ⌈keys / B⌉ fused prompts per condition,
    // each charged by answer volume.
    let fused = params.fused_prompt_latency_ms(params.batch_keys);
    let mut filter_prompts = 0.0;
    let mut n = est_keys_listed;
    for cond in &step.filter_conditions {
        let prompts = rcost::batched_prompt_count(n, params.batch_keys);
        filter_prompts += prompts;
        wave_total += wave_ms(prompts, (prompts / params.batch_size).ceil(), fused, params);
        n *= condition_selectivity(cond);
    }

    // Every (attr-group × chunk) fetch cell is independent — one wave.
    // Without grid fusion each column is its own group; with
    // `PromptBatch::Grid` the columns fuse into ⌈C/A⌉ groups whose prompts
    // carry `batch_keys × attrs-per-group` answer cells each.
    let cols = step.fetch.len() as f64;
    let groups = if cols > 0.0 {
        (cols / params.batch_attrs).ceil()
    } else {
        0.0
    };
    let attrs_per_group = if groups > 0.0 { cols / groups } else { 0.0 };
    let col_prompts = rcost::batched_prompt_count(n, params.batch_keys);
    let fetch_prompts = col_prompts * groups;
    let fetch_fused = params.fused_prompt_latency_ms(params.batch_keys * attrs_per_group.max(1.0));
    wave_total += wave_ms(
        fetch_prompts,
        (col_prompts / params.batch_size).ceil() * groups,
        fetch_fused,
        params,
    );

    // The streaming pipeline replaces the phase-barrier sum with the
    // dataflow critical path: the last productive page's keys still have
    // to traverse every remaining stage (each micro-batch paying its own
    // request overhead), but every earlier page's work — and the final
    // exhausted-page check — hides behind the chain. The busy bound
    // covers the single-lane degeneration, where the per-micro-batch
    // overheads are paid back to back.
    let per_stage = params.batch_overhead_ms + miss * fused;
    let busy_ms = if params.pipeline_streaming {
        list_chain + (filter_prompts + fetch_prompts) * per_stage
    } else {
        wave_total
    };
    let virtual_ms = if params.pipeline_streaming {
        let stages =
            step.filter_conditions.len() as f64 + if step.fetch.is_empty() { 0.0 } else { 1.0 };
        let chain_head = (list_prompts - 1.0).max(0.0) * per_iter;
        rcost::critical_path_ms(chain_head, stages * per_stage, busy_ms, params.lanes as f64)
            .max(list_chain)
    } else {
        wave_total
    };

    let total = list_prompts + filter_prompts + fetch_prompts;
    StepCost {
        est_keys_listed,
        est_rows_out: n,
        list_prompts,
        filter_prompts,
        fetch_prompts,
        expected_cache_hits: params.cache_hit_rate * total,
        virtual_ms,
        busy_ms,
    }
}

/// Packs per-step virtual estimates onto the lanes (the step wave).
fn pack_steps(costs: &[StepCost], lanes: usize) -> f64 {
    galois_llm::lane_schedule(
        costs.iter().map(|c| c.virtual_ms.round().max(0.0) as u64),
        lanes,
    ) as f64
}

fn make_report(
    planner: Planner,
    candidates_considered: usize,
    steps: Vec<StepCost>,
    params: &PlannerParams,
    limit_hint: Option<usize>,
) -> PlanReport {
    // Wave mode packs the steps onto the lanes as blocks; the streaming
    // pipeline shares the lanes across steps, so the query estimate is
    // the slowest step's critical path against the pooled busy bound.
    let est_virtual_ms = if params.pipeline_streaming {
        let chain = steps.iter().map(|c| c.virtual_ms).fold(0.0, f64::max);
        let busy: f64 = steps.iter().map(|c| c.busy_ms).sum();
        rcost::critical_path_ms(chain, 0.0, busy, params.lanes as f64)
    } else {
        pack_steps(&steps, params.lanes)
    };
    let est_total_prompts = steps.iter().map(StepCost::total_prompts).sum();
    let est_cache_hits = steps.iter().map(|c| c.expected_cache_hits).sum();
    PlanReport {
        planner,
        candidates_considered,
        steps,
        est_virtual_ms,
        est_total_prompts,
        est_cache_hits,
        limit_hint,
    }
}

/// Scan bindings of a join side, left to right — the `EXPLAIN` label for
/// one input of a join.
fn side_label(plan: &LogicalPlan) -> String {
    let labels: Vec<&str> = plan
        .scans()
        .iter()
        .filter_map(|s| match s {
            LogicalPlan::Scan { binding, .. } => Some(binding.as_str()),
            _ => None,
        })
        .collect();
    if labels.is_empty() {
        "?".to_string()
    } else {
        labels.join(" ⋈ ")
    }
}

/// Appends one `join order:` report line per join node (post-order, so
/// inner joins print before the joins consuming them), with the estimated
/// probe/build cardinalities that justified the chosen order.
fn join_order_lines(
    plan: &LogicalPlan,
    catalog: &Catalog,
    overrides: &HashMap<String, f64>,
    out: &mut String,
) {
    for child in plan.children() {
        join_order_lines(child, catalog, overrides, out);
    }
    if let LogicalPlan::Join { left, right, .. } = plan {
        out.push_str(&format!(
            "join order: {} ⋈ {}  (probe rows≈{:.0}, build rows≈{:.0})\n",
            side_label(left),
            side_label(right),
            rcost::estimate_rows_with(left, catalog, overrides),
            rcost::estimate_rows_with(right, catalog, overrides),
        ));
    }
}

/// Rewrites a residual plan bottom-up, commuting every inner pure-equi
/// join whose build side (the right input — the executor's hash join
/// builds on the right) is estimated larger than its probe side, so the
/// hash table is always the smaller relation. `overrides` supplies
/// cardinalities for the not-yet-materialised `__llm_*` temps, taken from
/// the retrieval-step estimates — join order is thereby costed by the
/// same model that prices the prompts producing each side. A swapped
/// join is wrapped in a projection restoring the original column order,
/// so the rewrite changes nothing downstream except row order (which
/// cost-based mode does not promise).
fn commute_joins(
    plan: LogicalPlan,
    catalog: &Catalog,
    overrides: &HashMap<String, f64>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
            schema,
        } => {
            let left = Box::new(commute_joins(*left, catalog, overrides));
            let right = Box::new(commute_joins(*right, catalog, overrides));
            // Only an inner join with a pure equi condition commutes
            // cleanly: a residual predicate and the outer flavours are
            // resolved against the left ++ right column order.
            let commutable = join_type == galois_sql::ast::JoinType::Inner
                && !condition.equi.is_empty()
                && condition.residual.is_none();
            let probe = rcost::estimate_rows_with(left.as_ref(), catalog, overrides);
            let build = rcost::estimate_rows_with(right.as_ref(), catalog, overrides);
            if !commutable || probe >= build {
                return LogicalPlan::Join {
                    left,
                    right,
                    join_type,
                    condition,
                    schema,
                };
            }
            let l_arity = left.schema().arity();
            let r_arity = right.schema().arity();
            let swapped_schema = galois_relational::PlanSchema::new(
                schema.columns[l_arity..]
                    .iter()
                    .chain(&schema.columns[..l_arity])
                    .cloned()
                    .collect(),
            );
            let swapped = LogicalPlan::Join {
                left: right,
                right: left,
                join_type,
                condition: galois_relational::JoinCondition {
                    equi: condition.equi.into_iter().map(|(l, r)| (r, l)).collect(),
                    residual: None,
                },
                schema: swapped_schema,
            };
            // Restore the original left ++ right column order.
            let exprs = schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, col)| {
                    let src = if i < l_arity {
                        r_arity + i
                    } else {
                        i - l_arity
                    };
                    (
                        galois_relational::ScalarExpr::Column(galois_relational::ResolvedColumn {
                            index: src,
                            binding: col.binding.clone(),
                            name: col.name.clone(),
                            data_type: col.data_type,
                        }),
                        col.name.clone(),
                    )
                })
                .collect();
            LogicalPlan::Project {
                input: Box::new(swapped),
                exprs,
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(commute_joins(*input, catalog, overrides)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(commute_joins(*input, catalog, overrides)),
            exprs,
            schema,
        },
        LogicalPlan::CrossJoin {
            left,
            right,
            schema,
        } => LogicalPlan::CrossJoin {
            left: Box::new(commute_joins(*left, catalog, overrides)),
            right: Box::new(commute_joins(*right, catalog, overrides)),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(commute_joins(*input, catalog, overrides)),
            group_by,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(commute_joins(*input, catalog, overrides)),
            keys,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(commute_joins(*input, catalog, overrides)),
        },
        LogicalPlan::Limit { input, n, offset } => LogicalPlan::Limit {
            input: Box::new(commute_joins(*input, catalog, overrides)),
            n,
            offset,
        },
        leaf @ LogicalPlan::Scan { .. } => leaf,
    }
}

/// Picks the cheapest pushdown variant of one step. Returns the chosen
/// step, its cost, and how many candidates were costed.
fn best_step_variant(
    step: &LlmScanStep,
    catalog: &Catalog,
    params: &PlannerParams,
) -> (LlmScanStep, StepCost, usize) {
    let mut best = step.clone();
    let mut best_cost = estimate_step(step, catalog, params);
    let mut considered = 1;
    if step.scan_condition.is_some() {
        return (best, best_cost, considered);
    }
    for j in 0..step.filter_conditions.len() {
        let mut candidate = step.clone();
        let cond = candidate.filter_conditions.remove(j);
        candidate.scan_condition = Some(cond);
        let cost = estimate_step(&candidate, catalog, params);
        considered += 1;
        // Strict improvement keeps ties on the heuristic shape (and on the
        // lowest j), which keeps the choice deterministic.
        if cost.virtual_ms < best_cost.virtual_ms - 1e-9
            || (cost.virtual_ms <= best_cost.virtual_ms + 1e-9
                && cost.total_prompts() < best_cost.total_prompts() - 1e-9)
        {
            best = candidate;
            best_cost = cost;
        }
    }
    (best, best_cost, considered)
}

/// Chooses a retrieval program for an optimized logical plan.
///
/// * [`Planner::Heuristic`] compiles the plan exactly as the pre-planner
///   pipeline did (bit-identical [`CompiledQuery`]) and merely *annotates*
///   it with cost estimates.
/// * [`Planner::CostBased`] enumerates one pushed-down condition per step
///   (or none), keeps the cheapest, and orders steps longest-first.
pub fn plan_query(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: &CompileOptions,
    planner: Planner,
    params: &PlannerParams,
) -> Result<PlannedQuery> {
    match planner {
        Planner::Heuristic => {
            let compiled = compile(plan, catalog, options)?;
            let steps = compiled
                .steps
                .iter()
                .map(|s| estimate_step(s, catalog, params))
                .collect();
            let limit_hint = crate::compile::limit_hint(&compiled);
            Ok(PlannedQuery {
                report: make_report(planner, 1, steps, params, limit_hint),
                compiled,
            })
        }
        Planner::CostBased => {
            // Start from the no-pushdown compilation so every condition is
            // a candidate, then choose per step.
            let base_options = CompileOptions {
                pushdown: false,
                ..*options
            };
            let mut compiled = compile(plan, catalog, &base_options)?;
            let mut candidates = 0usize;
            let mut costs = Vec::with_capacity(compiled.steps.len());
            for step in &mut compiled.steps {
                let (chosen, cost, considered) = best_step_variant(step, catalog, params);
                *step = chosen;
                costs.push(cost);
                candidates += considered;
            }
            // LPT ordering: the scheduler packs the step wave greedily, so
            // submitting the longest retrieval first minimises the
            // estimated makespan. Stable on the original order for ties.
            let mut order: Vec<usize> = (0..compiled.steps.len()).collect();
            order.sort_by(|&a, &b| {
                costs[b]
                    .virtual_ms
                    .partial_cmp(&costs[a].virtual_ms)
                    .expect("cost estimates are finite")
                    .then(a.cmp(&b))
            });
            let steps: Vec<LlmScanStep> =
                order.iter().map(|&i| compiled.steps[i].clone()).collect();
            let costs: Vec<StepCost> = order.iter().map(|&i| costs[i]).collect();
            compiled.steps = steps;
            // Join-order choice: the executor's hash joins build on the
            // right, so commute inner equi joins until the smaller
            // estimated side — priced with the retrieval-step row
            // estimates for the `__llm_*` temps — is the build side.
            let mut temp_rows: HashMap<String, f64> = HashMap::new();
            for (step, cost) in compiled.steps.iter().zip(&costs) {
                temp_rows.insert(step.temp_name.to_ascii_lowercase(), cost.est_rows_out);
            }
            compiled.plan = commute_joins(compiled.plan, catalog, &temp_rows);
            let limit_hint = crate::compile::limit_hint(&compiled);
            Ok(PlannedQuery {
                report: make_report(planner, candidates.max(1), costs, params, limit_hint),
                compiled,
            })
        }
    }
}

impl PlannedQuery {
    /// Renders the `EXPLAIN` report: every retrieval step with its prompt
    /// protocol and cost estimates, then the residual relational plan with
    /// cardinality annotations, then query totals.
    pub fn render(&self, catalog: &Catalog, params: &PlannerParams) -> String {
        // The batch factor only appears when batching is on, so the
        // `PromptBatch::Off` report stays byte-identical to the pre-batch
        // pipeline's.
        let batch = if params.batch_attrs > 1.0 {
            format!(
                ", batch: {:.0} keys × {:.0} attrs/prompt",
                params.batch_keys, params.batch_attrs
            )
        } else if params.batch_keys > 1.0 {
            format!(", batch: {:.0} keys/prompt", params.batch_keys)
        } else {
            String::new()
        };
        // Likewise the pipeline tag: absent in the default wave mode, so
        // the pre-pipelining report stays byte-identical.
        let pipeline = if params.pipeline_streaming {
            ", pipeline: streaming"
        } else {
            ""
        };
        let mut out = format!(
            "galois plan  (planner: {}, lanes: {}{batch}{pipeline}, candidates considered: {})\n",
            self.report.planner, params.lanes, self.report.candidates_considered
        );
        // The early-termination line appears only when the session knob is
        // on *and* the plan shape is eligible, so every other report stays
        // byte-identical to the pre-limit pipeline's.
        if params.early_stop {
            if let Some(n) = self.report.limit_hint {
                out.push_str(&format!("limit: early-stop after ~{n} keys\n"));
            }
        }
        // The resilience line appears only with the retry knob on, so
        // every `Resilience::Off` report stays byte-identical to the
        // pre-resilience pipeline's.
        if let Some(policy) = &params.resilience {
            out.push_str(&format!(
                "resilience: {} retries, backoff {}ms ×{} (cap {}ms), timeout {}ms, \
                 breaker opens at {}\n",
                policy.max_retries,
                policy.base_backoff_ms,
                policy.multiplier,
                policy.max_backoff_ms,
                policy.timeout_ms,
                policy.breaker_threshold,
            ));
        }
        // The admission line appears only with cross-query scheduling on,
        // so every `Admission::Off` report stays byte-identical to the
        // single-query pipeline's.
        if let Some(policy) = &params.admission {
            let pool = if policy.pool_lanes > 0 {
                format!("{} lanes", policy.pool_lanes)
            } else {
                format!("sessions × {} lanes", params.lanes)
            };
            let inflight = if policy.max_inflight > 0 {
                format!("{} queries", policy.max_inflight)
            } else {
                "unlimited".to_string()
            };
            let quota = if policy.session_quota > 0 {
                format!("{} tasks/session", policy.session_quota)
            } else {
                "unlimited".to_string()
            };
            out.push_str(&format!(
                "admission: shared pool ({pool}), in-flight cap {inflight}, quota {quota}, \
                 share {}\n",
                policy.share,
            ));
        }
        let mut temp_rows: HashMap<String, f64> = HashMap::new();
        for (i, (step, cost)) in self
            .compiled
            .steps
            .iter()
            .zip(&self.report.steps)
            .enumerate()
        {
            crate::compile::render_step_into(step, i, &mut out);
            // Key-universe store line: only when a store is attached, so
            // the store-off report stays byte-identical to the pre-store
            // pipeline's.
            if params.warm_lists.is_some() {
                match params.warm_keys(step) {
                    Some(n) => out.push_str(&format!("    list: warm ({n} keys)\n")),
                    None => out.push_str("    list: cold\n"),
                }
            }
            out.push_str(&format!(
                "    cost: keys≈{:.0}, prompts≈{:.0} ({:.0} list + {:.0} filter + {:.0} fetch), \
                 cache hits≈{:.0}, virtual≈{:.0} ms\n",
                cost.est_keys_listed,
                cost.total_prompts(),
                cost.list_prompts,
                cost.filter_prompts,
                cost.fetch_prompts,
                cost.expected_cache_hits,
                cost.virtual_ms,
            ));
            temp_rows.insert(step.temp_name.to_ascii_lowercase(), cost.est_rows_out);
        }
        // Join-order lines accompany the cost-based planner's build-side
        // choice; the heuristic report stays byte-identical without them.
        if self.report.planner == Planner::CostBased {
            join_order_lines(&self.compiled.plan, catalog, &temp_rows, &mut out);
        }
        out.push_str("[relational plan]\n");
        out.push_str(&rcost::explain_with_rows_overridden(
            &self.compiled.plan,
            catalog,
            &temp_rows,
        ));
        out.push_str(&format!(
            "total: prompts≈{:.0}, cache hits≈{:.0}, virtual≈{:.0} ms\n",
            self.report.est_total_prompts, self.report.est_cache_hits, self.report.est_virtual_ms,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_dataset::Scenario;

    fn planned(sql: &str, planner: Planner, params: &PlannerParams) -> PlannedQuery {
        let s = Scenario::generate(42);
        let plan = s.database.plan(sql).unwrap();
        plan_query(
            &plan,
            s.database.catalog(),
            &CompileOptions::default(),
            planner,
            params,
        )
        .unwrap()
    }

    #[test]
    fn heuristic_matches_direct_compilation_bit_for_bit() {
        let s = Scenario::generate(42);
        for sql in [
            "SELECT name FROM city WHERE population > 1000000",
            "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name",
            "SELECT continent, COUNT(*) FROM country GROUP BY continent",
        ] {
            let plan = s.database.plan(sql).unwrap();
            let options = CompileOptions::default();
            let direct = compile(&plan, s.database.catalog(), &options).unwrap();
            let chosen = plan_query(
                &plan,
                s.database.catalog(),
                &options,
                Planner::Heuristic,
                &PlannerParams::default(),
            )
            .unwrap();
            assert_eq!(chosen.compiled, direct, "{sql}");
            assert_eq!(chosen.report.candidates_considered, 1);
        }
    }

    #[test]
    fn cost_based_pushes_a_selective_condition() {
        let params = PlannerParams::default();
        let q = "SELECT name FROM city WHERE population > 1000000";
        let heuristic = planned(q, Planner::Heuristic, &params);
        let cost_based = planned(q, Planner::CostBased, &params);
        assert!(heuristic.compiled.steps[0].scan_condition.is_none());
        assert!(cost_based.compiled.steps[0].scan_condition.is_some());
        assert!(cost_based.compiled.steps[0].filter_conditions.is_empty());
        assert!(
            cost_based.report.est_total_prompts < heuristic.report.est_total_prompts,
            "{} vs {}",
            cost_based.report.est_total_prompts,
            heuristic.report.est_total_prompts
        );
        assert!(cost_based.report.est_virtual_ms <= heuristic.report.est_virtual_ms);
        assert!(cost_based.report.candidates_considered > 1);
    }

    #[test]
    fn cost_based_pushes_the_cheapest_of_several_conditions() {
        let params = PlannerParams::default();
        // Eq is more selective than a range: the planner should push it.
        let q = "SELECT name FROM city WHERE population > 100 AND country = 'Veladria'";
        let cost_based = planned(q, Planner::CostBased, &params);
        let step = &cost_based.compiled.steps[0];
        let pushed = step.scan_condition.as_ref().expect("one condition pushed");
        assert_eq!(pushed.attribute, "country");
        assert_eq!(step.filter_conditions.len(), 1);
        assert_eq!(step.filter_conditions[0].attribute, "population");
    }

    #[test]
    fn cost_based_orders_steps_longest_first() {
        let params = PlannerParams {
            lanes: 8,
            ..Default::default()
        };
        let q = "SELECT p.name, r.electionYear, r.party, r.birthDate \
                 FROM city p, cityMayor r WHERE p.mayor = r.name";
        let planned = planned(q, Planner::CostBased, &params);
        let costs = &planned.report.steps;
        assert_eq!(costs.len(), 2);
        assert!(costs[0].virtual_ms >= costs[1].virtual_ms);
    }

    /// The first join node under `plan`, if any.
    fn first_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
        if matches!(plan, LogicalPlan::Join { .. }) {
            return Some(plan);
        }
        plan.children().into_iter().find_map(first_join)
    }

    #[test]
    fn cost_based_builds_hash_joins_on_the_smaller_side() {
        let params = PlannerParams::default();
        // The filtered city side is estimated smaller than the unfiltered
        // mayor scan; the executor builds its hash table on the right, so
        // the cost-based plan commutes the join (and restores the column
        // order with a projection), while the heuristic leaves the
        // FROM-clause order untouched.
        let q = "SELECT p.name, r.electionYear FROM city p, cityMayor r \
                 WHERE p.mayor = r.name AND p.population > 1000000";
        let side = |planned: &PlannedQuery| -> (String, String) {
            let Some(LogicalPlan::Join { left, right, .. }) = first_join(&planned.compiled.plan)
            else {
                panic!("no join in the residual plan");
            };
            (side_label(left), side_label(right))
        };
        let (h_probe, h_build) = side(&planned(q, Planner::Heuristic, &params));
        assert_eq!((h_probe.as_str(), h_build.as_str()), ("p", "r"));
        let cost_based = planned(q, Planner::CostBased, &params);
        let (c_probe, c_build) = side(&cost_based);
        assert_eq!(
            (c_probe.as_str(), c_build.as_str()),
            ("r", "p"),
            "smaller side must build"
        );
        // The column-restoring projection keeps the output schema the
        // heuristic plan produces.
        let s = Scenario::generate(42);
        let h = plan_query(
            &s.database.plan(q).unwrap(),
            s.database.catalog(),
            &CompileOptions::default(),
            Planner::Heuristic,
            &params,
        )
        .unwrap();
        assert_eq!(
            cost_based.compiled.plan.schema().columns,
            h.compiled.plan.schema().columns
        );
    }

    #[test]
    fn equal_sides_keep_the_from_clause_join_order() {
        // No filter on either side: both temps are estimated at the
        // catalog cardinality of their concept, and a tie must not swap
        // (keeps the heuristic shape deterministic to diff against).
        let q = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let cost_based = planned(q, Planner::CostBased, &PlannerParams::default());
        let Some(LogicalPlan::Join { left, right, .. }) = first_join(&cost_based.compiled.plan)
        else {
            panic!("no join in the residual plan");
        };
        assert_eq!(side_label(left), "p");
        assert_eq!(side_label(right), "r");
    }

    #[test]
    fn render_shows_join_order_only_under_cost_based_planning() {
        let s = Scenario::generate(42);
        let params = PlannerParams::default();
        let plan = s
            .database
            .plan(
                "SELECT p.name, r.electionYear FROM city p, cityMayor r \
                 WHERE p.mayor = r.name AND p.population > 1000000",
            )
            .unwrap();
        let render = |planner: Planner| {
            plan_query(
                &plan,
                s.database.catalog(),
                &CompileOptions::default(),
                planner,
                &params,
            )
            .unwrap()
            .render(s.database.catalog(), &params)
        };
        assert!(!render(Planner::Heuristic).contains("join order:"));
        let text = render(Planner::CostBased);
        assert!(
            text.contains("join order: r ⋈ p"),
            "commuted order must be reported:\n{text}"
        );
        assert!(text.contains("probe rows≈"), "{text}");
        assert!(text.contains("build rows≈"), "{text}");
    }

    #[test]
    fn render_shows_the_early_stop_window_only_when_enabled() {
        let s = Scenario::generate(42);
        let off = PlannerParams::default();
        let on = PlannerParams::default().with_early_stop(true);
        let render = |sql: &str, params: &PlannerParams| {
            plan_query(
                &s.database.plan(sql).unwrap(),
                s.database.catalog(),
                &CompileOptions::default(),
                Planner::Heuristic,
                params,
            )
            .unwrap()
            .render(s.database.catalog(), params)
        };
        let q = "SELECT name FROM city LIMIT 7 OFFSET 2";
        assert!(!render(q, &off).contains("limit:"));
        assert!(
            render(q, &on).contains("limit: early-stop after ~9 keys"),
            "{}",
            render(q, &on)
        );
        // Ineligible shapes (no LIMIT window over the sole scan) stay
        // tag-free even with the knob on.
        let plain = "SELECT name FROM city";
        assert!(!render(plain, &on).contains("limit:"));
        let sorted = "SELECT name FROM city ORDER BY population LIMIT 7";
        assert!(!render(sorted, &on).contains("limit:"));
    }

    #[test]
    fn stats_calibrate_params() {
        let stats = ClientStats {
            prompts: 100,
            cache_hits: 100,
            batches: 10,
            serial_ms: 10 * BATCH_OVERHEAD_MS + 100 * 40,
            ..Default::default()
        };
        let p = PlannerParams::from_session(20, Parallelism::new(4), &stats);
        assert!((p.prompt_latency_ms - 40.0).abs() < 1e-9);
        assert!((p.cache_hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(p.lanes, 4);
        // Cold start keeps the defaults.
        let cold = PlannerParams::from_session(20, Parallelism::new(1), &ClientStats::default());
        assert_eq!(cold.prompt_latency_ms, DEFAULT_PROMPT_LATENCY_MS);
        assert_eq!(cold.cache_hit_rate, 0.0);
    }

    #[test]
    fn batch_keys_of_one_matches_unbatched_estimates_exactly() {
        let q = "SELECT name, population FROM city WHERE elevation < 100";
        let base = planned(q, Planner::CostBased, &PlannerParams::default());
        let one = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default().with_batch_keys(1),
        );
        assert_eq!(base.report, one.report);
        assert_eq!(base.compiled, one.compiled);
    }

    #[test]
    fn batching_shrinks_estimated_prompts_and_virtual_time() {
        let q = "SELECT name, population FROM city WHERE elevation < 100";
        let base = planned(q, Planner::CostBased, &PlannerParams::default());
        let batched = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default().with_batch_keys(10),
        );
        assert!(
            batched.report.est_total_prompts < base.report.est_total_prompts,
            "{} vs {}",
            batched.report.est_total_prompts,
            base.report.est_total_prompts
        );
        assert!(batched.report.est_virtual_ms < base.report.est_virtual_ms);
        // A fused prompt is charged by answer volume, not per key: ten
        // keys cost less than ten prompts but more than one.
        let p = PlannerParams::default();
        assert!(p.fused_prompt_latency_ms(10.0) > p.prompt_latency_ms);
        assert!(p.fused_prompt_latency_ms(10.0) < 10.0 * p.prompt_latency_ms);
        assert_eq!(p.fused_prompt_latency_ms(1.0), p.prompt_latency_ms);
    }

    #[test]
    fn batch_attrs_of_one_matches_per_column_estimates_exactly() {
        let q = "SELECT name, population, country FROM city WHERE elevation < 100";
        let base = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default().with_batch_keys(10),
        );
        let one = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default()
                .with_batch_keys(10)
                .with_batch_attrs(1),
        );
        assert_eq!(base.report, one.report);
        assert_eq!(base.compiled, one.compiled);
    }

    #[test]
    fn grid_shrinks_estimated_fetch_prompts() {
        let q = "SELECT name, population, country FROM city WHERE elevation < 100";
        let keys_only = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default().with_batch_keys(10),
        );
        let grid = planned(
            q,
            Planner::CostBased,
            &PlannerParams::default()
                .with_batch_keys(10)
                .with_batch_attrs(4),
        );
        let keys_fetch: f64 = keys_only.report.steps.iter().map(|c| c.fetch_prompts).sum();
        let grid_fetch: f64 = grid.report.steps.iter().map(|c| c.fetch_prompts).sum();
        assert!(
            grid_fetch < keys_fetch,
            "grid {grid_fetch} vs keys-only {keys_fetch}"
        );
        assert!(grid.report.est_total_prompts < keys_only.report.est_total_prompts);
        assert!(grid.report.est_virtual_ms < keys_only.report.est_virtual_ms);
    }

    #[test]
    fn render_shows_grid_batch_tag() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name, population FROM city WHERE elevation < 100")
            .unwrap();
        let grid = PlannerParams::default()
            .with_batch_keys(10)
            .with_batch_attrs(4);
        let text = plan_query(
            &plan,
            s.database.catalog(),
            &CompileOptions::default(),
            Planner::CostBased,
            &grid,
        )
        .unwrap()
        .render(s.database.catalog(), &grid);
        assert!(text.contains("batch: 10 keys × 4 attrs/prompt"), "{text}");
        assert!(!text.contains("keys/prompt"), "{text}");
    }

    #[test]
    fn render_shows_batch_factor_only_when_batching() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let off = PlannerParams::default();
        let on = PlannerParams::default().with_batch_keys(10);
        let render = |params: &PlannerParams| {
            plan_query(
                &plan,
                s.database.catalog(),
                &CompileOptions::default(),
                Planner::CostBased,
                params,
            )
            .unwrap()
            .render(s.database.catalog(), params)
        };
        assert!(!render(&off).contains("batch:"));
        assert!(render(&on).contains("batch: 10 keys/prompt"));
    }

    #[test]
    fn pipeline_estimate_beats_the_wave_sum_with_lanes_and_loses_without() {
        let q = "SELECT name, population FROM city WHERE elevation < 100";
        // Calibrated-style latency (the cold-start 150 ms default makes
        // fused-answer decode so expensive that the estimator correctly
        // prefers the wave's within-batch lane packing on this query).
        let wave = PlannerParams {
            lanes: 8,
            prompt_latency_ms: 40.0,
            ..Default::default()
        }
        .with_batch_keys(10);
        let streaming = wave.clone().with_pipeline(true);
        let a = planned(q, Planner::CostBased, &wave);
        let b = planned(q, Planner::CostBased, &streaming);
        // Same prompts — streaming only removes the barriers.
        assert_eq!(a.report.est_total_prompts, b.report.est_total_prompts);
        assert!(
            b.report.est_virtual_ms < a.report.est_virtual_ms,
            "streaming {} vs wave {}",
            b.report.est_virtual_ms,
            a.report.est_virtual_ms
        );
        // With one lane the per-micro-batch overheads serialise: the
        // estimate must reflect that streaming is the wrong choice there.
        let one_wave = PlannerParams {
            prompt_latency_ms: 40.0,
            ..Default::default()
        }
        .with_batch_keys(10);
        let one_stream = one_wave.clone().with_pipeline(true);
        let c = planned(q, Planner::CostBased, &one_wave);
        let d = planned(q, Planner::CostBased, &one_stream);
        assert!(
            d.report.est_virtual_ms >= c.report.est_virtual_ms,
            "single-lane streaming {} must not beat the wave {}",
            d.report.est_virtual_ms,
            c.report.est_virtual_ms
        );
    }

    #[test]
    fn pipeline_off_reproduces_wave_estimates_bit_for_bit() {
        let q = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let base = PlannerParams {
            lanes: 8,
            ..Default::default()
        };
        let a = planned(q, Planner::CostBased, &base);
        let b = planned(q, Planner::CostBased, &base.clone().with_pipeline(false));
        assert_eq!(a.report, b.report);
        assert_eq!(a.compiled, b.compiled);
    }

    #[test]
    fn render_shows_pipeline_only_when_streaming() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let off = PlannerParams::default();
        let on = PlannerParams::default().with_pipeline(true);
        let render = |params: &PlannerParams| {
            plan_query(
                &plan,
                s.database.catalog(),
                &CompileOptions::default(),
                Planner::CostBased,
                params,
            )
            .unwrap()
            .render(s.database.catalog(), params)
        };
        assert!(!render(&off).contains("pipeline:"));
        assert!(render(&on).contains("pipeline: streaming"));
    }

    #[test]
    fn render_shows_resilience_only_when_on() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let off = PlannerParams::default();
        let on = PlannerParams::default().with_resilience(Some(RetryPolicy::default()));
        let render = |params: &PlannerParams| {
            plan_query(
                &plan,
                s.database.catalog(),
                &CompileOptions::default(),
                Planner::CostBased,
                params,
            )
            .unwrap()
            .render(s.database.catalog(), params)
        };
        assert!(!render(&off).contains("resilience:"));
        let report = render(&on);
        assert!(report.contains("resilience: 4 retries"));
        assert!(report.contains("breaker opens at 8"));
        // The knob adds one line and changes nothing else.
        let stripped: String = report
            .lines()
            .filter(|l| !l.starts_with("resilience:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, render(&off));
    }

    #[test]
    fn render_shows_admission_only_when_on() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let off = PlannerParams::default();
        let on = PlannerParams {
            lanes: 8,
            ..Default::default()
        }
        .with_admission(Some(crate::session::AdmissionPolicy {
            max_inflight: 4,
            ..Default::default()
        }));
        let render = |params: &PlannerParams| {
            plan_query(
                &plan,
                s.database.catalog(),
                &CompileOptions::default(),
                Planner::CostBased,
                params,
            )
            .unwrap()
            .render(s.database.catalog(), params)
        };
        assert!(!render(&off).contains("admission:"));
        let report = render(&on);
        assert!(report.contains("admission: shared pool (sessions × 8 lanes)"));
        assert!(report.contains("in-flight cap 4 queries"));
        assert!(report.contains("share deficit-ms"));
        // The knob adds one line and changes nothing else.
        let stripped: String = report
            .lines()
            .filter(|l| !l.starts_with("admission:"))
            .map(|l| format!("{l}\n"))
            .collect();
        let off_at_8 = PlannerParams {
            lanes: 8,
            ..Default::default()
        };
        assert_eq!(stripped, render(&off_at_8));
    }

    #[test]
    fn render_admission_names_explicit_pool_and_quota() {
        let s = Scenario::generate(42);
        let plan = s
            .database
            .plan("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        let params =
            PlannerParams::default().with_admission(Some(crate::session::AdmissionPolicy {
                pool_lanes: 64,
                max_inflight: 0,
                session_quota: 2,
                share: galois_llm::FairShare::RoundRobin,
            }));
        let report = plan_query(
            &plan,
            s.database.catalog(),
            &CompileOptions::default(),
            Planner::CostBased,
            &params,
        )
        .unwrap()
        .render(s.database.catalog(), &params);
        assert!(report.contains("admission: shared pool (64 lanes)"));
        assert!(report.contains("in-flight cap unlimited"));
        assert!(report.contains("quota 2 tasks/session"));
        assert!(report.contains("share round-robin"));
    }

    #[test]
    fn lanes_shrink_estimated_virtual_time() {
        let q = "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name";
        let seq = planned(q, Planner::CostBased, &PlannerParams::default());
        let par = planned(
            q,
            Planner::CostBased,
            &PlannerParams {
                lanes: 8,
                ..Default::default()
            },
        );
        assert!(par.report.est_virtual_ms < seq.report.est_virtual_ms);
    }

    #[test]
    fn render_reports_steps_costs_and_residual_plan() {
        let s = Scenario::generate(42);
        let params = PlannerParams::default();
        let plan = s
            .database
            .plan("SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name")
            .unwrap();
        let chosen = plan_query(
            &plan,
            s.database.catalog(),
            &CompileOptions::default(),
            Planner::CostBased,
            &params,
        )
        .unwrap();
        let text = chosen.render(s.database.catalog(), &params);
        assert!(text.contains("planner: cost-based"));
        assert!(text.contains("[LLM step 1] scan"));
        assert!(text.contains("cost: keys≈"));
        assert!(text.contains("[relational plan]"));
        assert!(text.contains("rows≈"));
        assert!(text.contains("total: prompts≈"));
    }
}
