//! Data cleaning and normalisation (paper §4): "we normalize every string
//! expressing a numerical value (say, 1k) into a number (1000). The
//! enforcing of type and domain constraints is a simple but crucial step
//! to limit the incorrect output due to model hallucinations."
//!
//! [`clean_to_type`] turns raw answer strings into typed [`Value`]s under
//! a [`CleaningPolicy`]; the policy's `normalise=false` setting is the
//! paper's implicit ablation (only strictly-formatted values survive),
//! reproduced by `ablation_cleaning`.

use galois_relational::{DataType, Date, Value};

/// Knobs of the cleaning stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningPolicy {
    /// Normalise flexible formats ("2.8 million", "2,800,000", "May 8,
    /// 1961"). When off, only plainly-typed strings parse.
    pub normalise: bool,
    /// Enforce basic domain constraints (finite numbers, sane magnitude,
    /// valid calendar dates).
    pub enforce_domains: bool,
}

impl Default for CleaningPolicy {
    fn default() -> Self {
        CleaningPolicy {
            normalise: true,
            enforce_domains: true,
        }
    }
}

impl CleaningPolicy {
    /// The ablation policy: no normalisation, no domain checks.
    pub fn disabled() -> Self {
        CleaningPolicy {
            normalise: false,
            enforce_domains: false,
        }
    }
}

/// Cleans a raw answer string into a value of the expected type.
/// `None` means the cell is unusable (becomes SQL NULL).
pub fn clean_to_type(raw: &str, ty: DataType, policy: &CleaningPolicy) -> Option<Value> {
    let s = normalise_whitespace(raw);
    if s.is_empty() || s.eq_ignore_ascii_case("unknown") || s.eq_ignore_ascii_case("n/a") {
        return None;
    }
    match ty {
        DataType::Text => Some(Value::Text(s)),
        DataType::Int => {
            let n = parse_number(&s, policy)?;
            if policy.enforce_domains && !(n.is_finite() && n.abs() < 9.2e18) {
                return None;
            }
            Some(Value::Int(n.round() as i64))
        }
        DataType::Float => {
            let n = parse_number(&s, policy)?;
            if policy.enforce_domains && !n.is_finite() {
                return None;
            }
            Some(Value::Float(n))
        }
        DataType::Bool => match s.to_ascii_lowercase().as_str() {
            "yes" | "true" | "1" => Some(Value::Bool(true)),
            "no" | "false" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        DataType::Date => parse_date(&s, policy).map(Value::Date),
    }
}

fn normalise_whitespace(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Parses a number from flexible English renderings.
pub fn parse_number(raw: &str, policy: &CleaningPolicy) -> Option<f64> {
    let mut s = raw.trim().to_ascii_lowercase();
    if !policy.normalise {
        return s.parse::<f64>().ok();
    }
    for prefix in [
        "about",
        "approximately",
        "around",
        "roughly",
        "~",
        "almost",
        "nearly",
    ] {
        if let Some(rest) = s.strip_prefix(prefix) {
            s = rest.trim().to_string();
        }
    }
    // Strip currency-ish decorations.
    let s = s
        .trim_start_matches(['$', '€', '£'])
        .trim_end_matches(" people")
        .trim_end_matches(" credits")
        .trim()
        .to_string();

    // Word multipliers: "2.8 million", "1.2 billion", "5 thousand".
    for (word, mult) in [
        (" million", 1e6),
        (" billion", 1e9),
        (" thousand", 1e3),
        (" trillion", 1e12),
    ] {
        if let Some(head) = s.strip_suffix(word) {
            return parse_grouped(head).map(|v| v * mult);
        }
    }
    // Suffix multipliers: "500k", "2.8m", "1.2bn", "3b".
    for (suffix, mult) in [("bn", 1e9), ("k", 1e3), ("m", 1e6), ("b", 1e9)] {
        if let Some(head) = s.strip_suffix(suffix) {
            // Avoid eating the end of a word ("berlin" ends with 'n').
            if head
                .chars()
                .last()
                .is_some_and(|c| c.is_ascii_digit() || c == '.')
            {
                return parse_grouped(head).map(|v| v * mult);
            }
        }
    }
    parse_grouped(&s)
}

fn parse_grouped(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Remove thousands separators only when they look like grouping.
    let cleaned: String = if looks_grouped(s) {
        s.chars().filter(|c| *c != ',').collect()
    } else {
        s.to_string()
    };
    cleaned.parse::<f64>().ok()
}

fn looks_grouped(s: &str) -> bool {
    if !s.contains(',') {
        return false;
    }
    let unsigned = s.strip_prefix('-').unwrap_or(s);
    let parts: Vec<&str> = unsigned.split(',').collect();
    if parts.is_empty() || parts[0].is_empty() || parts[0].len() > 3 {
        return false;
    }
    parts[1..].iter().all(|p| {
        p.len() == 3 && p.chars().all(|c| c.is_ascii_digit())
            || (p.contains('.')
                && p.split('.')
                    .next()
                    .is_some_and(|h| h.len() == 3 && h.chars().all(|c| c.is_ascii_digit())))
    })
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Parses a date from ISO (`1961-05-08`), US (`05/08/1961`) or long
/// (`May 8, 1961`) form.
pub fn parse_date(raw: &str, policy: &CleaningPolicy) -> Option<Date> {
    let s = raw.trim();
    // ISO always accepted (that is a "plainly typed" rendering).
    if let Ok(d) = Date::parse_iso(s) {
        return Some(d);
    }
    if !policy.normalise {
        return None;
    }
    // US form MM/DD/YYYY.
    let parts: Vec<&str> = s.split('/').collect();
    if parts.len() == 3 {
        let m: u8 = parts[0].parse().ok()?;
        let d: u8 = parts[1].parse().ok()?;
        let y: i32 = parts[2].parse().ok()?;
        return Date::new(y, m, d).ok();
    }
    // Long form "May 8, 1961".
    let lower = s.to_ascii_lowercase();
    for (i, month) in MONTHS.iter().enumerate() {
        if let Some(rest) = lower.strip_prefix(month) {
            let rest = rest.trim().trim_end_matches('.');
            let (day_s, year_s) = rest.split_once(',')?;
            let d: u8 = day_s.trim().parse().ok()?;
            let y: i32 = year_s.trim().parse().ok()?;
            return Date::new(y, (i + 1) as u8, d).ok();
        }
    }
    None
}

/// Normalises a text cell for joining/matching: trims, collapses
/// whitespace, strips enclosing quotes and trailing punctuation.
pub fn normalise_text(raw: &str) -> String {
    normalise_whitespace(
        raw.trim()
            .trim_end_matches(['.', ';'])
            .trim_matches(|c: char| c == '"' || c == '\''),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> CleaningPolicy {
        CleaningPolicy::default()
    }

    #[test]
    fn numbers_in_all_formats() {
        let p = on();
        assert_eq!(parse_number("2800000", &p), Some(2_800_000.0));
        assert_eq!(parse_number("2,800,000", &p), Some(2_800_000.0));
        assert_eq!(parse_number("2.8 million", &p), Some(2_800_000.0));
        assert_eq!(parse_number("500k", &p), Some(500_000.0));
        assert_eq!(parse_number("1.2 billion", &p), Some(1_200_000_000.0));
        assert_eq!(parse_number("about 1,234", &p), Some(1234.0));
        assert_eq!(parse_number("~42", &p), Some(42.0));
        assert_eq!(parse_number("-3.5", &p), Some(-3.5));
        assert_eq!(parse_number("1k", &p), Some(1000.0));
    }

    #[test]
    fn non_numbers_rejected() {
        let p = on();
        assert_eq!(parse_number("Rome", &p), None);
        assert_eq!(parse_number("", &p), None);
        assert_eq!(parse_number("berlin", &p), None); // 'n' suffix guard
        assert_eq!(parse_number("12abc", &p), None);
    }

    #[test]
    fn grouped_detection_is_strict() {
        let p = on();
        // "1,23" is not thousand-grouping → unparseable.
        assert_eq!(parse_number("1,23", &p), None);
        assert_eq!(parse_number("12,345.67", &p), Some(12345.67));
    }

    #[test]
    fn cleaning_off_only_accepts_plain() {
        let p = CleaningPolicy::disabled();
        assert_eq!(parse_number("2800000", &p), Some(2_800_000.0));
        assert_eq!(parse_number("2,800,000", &p), None);
        assert_eq!(parse_number("2.8 million", &p), None);
    }

    #[test]
    fn dates_in_all_formats() {
        let p = on();
        let expect = Date::new(1961, 5, 8).unwrap();
        assert_eq!(parse_date("1961-05-08", &p), Some(expect));
        assert_eq!(parse_date("05/08/1961", &p), Some(expect));
        assert_eq!(parse_date("May 8, 1961", &p), Some(expect));
        assert_eq!(parse_date("not a date", &p), None);
        // Invalid calendar dates rejected.
        assert_eq!(parse_date("02/30/1961", &p), None);
    }

    #[test]
    fn dates_without_cleaning_are_iso_only() {
        let p = CleaningPolicy::disabled();
        assert!(parse_date("1961-05-08", &p).is_some());
        assert!(parse_date("May 8, 1961", &p).is_none());
    }

    #[test]
    fn clean_to_type_int_rounds_and_bounds() {
        let p = on();
        assert_eq!(
            clean_to_type("2.8 million", DataType::Int, &p),
            Some(Value::Int(2_800_000))
        );
        assert_eq!(clean_to_type("1e30", DataType::Int, &p), None);
        assert_eq!(clean_to_type("Unknown", DataType::Int, &p), None);
    }

    #[test]
    fn clean_to_type_text_normalises_whitespace() {
        let p = on();
        assert_eq!(
            clean_to_type("  New   York ", DataType::Text, &p),
            Some(Value::Text("New York".into()))
        );
    }

    #[test]
    fn clean_to_type_bool() {
        let p = on();
        assert_eq!(
            clean_to_type("Yes", DataType::Bool, &p),
            Some(Value::Bool(true))
        );
        assert_eq!(
            clean_to_type("no", DataType::Bool, &p),
            Some(Value::Bool(false))
        );
        assert_eq!(clean_to_type("maybe", DataType::Bool, &p), None);
    }

    #[test]
    fn normalise_text_strips_decorations() {
        assert_eq!(normalise_text("  'Rome'. "), "Rome");
        assert_eq!(normalise_text("New   York"), "New York");
    }
}
