//! Prompt construction (paper §4 "Prompts", Figure 4).
//!
//! Each logical operator renders to a question line via the protocol in
//! [`galois_llm::intent`]; this module wraps that line in a model-specific
//! preamble. GPT-style models get the paper's Figure 4 few-shot QA
//! preamble; instruction-tuned T5 models (Flan/Tk) get a compact
//! instruction, as the paper "construct\[s\] prompts appropriately for each
//! model".

use galois_llm::intent::{render_fetch_attr_parts, render_task, TaskIntent};

/// The paper's Figure 4 preamble, verbatim.
pub const FIGURE4_PREAMBLE: &str = "\
I am a highly intelligent question answering bot. If you ask me a question \
that is rooted in truth, I will give you the short answer. If you ask me a \
question that is nonsense, trickery, or has no clear answer, I will respond \
with \"Unknown\". If the answer is numerical, I will return the number only.

Q: What is human life expectancy in the United States?
A: 78.
Q: Who was president of the United States in 1955?
A: Dwight D. Eisenhower.
Q: What is the capital of France?
A: Paris.
Q: What is a continent starting with letter O?
A: Oceania.
Q: Where were the 1992 Olympics held?
A: Barcelona.
Q: How many squigs are in a bonk?
A: Unknown
";

/// Compact instruction for small instruction-tuned models.
pub const INSTRUCT_PREAMBLE: &str = "\
Answer the question concisely and exactly. If the answer is unknown, say \
\"Unknown\".
";

/// A fixed, manually-crafted chain-of-thought exemplar used by the `T_C_M`
/// baseline (paper §5: "the CoT example in the prompt is fixed as how to
/// derive a decomposition automatically from t is an open problem").
pub const COT_EXEMPLAR: &str = "\
Q: List the name of every city whose mayor was elected after 2018.
A: Let's think step by step.
Step 1: list the cities I know: Rome, Paris, Berlin.
Step 2: for each city, find its mayor and the election year: Rome -> 2016, \
Paris -> 2020, Berlin -> 2021.
Step 3: keep the cities whose year is after 2018: Paris, Berlin.
The answer is: Paris, Berlin.
";

/// Builds full prompts for a given model family.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    preamble: &'static str,
    /// The static `"{preamble}\nQ: "` prefix, formatted once at
    /// construction: `task`/`question` run once per retrieval unit on the
    /// hot path, and re-rendering the few-shot preamble there is pure
    /// waste (measured by the `prompts` microbench in `crates/bench`).
    question_prefix: String,
}

impl PromptBuilder {
    /// Picks the preamble appropriate for the model (by profile name).
    pub fn for_model(model_name: &str) -> Self {
        let preamble = match model_name {
            "flan" | "tk" => INSTRUCT_PREAMBLE,
            _ => FIGURE4_PREAMBLE,
        };
        PromptBuilder {
            preamble,
            question_prefix: format!("{preamble}\nQ: "),
        }
    }

    /// Full prompt for one operator task.
    pub fn task(&self, intent: &TaskIntent) -> String {
        self.wrap(&render_task(intent))
    }

    /// Full prompt for a plain NL question (QA baseline, `T_M`).
    pub fn question(&self, question: &str) -> String {
        self.wrap(question)
    }

    /// Appends a question to the precomputed prefix with one exact-size
    /// allocation.
    fn wrap(&self, question: &str) -> String {
        let mut prompt =
            String::with_capacity(self.question_prefix.len() + question.len() + "\nA:".len());
        prompt.push_str(&self.question_prefix);
        prompt.push_str(question);
        prompt.push_str("\nA:");
        prompt
    }

    /// Full prompt for the chain-of-thought baseline (`T_C_M`).
    pub fn question_cot(&self, question: &str) -> String {
        format!(
            "{}\n{}\nQ: {question}\nA: Let's think step by step.",
            self.preamble, COT_EXEMPLAR
        )
    }

    /// Precomputes the per-cell fetch prompt template of one `(relation,
    /// key attribute, fetched attribute)` cell: everything but the key —
    /// preamble, question lead-in, relation, attribute, answer instruction
    /// — is rendered once, and the per-key hot loop of the fetch phase
    /// becomes two appends around the key ([`FetchTemplate::render`]).
    /// Same shape as the `cell_sig_prefix` hoist of the batched protocol;
    /// the `prompts` criterion bench measures the before/after.
    pub fn fetch_template(&self, relation: &str, key_attr: &str, attribute: &str) -> FetchTemplate {
        let (q_prefix, q_suffix) = render_fetch_attr_parts(relation, key_attr, attribute);
        FetchTemplate {
            prefix: format!("{}{q_prefix}", self.question_prefix),
            suffix: format!("{q_suffix}\nA:"),
        }
    }
}

/// A pre-rendered single-attribute fetch prompt with a hole for the key
/// (see [`PromptBuilder::fetch_template`]). Rendering through the template
/// is byte-identical to [`PromptBuilder::task`] on the equivalent
/// [`TaskIntent::FetchAttr`] — the parts come from the same
/// [`render_fetch_attr_parts`] the render arm uses.
#[derive(Debug, Clone)]
pub struct FetchTemplate {
    prefix: String,
    suffix: String,
}

impl FetchTemplate {
    /// The full prompt for one key, in one exact-size allocation.
    pub fn render(&self, key: &str) -> String {
        let mut prompt = String::with_capacity(self.prefix.len() + key.len() + self.suffix.len());
        prompt.push_str(&self.prefix);
        prompt.push_str(key);
        prompt.push_str(&self.suffix);
        prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_llm::intent::parse_task;

    fn list_task() -> TaskIntent {
        TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec![]),
        }
    }

    #[test]
    fn gpt_prompt_contains_figure4_examples() {
        let p = PromptBuilder::for_model("gpt3").task(&list_task());
        assert!(p.contains("highly intelligent question answering bot"));
        assert!(p.contains("1992 Olympics"));
        assert!(p.ends_with("A:"));
    }

    #[test]
    fn small_model_prompt_is_compact() {
        let p = PromptBuilder::for_model("flan").task(&list_task());
        assert!(!p.contains("Olympics"));
        assert!(p.len() < 400);
    }

    #[test]
    fn task_prompt_roundtrips_through_protocol_parser() {
        let t = list_task();
        let p = PromptBuilder::for_model("chatgpt").task(&t);
        assert_eq!(parse_task(&p), Some(t));
    }

    #[test]
    fn precomputed_prefix_matches_naive_formatting() {
        for model in ["gpt3", "chatgpt", "flan", "tk"] {
            let b = PromptBuilder::for_model(model);
            let t = list_task();
            assert_eq!(
                b.task(&t),
                format!("{}\nQ: {}\nA:", b.preamble, render_task(&t)),
                "{model}"
            );
            assert_eq!(
                b.question("How many cities exist?"),
                format!("{}\nQ: How many cities exist?\nA:", b.preamble),
                "{model}"
            );
        }
    }

    #[test]
    fn fetch_template_matches_task_rendering_byte_for_byte() {
        for model in ["gpt3", "chatgpt", "flan", "tk"] {
            let b = PromptBuilder::for_model(model);
            let template = b.fetch_template("city", "name", "population");
            for key in ["Rome", "Val d'Oro: east", "A, B"] {
                let direct = b.task(&TaskIntent::FetchAttr {
                    relation: "city".into(),
                    key_attr: "name".into(),
                    key: key.into(),
                    attribute: "population".into(),
                });
                assert_eq!(template.render(key), direct, "{model} / {key}");
            }
        }
    }

    #[test]
    fn cot_prompt_has_exemplar_and_marker() {
        let p = PromptBuilder::for_model("chatgpt").question_cot("How many cities exist?");
        assert!(p.contains("step by step"));
        assert!(p.contains("Step 1"));
    }
}
