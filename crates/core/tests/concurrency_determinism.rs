//! Determinism under concurrency: the prompt scheduler must be
//! *observationally invisible*.
//!
//! For any parallelism level, a query must yield the identical `R_M`
//! relation, identical per-kind prompt counts, identical cache-hit totals
//! and identical single-lane virtual time as the strictly sequential path
//! — only the lane-packed virtual clock (and the wall clock) may shrink.
//! The suite below drives every retrieval shape (iterated scans,
//! conjunctive filters, multi-column fetches, multi-step joins including a
//! self-join whose steps race on identical prompts) through real worker
//! threads.

use galois_core::{Galois, GaloisOptions, ListStore, Parallelism};
use galois_dataset::{Scenario, WorldConfig};
use galois_llm::{Completion, KeyUniverseStore, LanguageModel, ModelProfile, SimLlm};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Query shapes covering scans, filters, fetches, aggregates and joins.
/// The self-join makes two concurrent steps issue *identical* prompts, so
/// in-flight deduplication is exercised, not just sharded lookups.
const QUERIES: [&str; 7] = [
    "SELECT name FROM city",
    "SELECT name, population FROM city WHERE elevation < 800",
    "SELECT name FROM city WHERE population > 200000 AND elevation < 1500",
    "SELECT COUNT(*), AVG(population) FROM city",
    "SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY continent",
    "SELECT p.name, r.electionYear FROM city p, cityMayor r WHERE p.mayor = r.name",
    "SELECT a.name, b.name FROM city a, city b WHERE a.mayor = b.mayor",
];

fn scenario(seed: u64) -> Scenario {
    Scenario::generate_with(
        seed,
        WorldConfig {
            countries: 6,
            cities: 14,
            airports: 6,
            singers: 6,
            concerts: 8,
            employees: 10,
        },
    )
}

fn model(scenario: &Scenario, profile: &str) -> Arc<dyn LanguageModel> {
    let profile = match profile {
        "oracle" => ModelProfile::oracle(),
        "chatgpt" => ModelProfile::chatgpt(),
        _ => ModelProfile::flan(),
    };
    Arc::new(SimLlm::new(scenario.knowledge.clone(), profile))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn scheduler_parallelism_is_invisible(
        seed in prop::sample::select(vec![7u64, 42, 99]),
        sql in prop::sample::select(QUERIES.to_vec()),
        profile in prop::sample::select(vec!["oracle", "chatgpt", "flan"]),
    ) {
        let s = scenario(seed);
        let run = |lanes: usize| {
            let g = Galois::with_options(
                model(&s, profile),
                s.database.clone(),
                GaloisOptions {
                    parallelism: Parallelism::new(lanes),
                    ..Default::default()
                },
            );
            g.execute(sql).unwrap()
        };
        let base = run(1);
        for lanes in [2usize, 8] {
            let got = run(lanes);
            prop_assert_eq!(&got.relation.rows, &base.relation.rows,
                "R_M diverged at parallelism {} for {}", lanes, sql);
            prop_assert_eq!(got.stats.list_prompts, base.stats.list_prompts);
            prop_assert_eq!(got.stats.filter_prompts, base.stats.filter_prompts);
            prop_assert_eq!(got.stats.fetch_prompts, base.stats.fetch_prompts);
            prop_assert_eq!(got.stats.cache_hits, base.stats.cache_hits,
                "cache-hit totals diverged at parallelism {} for {}", lanes, sql);
            prop_assert_eq!(got.stats.rows_retrieved, base.stats.rows_retrieved);
            prop_assert_eq!(got.stats.serial_virtual_ms, base.stats.serial_virtual_ms);
            prop_assert!(got.stats.virtual_ms <= base.stats.virtual_ms,
                "lanes may only shorten the virtual clock");
        }
    }
}

/// Counts how many prompts actually reach the model — the caches and the
/// in-flight dedup sit in front of it, so this is the ground truth for
/// "how much model work did the race cost".
struct CountingModel {
    inner: SimLlm,
    calls: AtomicUsize,
}

impl LanguageModel for CountingModel {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn signature(&self) -> String {
        self.inner.signature()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn complete(&self, prompt: &str) -> Completion {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.complete(prompt)
    }
}

/// Two OS threads racing the *same cold concept* on a shared key-universe
/// store must converge on a single de-duplicated universe, and — at
/// `Parallelism(1)` — cost the model exactly as many prompts as running
/// the query twice sequentially: every prompt string the loser needs is
/// either cached or in flight, so the model-call count is deterministic
/// across repeats even though the thread interleaving is not.
#[test]
fn racing_threads_share_one_deduplicated_universe() {
    let s = scenario(42);
    let sql = "SELECT name FROM city";
    let race = || {
        let store = Arc::new(KeyUniverseStore::default());
        let counter = Arc::new(CountingModel {
            inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
            calls: AtomicUsize::new(0),
        });
        let galois = Arc::new(Galois::with_options(
            counter.clone(),
            s.database.clone(),
            GaloisOptions {
                parallelism: Parallelism::new(1),
                list_store: ListStore::Shared(store.clone()),
                ..Default::default()
            },
        ));
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let galois = galois.clone();
                    scope.spawn(move || galois.execute(sql).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (store, counter.calls.load(Ordering::SeqCst), results)
    };

    // Sequential ground truth: the same query twice on one session.
    let (seq_store, seq_calls, seq_results) = {
        let store = Arc::new(KeyUniverseStore::default());
        let counter = Arc::new(CountingModel {
            inner: SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()),
            calls: AtomicUsize::new(0),
        });
        let galois = Galois::with_options(
            counter.clone(),
            s.database.clone(),
            GaloisOptions {
                parallelism: Parallelism::new(1),
                list_store: ListStore::Shared(store.clone()),
                ..Default::default()
            },
        );
        let a = galois.execute(sql).unwrap();
        let b = galois.execute(sql).unwrap();
        (store, counter.calls.load(Ordering::SeqCst), vec![a, b])
    };
    assert_eq!(seq_store.len(), 1, "one concept listed");

    for attempt in 0..4 {
        let (store, calls, results) = race();
        assert_eq!(
            store.len(),
            1,
            "racing threads must publish a single universe (attempt {attempt})"
        );
        let sig = SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()).signature();
        let warm = store.warm_map(&sig);
        assert_eq!(warm.len(), 1, "the universe must be exhausted");
        assert_eq!(
            warm.values().copied().sum::<usize>(),
            seq_results[0].relation.rows.len(),
            "the shared universe must hold every key exactly once (attempt {attempt})"
        );
        for r in &results {
            assert_eq!(
                r.relation.rows, seq_results[0].relation.rows,
                "racing result diverged (attempt {attempt})"
            );
        }
        assert_eq!(
            calls, seq_calls,
            "prompt count must be deterministic under the race (attempt {attempt})"
        );
    }
}

/// The sequential path (`Parallelism(1)`) must itself be run-to-run
/// deterministic — the property above compares against it as ground truth.
#[test]
fn sequential_baseline_is_stable() {
    let s = scenario(42);
    let run = || {
        Galois::new(model(&s, "chatgpt"), s.database.clone())
            .execute(QUERIES[6])
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.relation.rows, b.relation.rows);
    assert_eq!(a.stats.virtual_ms, b.stats.virtual_ms);
    assert_eq!(a.stats.cache_hits, b.stats.cache_hits);
}
