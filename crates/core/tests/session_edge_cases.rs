//! Edge-case integration tests for the Galois session, run against the
//! noise-free oracle profile (failures here are engine bugs, not noise).

use galois_core::{Galois, GaloisOptions};
use galois_dataset::Scenario;
use galois_llm::{ModelProfile, SimLlm};
use galois_relational::Value;
use std::sync::Arc;

fn session(scenario: &Scenario) -> Galois {
    Galois::new(
        Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        )),
        scenario.database.clone(),
    )
}

#[test]
fn limit_and_order_by_over_llm_relation() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let sql = "SELECT name FROM city ORDER BY population DESC LIMIT 3";
    let got = g.execute(sql).unwrap();
    let truth = s.database.execute(sql).unwrap();
    assert_eq!(got.relation.rows, truth.rows);
    assert_eq!(
        got.relation.schema.arity(),
        1,
        "hidden sort column stripped"
    );
}

#[test]
fn distinct_over_llm_relation() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let sql = "SELECT DISTINCT country FROM city ORDER BY country";
    let got = g.execute(sql).unwrap();
    let truth = s.database.execute(sql).unwrap();
    assert_eq!(got.relation.rows, truth.rows);
}

#[test]
fn empty_selection_yields_empty_relation_not_error() {
    let s = Scenario::generate(42);
    let g = session(&s);
    // No city has a negative population.
    let got = g
        .execute("SELECT name FROM city WHERE population < 0")
        .unwrap();
    assert!(got.relation.is_empty());
}

#[test]
fn global_aggregate_over_empty_llm_selection() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let got = g
        .execute("SELECT COUNT(*), SUM(population) FROM city WHERE population < 0")
        .unwrap();
    assert_eq!(got.relation.rows[0][0], Value::Int(0));
    assert!(got.relation.rows[0][1].is_null());
}

#[test]
fn self_join_of_one_relation_under_two_bindings() {
    let s = Scenario::generate(42);
    let g = session(&s);
    // Pairs of distinct cities in the same country. Each binding gets its
    // own retrieval step and temp table.
    let sql = "SELECT a.name, b.name FROM city a, city b \
               WHERE a.country = b.country AND a.name < b.name";
    let got = g.execute(sql).unwrap();
    let truth = s.database.execute(sql).unwrap();
    assert_eq!(got.relation.len(), truth.len());
    assert!(got.stats.list_prompts >= 2, "two scans expected");
}

#[test]
fn in_and_like_filters_via_prompts() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let continent = s.world.countries[0].continent.clone();
    let sql = format!("SELECT name FROM country WHERE continent IN ('{continent}')");
    let got = g.execute(&sql).unwrap();
    let truth = s.database.execute(&sql).unwrap();
    assert_eq!(got.relation.len(), truth.len());
}

#[test]
fn between_filter_via_prompts() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let sql = "SELECT name FROM city WHERE population BETWEEN 100000 AND 5000000";
    let got = g.execute(sql).unwrap();
    let truth = s.database.execute(sql).unwrap();
    assert_eq!(got.relation.len(), truth.len());
}

#[test]
fn is_not_null_filter_keeps_all_known_rows() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let sql = "SELECT name FROM city WHERE population IS NOT NULL";
    let got = g.execute(sql).unwrap();
    let truth = s.database.execute(sql).unwrap();
    assert_eq!(got.relation.len(), truth.len());
}

#[test]
fn unknown_table_is_a_clean_error() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let err = g.execute("SELECT x FROM volcanoes").unwrap_err();
    assert!(err.to_string().contains("volcanoes"), "{err}");
}

#[test]
fn aggregate_only_query_costs_no_fetch_prompts() {
    let s = Scenario::generate(42);
    let g = session(&s);
    // COUNT(*) needs keys only: no attribute fetches, no filters.
    let got = g.execute("SELECT COUNT(*) FROM city").unwrap();
    assert_eq!(got.stats.fetch_prompts, 0);
    assert_eq!(got.stats.filter_prompts, 0);
    assert!(got.stats.list_prompts > 0);
}

#[test]
fn stats_virtual_seconds_consistent_with_ms() {
    let s = Scenario::generate(42);
    let g = session(&s);
    let got = g.execute("SELECT COUNT(*) FROM country").unwrap();
    assert!((got.stats.virtual_seconds() - got.stats.virtual_ms as f64 / 1000.0).abs() < 1e-9);
}

#[test]
fn max_iterations_one_truncates_but_still_returns() {
    let s = Scenario::generate(42);
    let model: Arc<SimLlm> = Arc::new(SimLlm::new(s.knowledge.clone(), ModelProfile::oracle()));
    let g = Galois::with_options(
        model,
        s.database.clone(),
        GaloisOptions {
            max_list_iterations: 1,
            ..Default::default()
        },
    );
    let got = g.execute("SELECT name FROM city").unwrap();
    // The oracle's page size is large enough for one page to be complete,
    // so this also guards the "no spurious repeats" property.
    let truth = s.database.execute("SELECT name FROM city").unwrap();
    assert!(!got.relation.is_empty());
    assert!(got.relation.len() <= truth.len());
    assert_eq!(got.stats.list_prompts, 1);
}
