//! Retry policy and circuit breaker for the resilient client.
//!
//! [`RetryPolicy`] is the parameter vector of the `Resilience::On` knob:
//! how many re-asks a failed request gets, how the exponential backoff
//! between them grows, how much deterministic jitter decorrelates lanes,
//! when a slow-but-successful answer counts as a timeout, and when the
//! per-client [`CircuitBreaker`] stops asking altogether. All waiting is
//! billed in *virtual* milliseconds — it folds into the completion's
//! `latency_ms` and flows through the event clock like any model latency;
//! no real time passes.

use crate::noise::seeded;

/// Bounded-retry configuration (the payload of `Resilience::On`).
///
/// The defaults are deliberately conservative-for-equivalence: 4 retries
/// covers [`crate::FaultProfile`]'s default 3-consecutive-failure cap, the
/// timeout is far above any simulated clean latency, and the breaker
/// threshold is high enough that it never opens while retries are still
/// winning — so a ≤ 20 % fault rate under the default policy reproduces
/// the fault-free run bit for bit (only the virtual clock grows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-asks after the first failed attempt (total attempts = 1 + this).
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied to the backoff per further retry.
    pub multiplier: u64,
    /// Backoff ceiling, in virtual milliseconds.
    pub max_backoff_ms: u64,
    /// Deterministic jitter added to each backoff, as a permille fraction
    /// of the backoff (200 = up to +20 %), drawn from a hash of the
    /// prompt and the attempt ordinal so lanes decorrelate reproducibly.
    pub jitter_permille: u64,
    /// An attempt slower than this (even a successful one) counts as a
    /// timeout: its window is billed and the request is retried.
    pub timeout_ms: u64,
    /// Consecutive retry-exhausted prompts that trip the breaker open.
    pub breaker_threshold: u32,
    /// Requests failed fast while the breaker is open, before one
    /// half-open probe is let through.
    pub breaker_cooldown: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 50,
            multiplier: 2,
            max_backoff_ms: 2_000,
            jitter_permille: 200,
            timeout_ms: 30_000,
            breaker_threshold: 8,
            breaker_cooldown: 16,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff before retry `retry` (0-based) of `prompt`:
    /// exponential with ceiling, plus deterministic jitter.
    pub fn backoff_ms(&self, prompt: &str, retry: u32) -> u64 {
        let mut base = self.base_backoff_ms;
        for _ in 0..retry {
            base = base.saturating_mul(self.multiplier.max(1));
            if base >= self.max_backoff_ms {
                base = self.max_backoff_ms;
                break;
            }
        }
        base = base.min(self.max_backoff_ms);
        if self.jitter_permille == 0 || base == 0 {
            return base;
        }
        let retry_label = retry.to_string();
        let jitter = seeded(0x1177E2, &["jitter", prompt, &retry_label])
            % (base * self.jitter_permille / 1000 + 1);
        base + jitter
    }
}

/// Per-client circuit breaker, counted in *request outcomes* rather than
/// wall time (the simulation has none to spare): `breaker_threshold`
/// consecutive retry-exhausted prompts open it; while open, the next
/// `breaker_cooldown` requests fail fast without touching the model; the
/// request after that is the half-open probe — success closes the
/// breaker, another exhaustion re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitBreaker {
    /// Normal operation, counting consecutive retry-exhausted prompts.
    Closed {
        /// Retry-exhausted prompts seen in a row.
        consecutive_failures: u32,
    },
    /// Tripped: the next `remaining` requests fail fast.
    Open {
        /// Fast-fails left before the half-open probe.
        remaining: u32,
    },
    /// One probe request is in flight to the model.
    HalfOpen,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::Closed {
            consecutive_failures: 0,
        }
    }
}

impl CircuitBreaker {
    /// Admission check, advanced *before* a request runs. Returns `false`
    /// when the request must fail fast (breaker open, cooldown not yet
    /// spent).
    pub fn admit(&mut self, policy: &RetryPolicy) -> bool {
        match *self {
            CircuitBreaker::Closed { .. } | CircuitBreaker::HalfOpen => true,
            CircuitBreaker::Open { remaining } => {
                if remaining == 0 {
                    *self = CircuitBreaker::HalfOpen;
                    true
                } else {
                    *self = CircuitBreaker::Open {
                        remaining: remaining - 1,
                    };
                    let _ = policy;
                    false
                }
            }
        }
    }

    /// Records a request that produced a clean answer (possibly after
    /// retries): closes the breaker and resets the failure streak.
    pub fn record_success(&mut self) {
        *self = CircuitBreaker::default();
    }

    /// Records a retry-exhausted request: grows the failure streak and
    /// trips the breaker at the policy threshold; an exhausted half-open
    /// probe re-opens immediately.
    pub fn record_exhaustion(&mut self, policy: &RetryPolicy) {
        match *self {
            CircuitBreaker::Closed {
                consecutive_failures,
            } => {
                let streak = consecutive_failures + 1;
                if policy.breaker_threshold > 0 && streak >= policy.breaker_threshold {
                    *self = CircuitBreaker::Open {
                        remaining: policy.breaker_cooldown,
                    };
                } else {
                    *self = CircuitBreaker::Closed {
                        consecutive_failures: streak,
                    };
                }
            }
            CircuitBreaker::HalfOpen => {
                *self = CircuitBreaker::Open {
                    remaining: policy.breaker_cooldown,
                };
            }
            CircuitBreaker::Open { .. } => {}
        }
    }

    /// True while the breaker is open (fast-failing).
    pub fn is_open(&self) -> bool {
        matches!(self, CircuitBreaker::Open { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_ceiling() {
        let policy = RetryPolicy {
            jitter_permille: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_ms("p", 0), 50);
        assert_eq!(policy.backoff_ms("p", 1), 100);
        assert_eq!(policy.backoff_ms("p", 2), 200);
        assert_eq!(policy.backoff_ms("p", 10), 2_000);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_ms("prompt", 1);
        let b = policy.backoff_ms("prompt", 1);
        assert_eq!(a, b);
        assert!((100..=120).contains(&a), "base 100 + ≤20%: got {a}");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let policy = RetryPolicy {
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..RetryPolicy::default()
        };
        let mut b = CircuitBreaker::default();
        assert!(b.admit(&policy));
        b.record_exhaustion(&policy);
        assert!(!b.is_open());
        assert!(b.admit(&policy));
        b.record_exhaustion(&policy);
        assert!(b.is_open(), "threshold 2 reached");
        // Cooldown: 3 fast-fails.
        for _ in 0..3 {
            assert!(!b.admit(&policy));
        }
        // Next request is the half-open probe.
        assert!(b.admit(&policy));
        assert_eq!(b, CircuitBreaker::HalfOpen);
        b.record_success();
        assert_eq!(b, CircuitBreaker::default());
    }

    #[test]
    fn failed_probe_reopens() {
        let policy = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 1,
            ..RetryPolicy::default()
        };
        let mut b = CircuitBreaker::default();
        assert!(b.admit(&policy));
        b.record_exhaustion(&policy);
        assert!(b.is_open());
        assert!(!b.admit(&policy));
        assert!(b.admit(&policy)); // probe
        b.record_exhaustion(&policy);
        assert!(b.is_open(), "failed probe re-opens");
    }

    #[test]
    fn success_resets_the_streak() {
        let policy = RetryPolicy {
            breaker_threshold: 2,
            ..RetryPolicy::default()
        };
        let mut b = CircuitBreaker::default();
        b.record_exhaustion(&policy);
        b.record_success();
        b.record_exhaustion(&policy);
        assert!(!b.is_open(), "streak was reset in between");
    }
}
