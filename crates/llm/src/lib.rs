//! # galois-llm
//!
//! The simulated pre-trained LLM substrate for the Galois reproduction
//! (["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472),
//! EDBT 2024).
//!
//! The paper queries OpenAI GPT-3 / ChatGPT and local Flan-T5 /
//! Tk-Instruct models. Offline, this crate substitutes a deterministic
//! simulator with the same *interface* (text in, text out — see
//! [`model::LanguageModel`]) and the same *failure modes*, each dialled by
//! a [`profiles::ModelProfile`]:
//!
//! * popularity-biased recall (missing result rows, Table 1),
//! * hallucinated entities and fabricated values,
//! * value errors stable per (model, entity, attribute) — wrong beliefs,
//!   not per-prompt coin flips,
//! * numeric/date format noise (`"2.8 million"`, `"05/08/1961"`) that the
//!   Galois cleaning stage must normalise,
//! * surface-form conventions for entity references ("IT" vs "ITA") that
//!   systematically break joins,
//! * weak self-computed arithmetic for the QA baselines,
//! * context-window truncation (small models lose long exclusion lists).
//!
//! See `DESIGN.md` §1 for why each substitution preserves the behaviour
//! the paper measures.

#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod intent;
pub mod knowledge;
pub mod lanes;
pub mod model;
pub mod nlq;
pub mod noise;
pub mod profiles;
pub mod qa;
pub mod resilience;
pub mod simllm;
pub mod tokenizer;

pub use client::{
    BatchOutcome, ClientStats, KeyUniverse, KeyUniverseStore, LlmClient, SubEntryLookup,
    BATCH_OVERHEAD_MS, CACHE_SHARDS,
};
pub use faults::{FaultProfile, FaultyLlm};
pub use intent::{CmpOp, Condition, PromptValue, TaskIntent};
pub use knowledge::{Entity, EntityId, FactValue, KnowledgeStore};
pub use lanes::{lane_schedule, EventClock, FairShare, LanePool, LaneScratch, Parallelism};
pub use model::{Completion, Fault, FaultKind, FixedResponder, LanguageModel, Usage};
pub use nlq::{AggIntent, AggKind, JoinIntent, QueryIntent};
pub use profiles::ModelProfile;
pub use resilience::{CircuitBreaker, RetryPolicy};
pub use simllm::SimLlm;
