//! The model client: caching, batching and virtual-clock accounting.
//!
//! The paper reports "∼110 batched prompts per query" and "∼20 seconds to
//! execute a query" on GPT-3 (§5), without controlling OpenAI's
//! infrastructure. The client reproduces that accounting with a virtual
//! clock: every completion carries a simulated latency, batches add one
//! request overhead, and a prompt cache models the obvious deduplication a
//! production system would deploy. No real time passes.
//!
//! The client is built to be shared across worker threads:
//!
//! * the prompt cache is striped over [`CACHE_SHARDS`] mutexes keyed by
//!   prompt hash, so concurrent lookups of different prompts do not
//!   serialise on one lock (and a hit costs a single lock acquisition);
//! * a prompt that is being completed on one thread parks concurrent
//!   requests for the *same* prompt until the first completion lands
//!   (in-flight deduplication) — the model is called exactly once per
//!   unique prompt, and the waiters count as cache hits, exactly as they
//!   would have in a sequential run;
//! * the stats mutex is taken once per batch, after all model calls, never
//!   across them.
//!
//! Virtual time honours the [`Parallelism`] knob: a batch of independent
//! prompts costs `overhead + max(lane sums)` across `K` simulated request
//! lanes ([`lane_schedule`]), with `K = 1` reproducing the original
//! sequential accounting bit-for-bit.

use crate::lanes::{lane_schedule, Parallelism};
use crate::model::{Completion, FaultKind, LanguageModel, Usage};
use crate::resilience::{CircuitBreaker, RetryPolicy};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Usage counters accumulated by a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Prompts answered by the model (cache misses).
    pub prompts: usize,
    /// Prompts served from the cache (including in-flight waiters).
    pub cache_hits: usize,
    /// Batch requests issued.
    pub batches: usize,
    /// Total prompt tokens sent (cache misses only).
    pub prompt_tokens: usize,
    /// Total completion tokens received (cache misses only).
    pub completion_tokens: usize,
    /// Total virtual elapsed milliseconds under the client's lane count.
    pub virtual_ms: u64,
    /// Virtual milliseconds a single-lane client would have charged for the
    /// same batches (`virtual_ms == serial_ms` when `Parallelism` is 1).
    pub serial_ms: u64,
    /// Re-asks issued by the resilient retry loop (never counted in
    /// `prompts`, which stays net of retries).
    pub retries: usize,
    /// Attempts that exceeded their deadline (timeout faults, plus
    /// successful answers slower than the policy's `timeout_ms`).
    pub timeouts: usize,
    /// Attempts the model refused with a rate-limit signal.
    pub rate_limited: usize,
    /// Requests failed fast by the open circuit breaker (no model call).
    pub breaker_fastfails: usize,
    /// Faulted attempts observed, all kinds (with resilience off, each is
    /// a degraded completion handed downstream; with resilience on, most
    /// are absorbed by retries).
    pub faults: usize,
}

impl ClientStats {
    /// Virtual elapsed time in seconds.
    pub fn virtual_seconds(&self) -> f64 {
        self.virtual_ms as f64 / 1000.0
    }
}

/// Fixed virtual overhead per batch request (network + queueing).
pub const BATCH_OVERHEAD_MS: u64 = 250;

/// Number of mutex-striped shards in the prompt cache.
pub const CACHE_SHARDS: usize = 16;

/// Accounting for one batch request, returned alongside the completions so
/// callers (the session scheduler) can compose per-phase virtual time
/// without re-deriving it from global counter deltas.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One completion per prompt, in prompt order.
    pub completions: Vec<Completion>,
    /// Prompts served from the cache (or an in-flight duplicate).
    pub hits: usize,
    /// Prompts that reached the model.
    pub misses: usize,
    /// Prompt tokens sent (misses only).
    pub prompt_tokens: usize,
    /// Completion tokens received (misses only).
    pub completion_tokens: usize,
    /// Virtual cost of the batch: overhead + miss latencies packed onto the
    /// client's request lanes.
    pub virtual_ms: u64,
    /// Virtual cost the same batch would have had on one lane.
    pub serial_ms: u64,
    /// Re-asks the retry loop spent on this batch's misses.
    pub retries: usize,
    /// Timed-out attempts behind this batch's misses.
    pub timeouts: usize,
    /// Rate-limited attempts behind this batch's misses.
    pub rate_limited: usize,
    /// Requests failed fast by the open breaker.
    pub breaker_fastfails: usize,
    /// Faulted attempts observed behind this batch's misses.
    pub faults: usize,
}

/// Per-call resilience accounting, threaded from the model-call path up to
/// [`LlmClient::charge`] (internal carrier; surfaced flat on
/// [`BatchOutcome`] and [`ClientStats`]).
#[derive(Debug, Clone, Copy, Default)]
struct FaultCounters {
    retries: usize,
    timeouts: usize,
    rate_limited: usize,
    breaker_fastfails: usize,
    faults: usize,
}

impl FaultCounters {
    fn add(&mut self, other: FaultCounters) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.breaker_fastfails += other.breaker_fastfails;
        self.faults += other.faults;
    }

    fn count_kind(&mut self, kind: FaultKind) {
        self.faults += 1;
        match kind {
            FaultKind::Timeout => self.timeouts += 1,
            FaultKind::RateLimit => self.rate_limited += 1,
            FaultKind::Transient | FaultKind::Truncated => {}
        }
    }
}

/// A cache slot: a landed completion, or a marker that some thread is
/// already asking the model for this prompt.
enum Slot {
    Ready(Completion),
    InFlight(Arc<InFlight>),
}

/// Progress of one in-flight completion.
enum InFlightState {
    Pending,
    Ready(Completion),
    /// The owning thread unwound before fulfilling; waiters must retry.
    Abandoned,
}

/// Rendezvous for concurrent requests of one prompt. Uses `std::sync`
/// primitives directly because waiters need a [`Condvar`].
struct InFlight {
    state: StdMutex<InFlightState>,
    ready: Condvar,
}

impl Default for InFlight {
    fn default() -> Self {
        InFlight {
            state: StdMutex::new(InFlightState::Pending),
            ready: Condvar::new(),
        }
    }
}

impl InFlight {
    fn resolve(&self, state: InFlightState) {
        let mut slot = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *slot = state;
        drop(slot);
        self.ready.notify_all();
    }

    /// Blocks until the owner resolves; `None` means the completion was
    /// abandoned (the owner panicked) and the caller should retry.
    fn wait(&self) -> Option<Completion> {
        let mut slot = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*slot {
                InFlightState::Pending => {}
                InFlightState::Ready(c) => return Some(c.clone()),
                InFlightState::Abandoned => return None,
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Unwind guard for the thread that owns an [`InFlight`] marker: if the
/// model call panics, the marker is removed from the shard and waiters are
/// woken with `Abandoned` instead of blocking forever (the panic itself
/// still propagates when the scheduler scope joins).
struct FulfillGuard<'a> {
    shard: &'a Mutex<HashMap<String, Slot>>,
    prompt: &'a str,
    pending: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for FulfillGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut map = self.shard.lock();
        if let Some(Slot::InFlight(current)) = map.get(self.prompt) {
            if Arc::ptr_eq(current, self.pending) {
                map.remove(self.prompt);
            }
        }
        drop(map);
        self.pending.resolve(InFlightState::Abandoned);
    }
}

/// A per-key sub-entry slot: a stored answer fragment, or a marker that
/// some request has already asked the model for this signature and its
/// answer has not been stored yet.
///
/// The marker is what makes `cache_hits` accounting deterministic under
/// threads: a lookup that finds *either* state counts as a hit — the
/// signature has been asked before, full stop — instead of depending on
/// whether the first asker's store happened to land before the second
/// asker's lookup (arrival order). Prompt counts can still wobble under
/// races (the second asker re-asks the model rather than blocking on the
/// first), but the hit totals are a pure function of the per-signature ask
/// counts.
enum SubEntry {
    /// The signature has been asked; its answer is still in flight.
    Asked,
    /// The stored answer fragment.
    Ready(String),
}

/// Result of a sub-entry lookup ([`LlmClient::extract_sub_entry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubEntryLookup {
    /// A stored answer was served — a cache hit with zero prompt cost.
    Hit(String),
    /// Another request already asked this signature and its answer has not
    /// been stored yet. Counted as a cache hit (by-signature accounting:
    /// in a sequential run this lookup would have found the stored
    /// answer), but the caller must produce the answer itself — the store
    /// never blocks one query's dataflow on another's.
    InFlight,
    /// First ask of this signature; the caller owes a
    /// [`LlmClient::store_sub_entry`] once the answer lands.
    Miss,
}

/// A string-keyed map striped over [`CACHE_SHARDS`] mutexes, so concurrent
/// lookups of different keys do not serialise on one lock. Backs both the
/// prompt cache (`Striped<Slot>`) and the per-key sub-entry store
/// (`Striped<SubEntry>`).
struct Striped<V> {
    shards: Vec<Mutex<HashMap<String, V>>>,
}

impl<V> Striped<V> {
    fn new() -> Self {
        Striped {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % CACHE_SHARDS]
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// A caching, stats-keeping, thread-safe client over any [`LanguageModel`].
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    /// The prompt cache: full prompt text → completion (or in-flight
    /// marker).
    cache: Striped<Slot>,
    /// **Per-key sub-entries**: individual `key → answer` fragments
    /// extracted from batched multi-key answers (and from single-key
    /// answers while batching is on), keyed by a caller-chosen task
    /// signature.
    ///
    /// The prompt cache alone cannot serve these crossovers — a single-key
    /// prompt and a batched prompt containing the same key are different
    /// strings, and two batched prompts over overlapping key sets chunk
    /// differently across queries. The sub-entry store caches at the
    /// *task* granularity instead, so a key answered inside any earlier
    /// batch is a cache hit for every later prompt that would re-ask it,
    /// batched or not.
    sub_entries: Striped<SubEntry>,
    stats: Mutex<ClientStats>,
    cache_enabled: bool,
    parallelism: Parallelism,
    /// Retry/backoff/timeout policy; `None` forwards every fault's
    /// degraded completion downstream untouched (the PR-8 behaviour).
    resilience: Option<RetryPolicy>,
    /// Circuit breaker over the client's model (one model per client, so
    /// per-client is per-model-signature). Only consulted with resilience
    /// on.
    breaker: Mutex<CircuitBreaker>,
}

impl LlmClient {
    /// Wraps a model with caching enabled and one request lane.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        Self::with_parallelism(model, Parallelism::default())
    }

    /// Wraps a model with caching enabled and `parallelism` request lanes.
    pub fn with_parallelism(model: Arc<dyn LanguageModel>, parallelism: Parallelism) -> Self {
        LlmClient {
            model,
            cache: Striped::new(),
            sub_entries: Striped::new(),
            stats: Mutex::new(ClientStats::default()),
            cache_enabled: true,
            parallelism,
            resilience: None,
            breaker: Mutex::new(CircuitBreaker::default()),
        }
    }

    /// Enables the resilient retry loop: faulted requests are retried up
    /// to the policy's budget with exponential backoff + jitter billed in
    /// virtual time, slow answers past `timeout_ms` are re-asked, and the
    /// circuit breaker fails requests fast after a streak of exhaustions.
    pub fn with_resilience(mut self, policy: RetryPolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// The retry policy in effect, if resilience is on.
    pub fn resilience(&self) -> Option<RetryPolicy> {
        self.resilience
    }

    /// Wraps a model without the prompt cache (every call hits the model).
    pub fn without_cache(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            cache_enabled: false,
            ..Self::new(model)
        }
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> String {
        self.model.name().to_string()
    }

    /// The request-lane count in use.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Completes one prompt (counts as a batch of one).
    pub fn complete(&self, prompt: &str) -> Completion {
        self.complete_outcome(prompt)
            .completions
            .pop()
            .expect("one completion per prompt")
    }

    /// Completes one prompt, returning full batch accounting.
    pub fn complete_outcome(&self, prompt: &str) -> BatchOutcome {
        let (completion, hit, counters) = self.lookup_or_complete(prompt);
        if hit {
            self.charge(vec![completion], 1, &[], 0, 0, counters)
        } else {
            let latency = [completion.latency_ms];
            let p_tok = completion.usage.prompt_tokens;
            let c_tok = completion.usage.completion_tokens;
            self.charge(vec![completion], 0, &latency, p_tok, c_tok, counters)
        }
    }

    /// Completes a batch of prompts; one batch overhead is charged and the
    /// member latencies pack onto the client's request lanes (one lane:
    /// the provider decodes sequentially per request stream).
    pub fn complete_batch(&self, prompts: &[String]) -> Vec<Completion> {
        self.complete_batch_outcome(prompts).completions
    }

    /// Completes a batch of prompts, returning full accounting.
    pub fn complete_batch_outcome(&self, prompts: &[String]) -> BatchOutcome {
        let mut completions = Vec::with_capacity(prompts.len());
        let mut miss_latencies = Vec::new();
        let (mut hits, mut p_tok, mut c_tok) = (0usize, 0usize, 0usize);
        let mut counters = FaultCounters::default();
        for prompt in prompts {
            let (completion, hit, call_counters) = self.lookup_or_complete(prompt);
            counters.add(call_counters);
            if hit {
                hits += 1;
            } else {
                p_tok += completion.usage.prompt_tokens;
                c_tok += completion.usage.completion_tokens;
                miss_latencies.push(completion.latency_ms);
            }
            completions.push(completion);
        }
        self.charge(completions, hits, &miss_latencies, p_tok, c_tok, counters)
    }

    /// One cache round-trip for one prompt; returns `(completion, hit,
    /// resilience counters)`.
    ///
    /// Hits take a single shard-lock acquisition. Misses insert an
    /// [`InFlight`] marker, release the lock, call the model (through the
    /// retry loop when resilience is on), then swap the marker for the
    /// landed completion — concurrent requests for the same prompt wait on
    /// the marker and count as hits. The marker also serialises the retry
    /// loop per prompt: a prompt's attempt sequence is walked by exactly
    /// one thread, so fault schedules stay deterministic under lanes.
    fn lookup_or_complete(&self, prompt: &str) -> (Completion, bool, FaultCounters) {
        if !self.cache_enabled {
            let (completion, counters) = self.call_model(prompt);
            return (completion, false, counters);
        }
        enum Found {
            Ready(Completion),
            Wait(Arc<InFlight>),
            Mine(Arc<InFlight>),
        }
        let shard = self.cache.shard(prompt);
        loop {
            let found = {
                let mut map = shard.lock();
                match map.get(prompt) {
                    Some(Slot::Ready(c)) => Found::Ready(c.clone()),
                    Some(Slot::InFlight(pending)) => Found::Wait(Arc::clone(pending)),
                    None => {
                        let pending = Arc::new(InFlight::default());
                        map.insert(prompt.to_string(), Slot::InFlight(Arc::clone(&pending)));
                        Found::Mine(pending)
                    }
                }
            };
            match found {
                Found::Ready(c) => return (c, true, FaultCounters::default()),
                Found::Wait(pending) => match pending.wait() {
                    Some(c) => return (c, true, FaultCounters::default()),
                    // The owner panicked before fulfilling: retry the
                    // lookup and complete the prompt ourselves.
                    None => continue,
                },
                Found::Mine(pending) => {
                    let mut guard = FulfillGuard {
                        shard,
                        prompt,
                        pending: &pending,
                        armed: true,
                    };
                    let (completion, counters) = self.call_model(prompt);
                    guard.armed = false;
                    {
                        let mut map = shard.lock();
                        match map.get_mut(prompt) {
                            // Normal path: replace our own marker in place.
                            Some(slot) => *slot = Slot::Ready(completion.clone()),
                            // The cache was cleared mid-flight; re-insert.
                            None => {
                                map.insert(prompt.to_string(), Slot::Ready(completion.clone()));
                            }
                        }
                    }
                    pending.resolve(InFlightState::Ready(completion.clone()));
                    return (completion, false, counters);
                }
            }
        }
    }

    /// One model request through the resilience layer.
    ///
    /// With resilience off this is a single `try_complete`: a fault's
    /// degraded completion is handed downstream as-is (only counted).
    /// With resilience on, faulted attempts — and successful answers
    /// slower than the policy deadline — are retried up to the budget,
    /// with each failed attempt's latency plus the exponential backoff
    /// (deterministically jittered per prompt/attempt) accrued into the
    /// returned completion's `latency_ms`, so retry time flows through
    /// lane packing and the event clock like any model latency. Token
    /// usage is *not* accrued across attempts: retry cost is modelled in
    /// virtual time only, which keeps token totals bit-exact with the
    /// fault-free run once retries succeed. On exhaustion the last fault's
    /// degraded completion (with the accrued wait) goes downstream and the
    /// breaker records the failure; while the breaker is open, requests
    /// fail fast with marker text and zero model calls.
    fn call_model(&self, prompt: &str) -> (Completion, FaultCounters) {
        let mut counters = FaultCounters::default();
        let Some(policy) = self.resilience else {
            return match self.model.try_complete(prompt) {
                Ok(completion) => (completion, counters),
                Err(fault) => {
                    counters.count_kind(fault.kind);
                    (fault.degraded, counters)
                }
            };
        };
        if !self.breaker.lock().admit(&policy) {
            counters.breaker_fastfails += 1;
            let text = crate::faults::fault_text(FaultKind::Transient);
            let completion = Completion {
                usage: Usage::default(),
                text,
                latency_ms: 0,
            };
            return (completion, counters);
        }
        let mut accrued_ms = 0u64;
        let mut retry = 0u32;
        loop {
            let outcome = self.model.try_complete(prompt);
            let budget_left = retry < policy.max_retries;
            match outcome {
                Ok(completion) if completion.latency_ms > policy.timeout_ms && budget_left => {
                    // Too slow: the caller gave up at the deadline. Bill
                    // the window waited plus the backoff, then re-ask.
                    counters.timeouts += 1;
                    counters.retries += 1;
                    accrued_ms += policy.timeout_ms + policy.backoff_ms(prompt, retry);
                    retry += 1;
                }
                Ok(mut completion) => {
                    completion.latency_ms += accrued_ms;
                    self.breaker.lock().record_success();
                    return (completion, counters);
                }
                Err(fault) if budget_left => {
                    counters.count_kind(fault.kind);
                    counters.retries += 1;
                    accrued_ms += fault.degraded.latency_ms + policy.backoff_ms(prompt, retry);
                    retry += 1;
                }
                Err(fault) => {
                    counters.count_kind(fault.kind);
                    self.breaker.lock().record_exhaustion(&policy);
                    let mut completion = fault.degraded;
                    completion.latency_ms += accrued_ms;
                    return (completion, counters);
                }
            }
        }
    }

    /// Folds one batch's accounting into the global stats (single stats
    /// lock acquisition, after all model calls) and builds the outcome.
    fn charge(
        &self,
        completions: Vec<Completion>,
        hits: usize,
        miss_latencies: &[u64],
        prompt_tokens: usize,
        completion_tokens: usize,
        counters: FaultCounters,
    ) -> BatchOutcome {
        let misses = miss_latencies.len();
        let virtual_ms = BATCH_OVERHEAD_MS
            + lane_schedule(miss_latencies.iter().copied(), self.parallelism.get());
        let serial_ms = BATCH_OVERHEAD_MS + miss_latencies.iter().sum::<u64>();
        {
            let mut stats = self.stats.lock();
            stats.batches += 1;
            stats.prompts += misses;
            stats.cache_hits += hits;
            stats.prompt_tokens += prompt_tokens;
            stats.completion_tokens += completion_tokens;
            stats.virtual_ms += virtual_ms;
            stats.serial_ms += serial_ms;
            stats.retries += counters.retries;
            stats.timeouts += counters.timeouts;
            stats.rate_limited += counters.rate_limited;
            stats.breaker_fastfails += counters.breaker_fastfails;
            stats.faults += counters.faults;
        }
        BatchOutcome {
            completions,
            hits,
            misses,
            prompt_tokens,
            completion_tokens,
            virtual_ms,
            serial_ms,
            retries: counters.retries,
            timeouts: counters.timeouts,
            rate_limited: counters.rate_limited,
            breaker_fastfails: counters.breaker_fastfails,
            faults: counters.faults,
        }
    }

    /// Looks a per-key sub-entry up by task signature.
    ///
    /// A stored answer is served as [`SubEntryLookup::Hit`] (a cache hit:
    /// the key's answer costs no prompt, so no batch is charged — unlike a
    /// prompt-cache hit, which still rides inside a batch request). A
    /// first ask returns [`SubEntryLookup::Miss`] and leaves an in-flight
    /// marker; a concurrent lookup that finds the marker returns
    /// [`SubEntryLookup::InFlight`], which *also* counts as a cache hit —
    /// hits are a function of how often each signature is asked, never of
    /// which thread's store landed first — but obliges the caller to
    /// produce the answer itself. Always misses when the cache is
    /// disabled.
    pub fn extract_sub_entry(&self, sig: &str) -> SubEntryLookup {
        if !self.cache_enabled {
            return SubEntryLookup::Miss;
        }
        let found = {
            let mut map = self.sub_entries.shard(sig).lock();
            match map.get(sig) {
                Some(SubEntry::Ready(answer)) => SubEntryLookup::Hit(answer.clone()),
                Some(SubEntry::Asked) => SubEntryLookup::InFlight,
                None => {
                    map.insert(sig.to_string(), SubEntry::Asked);
                    SubEntryLookup::Miss
                }
            }
        };
        if !matches!(found, SubEntryLookup::Miss) {
            self.stats.lock().cache_hits += 1;
        }
        found
    }

    /// Stores one key's answer fragment under its task signature, making
    /// it extractable by later single-key or batched requests. First
    /// *stored* write wins: per-key answers are deterministic per session,
    /// so re-storing after a raw-prompt-cache hit must not flap the entry
    /// (an in-flight marker is always replaced — it holds no answer).
    ///
    /// Fault-marker text is never stored: a degraded answer must not
    /// poison the sub-entry store for later queries (the `Asked` marker is
    /// left in place, so by-signature hit accounting is unaffected).
    pub fn store_sub_entry(&self, sig: &str, answer: &str) {
        if !self.cache_enabled || crate::faults::is_fault_text(answer) {
            return;
        }
        let mut map = self.sub_entries.shard(sig).lock();
        match map.get_mut(sig) {
            Some(SubEntry::Ready(_)) => {}
            Some(slot @ SubEntry::Asked) => *slot = SubEntry::Ready(answer.to_string()),
            None => {
                map.insert(sig.to_string(), SubEntry::Ready(answer.to_string()));
            }
        }
    }

    /// Snapshot of the accumulated stats.
    pub fn stats(&self) -> ClientStats {
        *self.stats.lock()
    }

    /// Resets counters (the cache is kept).
    pub fn reset_stats(&self) {
        *self.stats.lock() = ClientStats::default();
    }

    /// Clears the prompt cache and the per-key sub-entry store.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.sub_entries.clear();
    }
}

// ---------------------------------------------------------------------
// Key-universe store
// ---------------------------------------------------------------------

/// One concept's stored key universe: the keys its LIST phase produced, in
/// discovery order, plus how far the listing got.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyUniverse {
    /// Listed keys in discovery order (cleaned, de-duplicated — exactly
    /// what the listing session's scan produced).
    pub keys: Vec<String>,
    /// LIST prompts the stored frontier cost. A warm reader counts these
    /// as cache hits — the same bill a re-listing run would have paid in
    /// prompt-cache hits.
    pub iterations: usize,
    /// True when the model said "No more results" (or produced nothing
    /// new): the universe is complete and no later query needs to page
    /// further. False when listing stopped at an iteration cap — a later
    /// query with headroom resumes paging *after* the stored frontier.
    pub exhausted: bool,
}

/// A stored universe plus the model signature that produced it.
#[derive(Debug)]
struct UniverseEntry {
    model_sig: String,
    universe: KeyUniverse,
}

/// Concept-keyed store of listed key universes, shared across queries (and
/// across sessions, when handed the same `Arc`).
///
/// The first query on a concept pages keys out of the model and publishes
/// what it found; every later query on that concept reads the warm
/// universe at zero prompt cost, resuming paging only past a stored
/// partial frontier. Entries are keyed by the *concept signature* (table,
/// key attribute, rendered scan condition) and guarded by the producing
/// model's [`LanguageModel::signature`]: a read under a different model
/// signature drops the entry — a reconfigured model's beliefs may differ
/// arbitrarily, so stale universes are invalidated rather than served.
///
/// Publishing is monotone: an entry is only replaced by one that knows
/// strictly more (an exhausted universe over a partial one, or a longer
/// key frontier), so concurrent publishers — two threads racing the same
/// cold concept — converge on a single de-duplicated universe no matter
/// the arrival order.
#[derive(Debug, Default)]
pub struct KeyUniverseStore {
    entries: Mutex<HashMap<String, UniverseEntry>>,
}

impl KeyUniverseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the stored universe for a concept, if one exists and was
    /// produced by a model with the given signature. A signature mismatch
    /// *drops* the stale entry (invalidate-on-read) and reports a cold
    /// concept.
    pub fn read(&self, concept: &str, model_sig: &str) -> Option<KeyUniverse> {
        let mut entries = self.entries.lock();
        match entries.get(concept) {
            Some(entry) if entry.model_sig == model_sig => Some(entry.universe.clone()),
            Some(_) => {
                entries.remove(concept);
                None
            }
            None => None,
        }
    }

    /// Publishes a listed universe for a concept. Monotone merge: an
    /// existing same-signature entry is kept unless the new one knows
    /// strictly more (exhausted beats partial; a longer frontier beats a
    /// shorter one). A different-signature entry is always replaced.
    pub fn publish(&self, concept: &str, model_sig: &str, universe: KeyUniverse) {
        let mut entries = self.entries.lock();
        match entries.get_mut(concept) {
            Some(entry) if entry.model_sig == model_sig => {
                let old = &entry.universe;
                let extends =
                    (universe.exhausted && !old.exhausted) || universe.keys.len() > old.keys.len();
                if extends {
                    entry.universe = universe;
                }
            }
            _ => {
                entries.insert(
                    concept.to_string(),
                    UniverseEntry {
                        model_sig: model_sig.to_string(),
                        universe,
                    },
                );
            }
        }
    }

    /// All *exhausted* universes stored under the given model signature,
    /// as `concept → key count` — the planner-visible warm-list
    /// cardinalities (partial frontiers still need paging, so they stay
    /// invisible to cost estimation).
    pub fn warm_map(&self, model_sig: &str) -> std::collections::BTreeMap<String, usize> {
        self.entries
            .lock()
            .iter()
            .filter(|(_, e)| e.model_sig == model_sig && e.universe.exhausted)
            .map(|(concept, e)| (concept.clone(), e.universe.keys.len()))
            .collect()
    }

    /// Number of stored concepts.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no universe is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops every stored universe.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedResponder;

    fn client() -> LlmClient {
        LlmClient::new(Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "ok".into(),
        }))
    }

    #[test]
    fn caching_dedupes() {
        let c = client();
        c.complete("hello");
        c.complete("hello");
        let s = c.stats();
        assert_eq!(s.prompts, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn without_cache_every_call_counts() {
        let c = LlmClient::without_cache(Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "ok".into(),
        }));
        c.complete("hello");
        c.complete("hello");
        assert_eq!(c.stats().prompts, 2);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn batch_charges_one_overhead() {
        let c = client();
        let prompts: Vec<String> = (0..10).map(|i| format!("p{i}")).collect();
        c.complete_batch(&prompts);
        let s = c.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.prompts, 10);
        // 1 overhead + 10 × 1ms model latency.
        assert_eq!(s.virtual_ms, BATCH_OVERHEAD_MS + 10);
        assert_eq!(s.serial_ms, s.virtual_ms);
    }

    #[test]
    fn lanes_shorten_batches_but_not_serial_accounting() {
        let c = LlmClient::with_parallelism(
            Arc::new(FixedResponder {
                model_name: "fixed".into(),
                response: "ok".into(),
            }),
            Parallelism::new(5),
        );
        let prompts: Vec<String> = (0..10).map(|i| format!("p{i}")).collect();
        let outcome = c.complete_batch_outcome(&prompts);
        // 10 × 1ms over 5 lanes: 2ms of decode instead of 10.
        assert_eq!(outcome.virtual_ms, BATCH_OVERHEAD_MS + 2);
        assert_eq!(outcome.serial_ms, BATCH_OVERHEAD_MS + 10);
        assert_eq!(outcome.misses, 10);
        let s = c.stats();
        assert_eq!(s.virtual_ms, BATCH_OVERHEAD_MS + 2);
        assert_eq!(s.serial_ms, BATCH_OVERHEAD_MS + 10);
    }

    #[test]
    fn outcome_reports_hits_and_tokens() {
        let c = client();
        c.complete("a");
        let outcome = c.complete_batch_outcome(&["a".to_string(), "b".to_string()]);
        assert_eq!(outcome.hits, 1);
        assert_eq!(outcome.misses, 1);
        assert!(outcome.prompt_tokens > 0);
        // Hit latency is never charged.
        assert_eq!(outcome.serial_ms, BATCH_OVERHEAD_MS + 1);
    }

    #[test]
    fn reset_keeps_cache() {
        let c = client();
        c.complete("a");
        c.reset_stats();
        assert_eq!(c.stats().prompts, 0);
        c.complete("a");
        assert_eq!(c.stats().cache_hits, 1);
        c.clear_cache();
        c.complete("a");
        assert_eq!(c.stats().prompts, 1);
    }

    #[test]
    fn sub_entries_hit_count_and_clear() {
        let c = client();
        assert_eq!(
            c.extract_sub_entry("fetch|city|name|population|Rome"),
            SubEntryLookup::Miss
        );
        c.store_sub_entry("fetch|city|name|population|Rome", "2800000");
        assert_eq!(
            c.extract_sub_entry("fetch|city|name|population|Rome"),
            SubEntryLookup::Hit("2800000".to_string())
        );
        // One hit counted for the successful extraction, none for misses,
        // and no batch/prompt charged.
        let s = c.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.prompts, 0);
        assert_eq!(s.batches, 0);
        assert_eq!(s.virtual_ms, 0);
        // First stored write wins.
        c.store_sub_entry("fetch|city|name|population|Rome", "other");
        assert_eq!(
            c.extract_sub_entry("fetch|city|name|population|Rome"),
            SubEntryLookup::Hit("2800000".to_string())
        );
        c.clear_cache();
        assert_eq!(
            c.extract_sub_entry("fetch|city|name|population|Rome"),
            SubEntryLookup::Miss
        );
    }

    /// The by-signature accounting rule: a lookup that lands between a
    /// first ask and its store finds the in-flight marker — counted as a
    /// hit (the signature was asked before), answered by the caller.
    #[test]
    fn sub_entry_inflight_marker_counts_as_hit() {
        let c = client();
        assert_eq!(c.extract_sub_entry("sig"), SubEntryLookup::Miss);
        // Second ask before the first asker stored: in flight, one hit.
        assert_eq!(c.extract_sub_entry("sig"), SubEntryLookup::InFlight);
        assert_eq!(c.stats().cache_hits, 1);
        // The eventual store replaces the marker; later asks hit normally.
        c.store_sub_entry("sig", "answer");
        assert_eq!(
            c.extract_sub_entry("sig"),
            SubEntryLookup::Hit("answer".to_string())
        );
        assert_eq!(c.stats().cache_hits, 2);
    }

    #[test]
    fn sub_entries_disabled_without_cache() {
        let c = LlmClient::without_cache(Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "ok".into(),
        }));
        c.store_sub_entry("sig", "value");
        assert_eq!(c.extract_sub_entry("sig"), SubEntryLookup::Miss);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn key_universe_store_reads_publishes_and_invalidates() {
        let store = KeyUniverseStore::new();
        assert!(store.is_empty());
        assert_eq!(store.read("list|city|name|", "sig-a"), None);
        let partial = KeyUniverse {
            keys: vec!["Rome".into(), "Milan".into()],
            iterations: 1,
            exhausted: false,
        };
        store.publish("list|city|name|", "sig-a", partial.clone());
        assert_eq!(
            store.read("list|city|name|", "sig-a"),
            Some(partial.clone())
        );
        assert_eq!(store.len(), 1);
        // Partial frontiers stay invisible to the planner's warm map.
        assert!(store.warm_map("sig-a").is_empty());

        // Monotone merge: a shorter or equal universe never regresses the
        // stored one; an exhausted or longer one replaces it.
        store.publish(
            "list|city|name|",
            "sig-a",
            KeyUniverse {
                keys: vec!["Rome".into()],
                iterations: 1,
                exhausted: false,
            },
        );
        assert_eq!(store.read("list|city|name|", "sig-a"), Some(partial));
        let full = KeyUniverse {
            keys: vec!["Rome".into(), "Milan".into(), "Paris".into()],
            iterations: 2,
            exhausted: true,
        };
        store.publish("list|city|name|", "sig-a", full.clone());
        assert_eq!(store.read("list|city|name|", "sig-a"), Some(full));
        assert_eq!(
            store.warm_map("sig-a").get("list|city|name|").copied(),
            Some(3)
        );

        // A read under a different model signature invalidates the entry.
        assert_eq!(store.read("list|city|name|", "sig-b"), None);
        assert!(store.is_empty());
    }

    #[test]
    fn virtual_seconds() {
        let s = ClientStats {
            virtual_ms: 1500,
            ..Default::default()
        };
        assert!((s.virtual_seconds() - 1.5).abs() < 1e-9);
    }

    /// A model that records how many times it was actually invoked.
    struct CountingModel {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl LanguageModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn context_window(&self) -> usize {
            4096
        }
        fn complete(&self, prompt: &str) -> Completion {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            // Give concurrent duplicates a window to pile up on the marker.
            std::thread::sleep(std::time::Duration::from_millis(2));
            Completion {
                text: format!("echo:{prompt}"),
                usage: crate::model::Usage {
                    prompt_tokens: 1,
                    completion_tokens: 1,
                },
                latency_ms: 1,
            }
        }
    }

    #[test]
    fn concurrent_duplicates_call_the_model_once() {
        let model = Arc::new(CountingModel {
            calls: std::sync::atomic::AtomicUsize::new(0),
        });
        let c = Arc::new(LlmClient::new(model.clone()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || c.complete("same prompt"));
            }
        });
        assert_eq!(model.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        let stats = c.stats();
        assert_eq!(stats.prompts, 1);
        assert_eq!(stats.cache_hits, 7);
        // Totals match what a sequential run of 8 calls would report.
        assert_eq!(stats.batches, 8);
    }

    /// A model whose first completion panics; later calls succeed.
    struct FlakyModel {
        fail_first: std::sync::atomic::AtomicBool,
    }

    impl LanguageModel for FlakyModel {
        fn name(&self) -> &str {
            "flaky"
        }
        fn context_window(&self) -> usize {
            4096
        }
        fn complete(&self, _prompt: &str) -> Completion {
            if self
                .fail_first
                .swap(false, std::sync::atomic::Ordering::SeqCst)
            {
                panic!("model exploded");
            }
            Completion {
                text: "ok".into(),
                usage: crate::model::Usage {
                    prompt_tokens: 1,
                    completion_tokens: 1,
                },
                latency_ms: 1,
            }
        }
    }

    #[test]
    fn panicked_completion_does_not_poison_the_prompt() {
        let c = Arc::new(LlmClient::new(Arc::new(FlakyModel {
            fail_first: std::sync::atomic::AtomicBool::new(true),
        })));
        let worker = Arc::clone(&c);
        let outcome = std::thread::spawn(move || worker.complete("boom")).join();
        assert!(outcome.is_err(), "the model panic must propagate");
        // The in-flight marker must have been abandoned and removed — a
        // retry completes normally instead of parking forever behind the
        // dead owner's marker.
        assert_eq!(c.complete("boom").text, "ok");
        assert_eq!(c.stats().prompts, 1);
    }

    /// A model whose every request fails with a transient fault.
    struct AlwaysFaulty {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl AlwaysFaulty {
        fn new() -> Self {
            AlwaysFaulty {
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for AlwaysFaulty {
        fn name(&self) -> &str {
            "always-faulty"
        }
        fn context_window(&self) -> usize {
            4096
        }
        fn complete(&self, prompt: &str) -> Completion {
            self.try_complete(prompt)
                .unwrap_or_else(|fault| fault.degraded)
        }
        fn try_complete(&self, _prompt: &str) -> Result<Completion, crate::model::Fault> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Err(crate::model::Fault {
                kind: FaultKind::Transient,
                degraded: Completion {
                    text: crate::faults::fault_text(FaultKind::Transient),
                    usage: Usage::default(),
                    latency_ms: 10,
                },
            })
        }
    }

    #[test]
    fn retries_recover_a_faulty_prompt_and_bill_the_wait() {
        let faulty = crate::faults::FaultyLlm::new(
            Arc::new(FixedResponder {
                model_name: "fixed".into(),
                response: "clean".into(),
            }),
            crate::faults::FaultProfile::with_rate(1.0),
        );
        let c = LlmClient::new(Arc::new(faulty)).with_resilience(RetryPolicy::default());
        let outcome = c.complete_outcome("prompt");
        assert_eq!(outcome.completions[0].text, "clean");
        let s = c.stats();
        // Net of retries: one prompt, clean tokens, but the retry loop ran.
        assert_eq!(s.prompts, 1);
        assert!(s.retries >= 1, "rate 1.0 must have retried");
        assert_eq!(s.faults, s.retries, "every retry was caused by a fault");
        // Failed-attempt latency + backoff accrued beyond the clean 1 ms.
        assert!(
            outcome.completions[0].latency_ms > 1,
            "retry wait must be billed: {}",
            outcome.completions[0].latency_ms
        );
    }

    #[test]
    fn exhaustion_returns_the_degraded_completion() {
        let c = LlmClient::new(Arc::new(AlwaysFaulty::new())).with_resilience(RetryPolicy {
            max_retries: 2,
            jitter_permille: 0,
            ..RetryPolicy::default()
        });
        let outcome = c.complete_outcome("prompt");
        assert!(crate::faults::is_fault_text(&outcome.completions[0].text));
        let s = c.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.faults, 3, "three attempts, all faulted");
        // Two failed attempts' latency (10 each) + backoffs (50, 100)
        // accrued onto the final degraded completion's own 10 ms.
        assert_eq!(outcome.completions[0].latency_ms, 10 + 50 + 10 + 100 + 10);
    }

    #[test]
    fn breaker_fails_fast_after_an_exhaustion_streak() {
        let model = Arc::new(AlwaysFaulty::new());
        let c = LlmClient::new(Arc::clone(&model) as Arc<dyn LanguageModel>).with_resilience(
            RetryPolicy {
                max_retries: 1,
                breaker_threshold: 2,
                breaker_cooldown: 3,
                ..RetryPolicy::default()
            },
        );
        c.complete("p1");
        c.complete("p2");
        let calls_when_tripped = model.calls.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(calls_when_tripped, 4, "2 prompts × 2 attempts");
        // Breaker is now open: the next prompts fail fast, no model calls.
        c.complete("p3");
        c.complete("p4");
        assert_eq!(
            model.calls.load(std::sync::atomic::Ordering::SeqCst),
            calls_when_tripped
        );
        assert_eq!(c.stats().breaker_fastfails, 2);
        // Third fast-fail spends the cooldown; the prompt after that is
        // the half-open probe and reaches the model again.
        c.complete("p5");
        c.complete("p6");
        assert_eq!(c.stats().breaker_fastfails, 3);
        assert!(model.calls.load(std::sync::atomic::Ordering::SeqCst) > calls_when_tripped);
    }

    #[test]
    fn resilience_off_forwards_degraded_completions_and_counts() {
        let c = LlmClient::new(Arc::new(AlwaysFaulty::new()));
        let outcome = c.complete_outcome("prompt");
        assert!(crate::faults::is_fault_text(&outcome.completions[0].text));
        let s = c.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(s.faults, 1);
        assert_eq!(s.prompts, 1);
    }

    #[test]
    fn clean_model_under_resilience_changes_nothing() {
        let run = |resilient: bool| {
            let mut c = client();
            if resilient {
                c = c.with_resilience(RetryPolicy::default());
            }
            c.complete("a");
            c.complete("a");
            c.complete_batch(&["a".to_string(), "b".to_string()]);
            c.stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sub_entry_store_rejects_fault_marker_text() {
        let c = client();
        assert_eq!(c.extract_sub_entry("sig"), SubEntryLookup::Miss);
        c.store_sub_entry("sig", &crate::faults::fault_text(FaultKind::Timeout));
        // The degraded answer was not stored; the Asked marker remains.
        assert_eq!(c.extract_sub_entry("sig"), SubEntryLookup::InFlight);
        c.store_sub_entry("sig", "real answer");
        assert_eq!(
            c.extract_sub_entry("sig"),
            SubEntryLookup::Hit("real answer".to_string())
        );
    }

    #[test]
    fn concurrent_distinct_prompts_all_complete() {
        let c = Arc::new(client());
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..50 {
                        let got = c.complete(&format!("p{t}-{i}"));
                        assert_eq!(got.text, "ok");
                    }
                });
            }
        });
        assert_eq!(c.stats().prompts, 200);
        assert_eq!(c.stats().cache_hits, 0);
    }
}
