//! The model client: caching, batching and virtual-clock accounting.
//!
//! The paper reports "∼110 batched prompts per query" and "∼20 seconds to
//! execute a query" on GPT-3 (§5), without controlling OpenAI's
//! infrastructure. The client reproduces that accounting with a virtual
//! clock: every completion carries a simulated latency, batches add one
//! request overhead, and a prompt cache models the obvious deduplication a
//! production system would deploy. No real time passes.

use crate::model::{Completion, LanguageModel};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Usage counters accumulated by a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Prompts answered by the model (cache misses).
    pub prompts: usize,
    /// Prompts served from the cache.
    pub cache_hits: usize,
    /// Batch requests issued.
    pub batches: usize,
    /// Total prompt tokens sent (cache misses only).
    pub prompt_tokens: usize,
    /// Total completion tokens received (cache misses only).
    pub completion_tokens: usize,
    /// Total virtual elapsed milliseconds.
    pub virtual_ms: u64,
}

impl ClientStats {
    /// Virtual elapsed time in seconds.
    pub fn virtual_seconds(&self) -> f64 {
        self.virtual_ms as f64 / 1000.0
    }
}

/// Fixed virtual overhead per batch request (network + queueing).
pub const BATCH_OVERHEAD_MS: u64 = 250;

/// A caching, stats-keeping client over any [`LanguageModel`].
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    cache: Mutex<HashMap<String, Completion>>,
    stats: Mutex<ClientStats>,
    cache_enabled: bool,
}

impl LlmClient {
    /// Wraps a model with caching enabled.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            model,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(ClientStats::default()),
            cache_enabled: true,
        }
    }

    /// Wraps a model without the prompt cache (every call hits the model).
    pub fn without_cache(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            cache_enabled: false,
            ..Self::new(model)
        }
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> String {
        self.model.name().to_string()
    }

    /// Completes one prompt (counts as a batch of one).
    pub fn complete(&self, prompt: &str) -> Completion {
        self.complete_batch(std::slice::from_ref(&prompt.to_string()))
            .pop()
            .expect("one completion per prompt")
    }

    /// Completes a batch of prompts; one batch overhead is charged and the
    /// member latencies accumulate (the provider decodes sequentially per
    /// request stream).
    pub fn complete_batch(&self, prompts: &[String]) -> Vec<Completion> {
        let mut results = Vec::with_capacity(prompts.len());
        let mut stats = self.stats.lock();
        stats.batches += 1;
        let mut batch_ms = BATCH_OVERHEAD_MS;
        for prompt in prompts {
            if self.cache_enabled {
                if let Some(hit) = self.cache.lock().get(prompt) {
                    stats.cache_hits += 1;
                    results.push(hit.clone());
                    continue;
                }
            }
            let completion = self.model.complete(prompt);
            stats.prompts += 1;
            stats.prompt_tokens += completion.usage.prompt_tokens;
            stats.completion_tokens += completion.usage.completion_tokens;
            batch_ms += completion.latency_ms;
            if self.cache_enabled {
                self.cache.lock().insert(prompt.clone(), completion.clone());
            }
            results.push(completion);
        }
        stats.virtual_ms += batch_ms;
        results
    }

    /// Snapshot of the accumulated stats.
    pub fn stats(&self) -> ClientStats {
        *self.stats.lock()
    }

    /// Resets counters (the cache is kept).
    pub fn reset_stats(&self) {
        *self.stats.lock() = ClientStats::default();
    }

    /// Clears the prompt cache.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedResponder;

    fn client() -> LlmClient {
        LlmClient::new(Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "ok".into(),
        }))
    }

    #[test]
    fn caching_dedupes() {
        let c = client();
        c.complete("hello");
        c.complete("hello");
        let s = c.stats();
        assert_eq!(s.prompts, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn without_cache_every_call_counts() {
        let c = LlmClient::without_cache(Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "ok".into(),
        }));
        c.complete("hello");
        c.complete("hello");
        assert_eq!(c.stats().prompts, 2);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn batch_charges_one_overhead() {
        let c = client();
        let prompts: Vec<String> = (0..10).map(|i| format!("p{i}")).collect();
        c.complete_batch(&prompts);
        let s = c.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.prompts, 10);
        // 1 overhead + 10 × 1ms model latency.
        assert_eq!(s.virtual_ms, BATCH_OVERHEAD_MS + 10);
    }

    #[test]
    fn reset_keeps_cache() {
        let c = client();
        c.complete("a");
        c.reset_stats();
        assert_eq!(c.stats().prompts, 0);
        c.complete("a");
        assert_eq!(c.stats().cache_hits, 1);
        c.clear_cache();
        c.complete("a");
        assert_eq!(c.stats().prompts, 1);
    }

    #[test]
    fn virtual_seconds() {
        let s = ClientStats {
            virtual_ms: 1500,
            ..Default::default()
        };
        assert!((s.virtual_seconds() - 1.5).abs() < 1e-9);
    }
}
